"""AutoSF reproduction: searching scoring functions for knowledge graph embedding.

The package is organized in four layers:

* :mod:`repro.datasets` — knowledge-graph containers, synthetic benchmark
  generators and relation-pattern statistics;
* :mod:`repro.kge` — a NumPy knowledge-graph-embedding framework (scoring
  functions, losses, optimizers, trainer, evaluation);
* :mod:`repro.core` — the AutoSF contribution: the block-structure search
  space, expressiveness/invariance machinery, SRF predictor and the
  progressive greedy search, plus AutoML baselines;
* :mod:`repro.experiments` — the unified experiment API: declarative
  :class:`~repro.experiments.ExperimentSpec`, the ``SearchStrategy``
  protocol + registry, the single ``SearchLoop`` driver and the versioned
  run-directory contract;
* :mod:`repro.serving` — versioned artifacts, the batched inference engine
  and the HTTP query service;
* :mod:`repro.analysis` — case studies, transfer experiments and report
  formatting used by the benchmark harness.
"""

from repro.datasets import KnowledgeGraph, load_benchmark
from repro.kge import KGEModel, train_model
from repro.utils.config import ConfigError, PredictorConfig, SearchConfig, TrainingConfig

__version__ = "1.0.0"

__all__ = [
    "KnowledgeGraph",
    "load_benchmark",
    "KGEModel",
    "train_model",
    "ConfigError",
    "PredictorConfig",
    "SearchConfig",
    "TrainingConfig",
    "__version__",
]
