"""Configuration dataclasses shared across the library.

The paper trains every candidate scoring function with one fixed set of
hyper-parameters per dataset (Sec. V-A2) and runs the progressive greedy
search with meta hyper-parameters ``N``, ``K1`` and ``K2`` (Sec. V-A3).
These dataclasses capture exactly those knobs plus the predictor settings,
so that an experiment is fully described by three small objects that can be
serialized next to its results.
"""

from __future__ import annotations

import typing
import warnings
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, Optional, Tuple

#: Execution backends the search engine knows how to build (the single
#: source of truth — the execution layer and the CLI both import this).
#: ``"serial"`` runs in-process, ``"process"`` fans out over a local pool,
#: ``"queue"`` runs a socket-RPC coordinator that dispatches to worker
#: processes (local and/or connecting from other hosts).
EXECUTION_BACKENDS: Tuple[str, ...] = ("serial", "process", "queue")

#: Training engines the trainer knows how to build (the single source of
#: truth — the engine layer and the CLI both import this).  ``"reference"``
#: is the original per-direction Python loop, kept as the parity oracle;
#: ``"batched"`` is the fused engine with entity-chunked candidate scoring;
#: ``"sparse"`` computes gradients only for the entity/relation rows a batch
#: touches and applies O(touched rows) per-row optimizer updates (pairwise
#: losses; multi-class batches fall back to the batched engine).
TRAIN_ENGINES: Tuple[str, ...] = ("reference", "batched", "sparse")


class ConfigError(ValueError):
    """A configuration value has the wrong type or is out of range.

    Raised by every ``from_dict`` with a message naming the offending field,
    so a bad spec file fails with ``TrainingConfig.dimension: ...`` instead
    of a bare ``TypeError`` deep inside a dataclass constructor.
    """


def _hint_allows(hint: Any, value: Any) -> bool:
    """Whether ``value`` is acceptable for the (simple) type ``hint``.

    Only the scalar types configuration fields actually use are checked
    (``int``/``float``/``str``/``bool`` and ``Optional`` of those); anything
    more complex is left to the dataclass's own ``__post_init__`` validation.
    """
    origin = typing.get_origin(hint)
    if origin is typing.Union:
        return any(_hint_allows(member, value) for member in typing.get_args(hint))
    if hint is type(None):
        return value is None
    if hint is bool:
        return isinstance(value, bool)
    if hint is int:
        return isinstance(value, int) and not isinstance(value, bool)
    if hint is float:
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if hint is str:
        return isinstance(value, str)
    return True  # nested/complex fields are validated by the target class


def config_from_dict(cls: type, data: Dict[str, Any]) -> Any:
    """Shared tolerant ``from_dict``: skip unknown keys, name bad fields.

    * Unknown keys (e.g. from a forward-versioned run directory written by a
      newer release) are dropped with a :class:`UserWarning` instead of
      crashing with ``TypeError: unexpected keyword argument``.
    * Type violations raise :class:`ConfigError` naming the field.
    * Range violations from the dataclass's ``__post_init__`` are re-raised
      as a single :class:`ConfigError` carrying the class name.
    """
    if not isinstance(data, dict):
        raise ConfigError(f"{cls.__name__}: expected a mapping, got {type(data).__name__}")
    known = {item.name for item in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        warnings.warn(
            f"{cls.__name__}: ignoring unknown field(s) {', '.join(unknown)} "
            f"(written by a newer version?)",
            stacklevel=3,
        )
    hints = typing.get_type_hints(cls)
    filtered: Dict[str, Any] = {}
    for name in known:
        if name not in data:
            continue
        value = data[name]
        hint = hints.get(name)
        if hint is not None and not _hint_allows(hint, value):
            raise ConfigError(
                f"{cls.__name__}.{name}: invalid value {value!r} "
                f"of type {type(value).__name__}"
            )
        filtered[name] = value
    try:
        return cls(**filtered)
    except ConfigError:
        raise
    except (TypeError, ValueError) as error:
        raise ConfigError(f"{cls.__name__}: {error}") from error


@dataclass
class TrainingConfig:
    """Hyper-parameters for training one KGE model (Alg. 1).

    Attributes
    ----------
    dimension:
        Total entity/relation embedding dimension ``d``.  Must be divisible
        by four because the unified search space splits embeddings into four
        chunks.
    epochs:
        Number of passes over the training triplets.
    batch_size:
        Mini-batch size ``m``.
    learning_rate / l2_penalty / decay_rate:
        Optimizer settings (the paper uses Adagrad with an L2 penalty).
    optimizer:
        One of ``"adagrad"``, ``"adam"``, ``"sgd"``.
    loss:
        One of ``"multiclass"`` (the paper's choice), ``"logistic"``,
        ``"hinge"``.
    negative_samples:
        Number of negatives per positive; only used by pairwise losses
        (the multi-class loss scores against every entity).
    eval_every / early_stopping_patience:
        Validation cadence (in epochs) and the early-stopping patience.
        Patience counts *evaluations* without improvement, not epochs: with
        ``eval_every=5`` and ``early_stopping_patience=2`` training stops
        after 10 extra epochs without a new best validation score.  Whenever
        validation runs, :meth:`repro.kge.trainer.Trainer.fit` returns the
        parameters of the best-validation checkpoint, not the last epoch's.
    train_engine:
        Which training engine computes the per-batch loss and gradients:
        ``"batched"`` (the default) fuses candidate scoring over block
        structures and entity chunks, ``"reference"`` is the original
        per-direction loop kept as the parity oracle, and ``"sparse"``
        scores/updates only the entity and relation rows each batch touches
        (the fast path for pairwise losses at large vocabularies; with the
        multi-class loss it behaves like ``"batched"``).  All engines
        produce the same losses and parameters up to floating-point
        round-off (~1e-12); the sparse engine additionally applies
        regularization lazily to touched rows only, so exact parity there
        requires ``l2_penalty=0``.
    score_chunk_size:
        Entity-chunk size for the batched engine's candidate scoring (also
        used by the sparse engine's multi-class fallback).  ``0`` (the
        default) scores all entities at once; a positive value bounds peak
        memory to ``O(batch_size * score_chunk_size)`` scores via a two-pass
        streaming softmax.  Ignored by the reference engine.
    """

    dimension: int = 32
    epochs: int = 60
    batch_size: int = 512
    learning_rate: float = 0.1
    l2_penalty: float = 1e-4
    decay_rate: float = 1.0
    optimizer: str = "adagrad"
    loss: str = "multiclass"
    negative_samples: int = 16
    margin: float = 1.0
    init_scale: float = 0.1
    seed: Optional[int] = 0
    eval_every: int = 0
    early_stopping_patience: int = 0
    train_engine: str = "batched"
    score_chunk_size: int = 0

    def __post_init__(self) -> None:
        if self.dimension <= 0:
            raise ValueError("dimension must be positive")
        if self.dimension % 4 != 0:
            raise ValueError("dimension must be divisible by 4 (block split)")
        if self.epochs < 0:
            raise ValueError("epochs must be non-negative")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.l2_penalty < 0:
            raise ValueError("l2_penalty must be non-negative")
        if not 0 < self.decay_rate <= 1.0:
            raise ValueError("decay_rate must be in (0, 1]")
        if self.optimizer not in ("adagrad", "adam", "sgd"):
            raise ValueError(f"unknown optimizer: {self.optimizer!r}")
        if self.loss not in ("multiclass", "logistic", "hinge"):
            raise ValueError(f"unknown loss: {self.loss!r}")
        if self.negative_samples <= 0:
            raise ValueError("negative_samples must be positive")
        if self.train_engine not in TRAIN_ENGINES:
            raise ValueError(
                f"unknown train_engine: {self.train_engine!r} "
                f"(available: {', '.join(TRAIN_ENGINES)})"
            )
        if self.score_chunk_size < 0:
            raise ValueError("score_chunk_size must be non-negative (0 disables chunking)")

    @property
    def chunk_dimension(self) -> int:
        """Dimension of one of the four embedding chunks."""
        return self.dimension // 4

    def replace(self, **changes: Any) -> "TrainingConfig":
        """Return a copy with the given fields replaced."""
        data = asdict(self)
        data.update(changes)
        return TrainingConfig(**data)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TrainingConfig":
        """Build from a dict, skipping unknown keys (see :func:`config_from_dict`)."""
        return config_from_dict(cls, data)


@dataclass
class PredictorConfig:
    """Settings for the performance predictor used inside the greedy search.

    The paper uses a 22-2-1 MLP on symmetry-related features (SRF) and, as an
    ablation, a 96-8-1 MLP on one-hot structure encodings (Fig. 8).
    """

    feature_type: str = "srf"
    hidden_units: int = 2
    learning_rate: float = 0.01
    epochs: int = 400
    l2_penalty: float = 1e-4
    seed: Optional[int] = 0

    def __post_init__(self) -> None:
        if self.feature_type not in ("srf", "onehot"):
            raise ValueError(f"unknown feature_type: {self.feature_type!r}")
        if self.hidden_units <= 0:
            raise ValueError("hidden_units must be positive")
        if self.epochs < 0:
            raise ValueError("epochs must be non-negative")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PredictorConfig":
        """Build from a dict, skipping unknown keys (see :func:`config_from_dict`)."""
        return config_from_dict(cls, data)


@dataclass
class SearchConfig:
    """Meta hyper-parameters of the progressive greedy search (Alg. 2).

    Attributes
    ----------
    max_blocks:
        ``B`` — largest number of non-zero blocks in ``g(r)``.
    candidates_per_step:
        ``N`` — number of filtered candidates gathered before prediction.
    top_parents:
        ``K1`` — number of top SFs from the previous stage used as parents.
    train_per_step:
        ``K2`` — number of predictor-selected candidates actually trained.
    use_filter / use_predictor:
        Ablation switches (Fig. 7).
    backend / num_workers:
        Execution engine for candidate training: ``"serial"`` runs the batch
        in-process, ``"process"`` fans it out over ``num_workers`` worker
        processes.  Both produce identical results for the same seed.
    cache_dir:
        Optional directory for the persistent evaluation store; enables
        cross-run caching and ``search --resume``.
    """

    max_blocks: int = 6
    candidates_per_step: int = 64
    top_parents: int = 8
    train_per_step: int = 8
    use_filter: bool = True
    use_predictor: bool = True
    predictor: PredictorConfig = field(default_factory=PredictorConfig)
    seed: Optional[int] = 0
    backend: str = "serial"
    num_workers: int = 1
    cache_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.max_blocks < 4:
            raise ValueError("max_blocks must be at least 4")
        if self.max_blocks % 2 != 0:
            raise ValueError("max_blocks must be even (blocks are added in pairs)")
        if self.candidates_per_step <= 0:
            raise ValueError("candidates_per_step must be positive")
        if self.top_parents <= 0:
            raise ValueError("top_parents must be positive")
        if self.train_per_step <= 0:
            raise ValueError("train_per_step must be positive")
        if self.backend not in EXECUTION_BACKENDS:
            raise ValueError(f"unknown execution backend: {self.backend!r}")
        if self.num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if isinstance(self.predictor, dict):
            self.predictor = PredictorConfig(**self.predictor)

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SearchConfig":
        """Build from a dict, skipping unknown keys (see :func:`config_from_dict`).

        The nested ``predictor`` section goes through
        :meth:`PredictorConfig.from_dict` first, so unknown keys inside it
        are also skipped with a warning instead of raising ``TypeError``.
        """
        if isinstance(data, dict) and isinstance(data.get("predictor"), dict):
            data = dict(data)
            data["predictor"] = PredictorConfig.from_dict(data["predictor"])
        return config_from_dict(cls, data)
