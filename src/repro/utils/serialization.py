"""JSON and ``.npz`` serialization helpers shared by models and artifacts.

The JSON helpers understand NumPy scalars and arrays; the ``.npz`` helpers
read and write parameter dicts (named float arrays) with the key validation
that model loading and artifact loading both need.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, Sequence, Union

import numpy as np

PathLike = Union[str, Path]


class _NumpyAwareEncoder(json.JSONEncoder):
    """JSON encoder that downgrades NumPy types to plain Python."""

    def default(self, o: Any) -> Any:  # noqa: D102 - inherited contract
        if isinstance(o, np.integer):
            return int(o)
        if isinstance(o, np.floating):
            return float(o)
        if isinstance(o, np.bool_):
            return bool(o)
        if isinstance(o, np.ndarray):
            return o.tolist()
        if dataclasses.is_dataclass(o) and not isinstance(o, type):
            return dataclasses.asdict(o)
        if isinstance(o, set):
            return sorted(o)
        return super().default(o)


def to_json_string(data: Any, indent: int = 2) -> str:
    """Serialize ``data`` to a JSON string, accepting NumPy values."""
    return json.dumps(data, indent=indent, sort_keys=True, cls=_NumpyAwareEncoder)


def to_json_file(data: Any, path: PathLike, indent: int = 2) -> Path:
    """Write ``data`` as JSON to ``path`` and return the resolved path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(to_json_string(data, indent=indent), encoding="utf-8")
    return target


def from_json_file(path: PathLike) -> Any:
    """Load JSON from ``path``."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def save_params_npz(params: Dict[str, np.ndarray], path: PathLike) -> Path:
    """Write a parameter dict as an uncompressed ``.npz`` archive."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    np.savez(target, **params)
    return target


def load_params_npz(path: PathLike, required_keys: Sequence[str] = ()) -> Dict[str, np.ndarray]:
    """Load a parameter dict from ``path``, checking that required keys exist.

    Raises ``ValueError`` naming the file and the missing arrays, so callers
    (model and artifact loading) surface half-written archives descriptively
    instead of with a bare ``KeyError``.
    """
    target = Path(path)
    with np.load(target) as archive:
        params = {key: archive[key] for key in archive.files}
    missing = [key for key in required_keys if key not in params]
    if missing:
        raise ValueError(
            f"parameter archive {target} is missing required arrays: "
            f"{', '.join(missing)} (found: {', '.join(sorted(params)) or 'none'})"
        )
    return params
