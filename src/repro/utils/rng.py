"""Random-number-generator helpers.

Every stochastic component in the library accepts either an integer seed, an
existing :class:`numpy.random.Generator`, or ``None``.  ``ensure_rng``
normalizes those three cases so that call sites never need to branch on the
type of the argument, and ``spawn_rngs`` derives independent child generators
for parallel or repeated work (e.g. one generator per searched candidate).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an ``int`` seed, a ``SeedSequence`` or an
        already-constructed ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(f"cannot build a Generator from {type(seed).__name__}")


def spawn_rngs(seed: RngLike, count: int) -> Sequence[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    The children are derived through ``SeedSequence.spawn`` so that two calls
    with the same ``seed`` produce the same children, which keeps experiments
    reproducible while still giving each worker its own stream.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's own bit stream.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    base = np.random.SeedSequence(seed if seed is not None else None)
    return [np.random.default_rng(child) for child in base.spawn(count)]


def derive_seed(rng: np.random.Generator) -> int:
    """Draw a fresh integer seed from ``rng`` (useful for logging/replay)."""
    return int(rng.integers(0, 2**31 - 1))


def permutation(rng: RngLike, n: int) -> np.ndarray:
    """Return a random permutation of ``range(n)`` using ``ensure_rng``."""
    return ensure_rng(rng).permutation(n)


def choice_without_replacement(
    rng: RngLike, n: int, size: int, exclude: Optional[set] = None
) -> np.ndarray:
    """Sample ``size`` distinct integers from ``[0, n)`` avoiding ``exclude``.

    Used by negative samplers that must avoid the positive triplet's entity.
    Falls back to rejection sampling, which is fast when ``exclude`` is small
    relative to ``n``.
    """
    gen = ensure_rng(rng)
    if exclude is None or not exclude:
        return gen.choice(n, size=size, replace=False)
    allowed = np.setdiff1d(np.arange(n), np.fromiter(exclude, dtype=np.int64))
    if allowed.size < size:
        raise ValueError("not enough allowed values to sample without replacement")
    return gen.choice(allowed, size=size, replace=False)
