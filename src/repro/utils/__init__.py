"""Shared utilities: RNG management, configuration, timing, serialization.

These helpers are deliberately small and dependency-free so that every other
subpackage (datasets, kge, core, analysis) can rely on them without circular
imports.
"""

from repro.utils.config import (
    PredictorConfig,
    SearchConfig,
    TrainingConfig,
)
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.serialization import from_json_file, to_json_file
from repro.utils.timing import Stopwatch, TimingRecorder

__all__ = [
    "PredictorConfig",
    "SearchConfig",
    "TrainingConfig",
    "ensure_rng",
    "spawn_rngs",
    "from_json_file",
    "to_json_file",
    "Stopwatch",
    "TimingRecorder",
]
