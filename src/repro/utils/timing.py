"""Wall-clock timing helpers used for the running-time table (Table VII).

:class:`TimingRecorder` is also the bridge into the telemetry layer
(:mod:`repro.obs`): every sample it records is additionally observed into
a phase-labelled latency histogram on its registry and emitted as a leaf
trace span on the process-global tracer — all from the *same* clock
reading, so Table VII attribution, ``/metrics`` histograms and
``repro trace summarize`` totals agree exactly.  With the default null
registry and null tracer those extra sinks are no-op method calls.
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

#: One histogram family shared by every recorder: the phase is a label,
#: so ``/metrics`` exposes e.g. ``repro_phase_seconds_bucket{phase="score"}``.
PHASE_HISTOGRAM = "repro_phase_seconds"


@dataclass
class Stopwatch:
    """A simple resettable stopwatch.

    >>> watch = Stopwatch()
    >>> watch.start()
    >>> _ = watch.stop()  # elapsed seconds
    """

    _started_at: float = field(default=0.0, repr=False)
    _running: bool = field(default=False, repr=False)
    elapsed: float = 0.0

    def start(self) -> None:
        if self._running:
            raise RuntimeError("stopwatch already running")
        self._started_at = time.perf_counter()
        self._running = True

    def stop(self) -> float:
        if not self._running:
            raise RuntimeError("stopwatch is not running")
        self.elapsed += time.perf_counter() - self._started_at
        self._running = False
        return self.elapsed

    def reset(self) -> None:
        self.elapsed = 0.0
        self._running = False


class TimingRecorder:
    """Accumulates named timing samples.

    The greedy search uses one recorder to attribute time to the filter,
    predictor, training and evaluation phases, mirroring Table VII.

    Parameters
    ----------
    registry:
        Metrics registry the samples are mirrored into (as the
        :data:`PHASE_HISTOGRAM` latency histogram, one series per phase
        name).  Defaults to the process-global registry at construction
        time — a no-op ``NullRegistry`` unless observability is enabled.
    """

    def __init__(self, registry: Optional["_metrics.AnyRegistry"] = None) -> None:
        self._samples: Dict[str, List[float]] = defaultdict(list)
        self.registry = registry if registry is not None else _metrics.get_registry()
        self._histograms: Dict[str, object] = {}

    def _observe(self, name: str, seconds: float) -> None:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self.registry.histogram(
                PHASE_HISTOGRAM,
                help="Per-phase wall-clock latency in seconds.",
                labels={"phase": name},
            )
            self._histograms[name] = histogram
        histogram.observe(seconds)

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        # time.monotonic is CLOCK_MONOTONIC (same clock the tracer uses),
        # so the emitted span slots into the cross-process timeline.
        start = time.monotonic()
        try:
            yield
        finally:
            elapsed = time.monotonic() - start
            self._samples[name].append(elapsed)
            self._observe(name, elapsed)
            _trace.get_tracer().record(name, start, elapsed)

    def add(self, name: str, seconds: float) -> None:
        self._samples[name].append(float(seconds))
        self._observe(name, float(seconds))

    def merge(self, other: "TimingRecorder") -> None:
        """Fold another recorder's samples into this one (phase-wise).

        Used to combine per-process phase timings — e.g. recorders
        rebuilt from worker outcomes — into one Table VII attribution.
        Samples are re-observed into this recorder's registry.
        """
        for name in other.names():
            for sample in other.samples(name):
                self.add(name, sample)

    def samples(self, name: str) -> List[float]:
        """The raw samples recorded under ``name`` (copy)."""
        return list(self._samples.get(name, []))

    def last(self, name: str) -> float:
        """The most recent sample recorded under ``name``.

        Raises ``KeyError`` when no sample has been recorded yet, so callers
        never silently read a phantom 0.0 measurement.
        """
        samples = self._samples.get(name)
        if not samples:
            raise KeyError(f"no timing samples recorded for {name!r}")
        return float(samples[-1])

    def total(self, name: str) -> float:
        return float(sum(self._samples.get(name, [])))

    def mean(self, name: str) -> float:
        samples = self._samples.get(name, [])
        if not samples:
            return 0.0
        return float(sum(samples) / len(samples))

    def count(self, name: str) -> int:
        return len(self._samples.get(name, []))

    def names(self) -> List[str]:
        return sorted(self._samples)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Return ``{name: {total, mean, count}}`` for every recorded phase."""
        return {
            name: {
                "total": self.total(name),
                "mean": self.mean(name),
                "count": self.count(name),
            }
            for name in self.names()
        }
