"""Wall-clock timing helpers used for the running-time table (Table VII)."""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List


@dataclass
class Stopwatch:
    """A simple resettable stopwatch.

    >>> watch = Stopwatch()
    >>> watch.start()
    >>> _ = watch.stop()  # elapsed seconds
    """

    _started_at: float = field(default=0.0, repr=False)
    _running: bool = field(default=False, repr=False)
    elapsed: float = 0.0

    def start(self) -> None:
        if self._running:
            raise RuntimeError("stopwatch already running")
        self._started_at = time.perf_counter()
        self._running = True

    def stop(self) -> float:
        if not self._running:
            raise RuntimeError("stopwatch is not running")
        self.elapsed += time.perf_counter() - self._started_at
        self._running = False
        return self.elapsed

    def reset(self) -> None:
        self.elapsed = 0.0
        self._running = False


class TimingRecorder:
    """Accumulates named timing samples.

    The greedy search uses one recorder to attribute time to the filter,
    predictor, training and evaluation phases, mirroring Table VII.
    """

    def __init__(self) -> None:
        self._samples: Dict[str, List[float]] = defaultdict(list)

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self._samples[name].append(time.perf_counter() - start)

    def add(self, name: str, seconds: float) -> None:
        self._samples[name].append(float(seconds))

    def last(self, name: str) -> float:
        """The most recent sample recorded under ``name``.

        Raises ``KeyError`` when no sample has been recorded yet, so callers
        never silently read a phantom 0.0 measurement.
        """
        samples = self._samples.get(name)
        if not samples:
            raise KeyError(f"no timing samples recorded for {name!r}")
        return float(samples[-1])

    def total(self, name: str) -> float:
        return float(sum(self._samples.get(name, [])))

    def mean(self, name: str) -> float:
        samples = self._samples.get(name, [])
        if not samples:
            return 0.0
        return float(sum(samples) / len(samples))

    def count(self, name: str) -> int:
        return len(self._samples.get(name, []))

    def names(self) -> List[str]:
        return sorted(self._samples)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Return ``{name: {total, mean, count}}`` for every recorded phase."""
        return {
            name: {
                "total": self.total(name),
                "mean": self.mean(name),
                "count": float(self.count(name)),
            }
            for name in self.names()
        }
