"""Bilinear scoring functions.

The central class is :class:`BlockScoringFunction`, which evaluates any
block structure from the AutoSF search space with dense batched NumPy
operations and analytic gradients.  The classical bilinear models
(DistMult, ComplEx, Analogy, SimplE/CP) are thin wrappers around their named
block structures, which both demonstrates that the search space covers them
and lets tests cross-check the generic scorer against the textbook formulas.
RESCAL, whose relation embedding is a full ``d x d`` matrix and therefore
falls outside the search space, is implemented directly.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.kge.scoring.base import (
    HEAD,
    TAIL,
    ParamDict,
    RelationOperator,
    ScoringFunction,
    check_queries,
    check_triples,
    validate_direction,
)
from repro.kge.scoring.blocks import (
    NUM_CHUNKS,
    BlockStructure,
    analogy_structure,
    complex_structure,
    distmult_structure,
    simple_structure,
)
from repro.utils.rng import RngLike, ensure_rng


class BlockScoringFunction(ScoringFunction):
    """Evaluate ``f(h, r, t) = h^T g(r) t`` for an arbitrary block structure.

    Parameters
    ----------
    structure:
        The :class:`BlockStructure` describing which ``±diag(r_k)`` blocks
        fill the 4x4 relation matrix.
    """

    def __init__(self, structure: BlockStructure, name: Optional[str] = None) -> None:
        if structure.num_blocks == 0:
            raise ValueError("a block scoring function needs at least one block")
        self.structure = structure
        self.name = name or structure.name or f"block-sf-{structure.num_blocks}"

    # ------------------------------------------------------------------
    # Chunk helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _chunk(array: np.ndarray, index: int) -> np.ndarray:
        """Return chunk ``index`` (of four) of the last axis of ``array``."""
        size = array.shape[-1] // NUM_CHUNKS
        return array[..., index * size : (index + 1) * size]

    @staticmethod
    def _check_dimension(params: ParamDict) -> None:
        dimension = params["entities"].shape[1]
        if dimension % NUM_CHUNKS != 0:
            raise ValueError("embedding dimension must be divisible by 4")
        if params["relations"].shape[1] != dimension:
            raise ValueError("entity and relation dimensions must match")

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def score_triples(self, params: ParamDict, triples: np.ndarray) -> np.ndarray:
        triples = check_triples(triples)
        self._check_dimension(params)
        entities, relations = params["entities"], params["relations"]
        heads = entities[triples[:, 0]]
        rels = relations[triples[:, 1]]
        tails = entities[triples[:, 2]]
        scores = np.zeros(triples.shape[0], dtype=np.float64)
        for row, col, component, sign in self.structure.blocks:
            scores += sign * np.sum(
                self._chunk(heads, row) * self._chunk(rels, component) * self._chunk(tails, col),
                axis=1,
            )
        return scores

    def score_candidates(
        self,
        params: ParamDict,
        queries: np.ndarray,
        direction: str = TAIL,
        candidates: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        queries = check_queries(queries)
        validate_direction(direction)
        self._check_dimension(params)
        entities, relations = params["entities"], params["relations"]
        candidate_index = self.candidate_entities(params, candidates)
        candidate_rows = entities[candidate_index]
        query_entities = entities[queries[:, 0]]
        query_relations = relations[queries[:, 1]]

        scores = np.zeros((queries.shape[0], candidate_index.shape[0]), dtype=np.float64)
        for row, col, component, sign in self.structure.blocks:
            rel_chunk = self._chunk(query_relations, component)
            if direction == TAIL:
                # query entity is the head (chunk `row`), candidate is the tail (chunk `col`).
                partial = self._chunk(query_entities, row) * rel_chunk
                scores += sign * partial @ self._chunk(candidate_rows, col).T
            else:
                # query entity is the tail (chunk `col`), candidate is the head (chunk `row`).
                partial = self._chunk(query_entities, col) * rel_chunk
                scores += sign * partial @ self._chunk(candidate_rows, row).T
        return scores

    def grad_candidates(
        self,
        params: ParamDict,
        queries: np.ndarray,
        dscores: np.ndarray,
        direction: str = TAIL,
        candidates: Optional[np.ndarray] = None,
    ) -> ParamDict:
        queries = check_queries(queries)
        validate_direction(direction)
        self._check_dimension(params)
        entities, relations = params["entities"], params["relations"]
        candidate_index = self.candidate_entities(params, candidates)
        candidate_rows = entities[candidate_index]
        query_entity_index = queries[:, 0]
        query_relation_index = queries[:, 1]
        query_entities = entities[query_entity_index]
        query_relations = relations[query_relation_index]
        dscores = np.asarray(dscores, dtype=np.float64)
        if dscores.shape != (queries.shape[0], candidate_index.shape[0]):
            raise ValueError("dscores shape must be (batch, num_candidates)")

        grads = self.zero_grads(params)
        chunk_size = entities.shape[1] // NUM_CHUNKS

        def chunk_slice(index: int) -> slice:
            return slice(index * chunk_size, (index + 1) * chunk_size)

        for row, col, component, sign in self.structure.blocks:
            if direction == TAIL:
                query_chunk, candidate_chunk = row, col
            else:
                query_chunk, candidate_chunk = col, row
            rel = self._chunk(query_relations, component)
            ent = self._chunk(query_entities, query_chunk)
            cand = self._chunk(candidate_rows, candidate_chunk)

            partial = ent * rel  # (batch, chunk)
            # d score / d candidate chunk
            np.add.at(
                grads["entities"][:, chunk_slice(candidate_chunk)],
                candidate_index,
                sign * dscores.T @ partial,
            )
            upstream = sign * dscores @ cand  # (batch, chunk)
            # d score / d query-entity chunk and / d relation chunk
            np.add.at(
                grads["entities"][:, chunk_slice(query_chunk)],
                query_entity_index,
                upstream * rel,
            )
            np.add.at(
                grads["relations"][:, chunk_slice(component)],
                query_relation_index,
                upstream * ent,
            )
        return grads

    # ------------------------------------------------------------------
    # Chunk-aware scoring (fused over blocks, used by the batched engine)
    # ------------------------------------------------------------------
    # Every block's contribution to the score of candidate ``c`` is
    # ``sign * (e_q ∘ r) · c`` over one embedding chunk, so all blocks can be
    # collapsed into a single query projection ``P`` of full dimension with
    # ``P[:, col] += sign * e_q[row] ∘ r[comp]`` (chunks swapped for head
    # prediction).  Scores are then one GEMM ``P @ E[start:stop].T`` per
    # chunk instead of one GEMM per block, the candidate gradient is the
    # transposed GEMM added directly into the entity-table slice, and the
    # query/relation gradients unpack the accumulated ``dP = dscores @ E``
    # once per pass with exactly two scatters.

    def _query_chunks(self, direction: str):
        """Yield (query chunk, candidate chunk, component, sign) per block."""
        for row, col, component, sign in self.structure.blocks:
            if direction == TAIL:
                yield row, col, component, sign
            else:
                yield col, row, component, sign

    def begin_candidate_pass(
        self, params: ParamDict, queries: np.ndarray, direction: str = TAIL
    ) -> dict:
        queries = check_queries(queries)
        validate_direction(direction)
        self._check_dimension(params)
        entities, relations = params["entities"], params["relations"]
        query_entities = entities[queries[:, 0]]
        query_relations = relations[queries[:, 1]]
        dimension = entities.shape[1]
        chunk_size = dimension // NUM_CHUNKS
        projection = np.zeros((queries.shape[0], dimension), dtype=np.float64)
        for query_chunk, candidate_chunk, component, sign in self._query_chunks(direction):
            target = projection[:, candidate_chunk * chunk_size : (candidate_chunk + 1) * chunk_size]
            partial = self._chunk(query_entities, query_chunk) * self._chunk(
                query_relations, component
            )
            if sign > 0:
                target += partial
            else:
                target -= partial
        return {
            "projection": projection,
            "dprojection": None,
            "query_entities": query_entities,
            "query_relations": query_relations,
        }

    def _score_candidates_chunk(
        self,
        params: ParamDict,
        queries: np.ndarray,
        direction: str,
        start: int,
        stop: int,
        state: Optional[dict],
    ) -> np.ndarray:
        return state["projection"] @ params["entities"][start:stop].T

    def _grad_candidates_chunk(
        self,
        params: ParamDict,
        queries: np.ndarray,
        dscores: np.ndarray,
        direction: str,
        start: int,
        stop: int,
        grads: ParamDict,
        state: Optional[dict],
    ) -> None:
        grads["entities"][start:stop] += dscores.T @ state["projection"]
        dprojection = dscores @ params["entities"][start:stop]
        if state["dprojection"] is None:
            state["dprojection"] = dprojection
        else:
            state["dprojection"] += dprojection

    def finish_candidate_pass(
        self,
        params: ParamDict,
        queries: np.ndarray,
        direction: str,
        state: Optional[dict],
        grads: ParamDict,
    ) -> None:
        if state is None or state["dprojection"] is None:
            return
        dprojection = state["dprojection"]
        dimension = params["entities"].shape[1]
        chunk_size = dimension // NUM_CHUNKS
        dquery = np.zeros_like(dprojection)
        drelation = np.zeros_like(dprojection)
        for query_chunk, candidate_chunk, component, sign in self._query_chunks(direction):
            upstream = sign * dprojection[
                :, candidate_chunk * chunk_size : (candidate_chunk + 1) * chunk_size
            ]
            dquery[:, query_chunk * chunk_size : (query_chunk + 1) * chunk_size] += (
                upstream * self._chunk(state["query_relations"], component)
            )
            drelation[:, component * chunk_size : (component + 1) * chunk_size] += (
                upstream * self._chunk(state["query_entities"], query_chunk)
            )
        np.add.at(grads["entities"], queries[:, 0], dquery)
        np.add.at(grads["relations"], queries[:, 1], drelation)

    # ------------------------------------------------------------------
    # Relation-materialized inference
    # ------------------------------------------------------------------
    def relation_operator(
        self, params: ParamDict, relation: int, direction: str = TAIL
    ) -> RelationOperator:
        return BlockRelationOperator(self, params, relation, direction)


class BlockRelationOperator(RelationOperator):
    """All blocks of one relation fused into chunk-level diagonal maps.

    At construction the relation's embedding chunks are gathered once and
    the block signs folded in, leaving per (query chunk, candidate chunk)
    pair a ready signed diagonal vector.  Projecting a query batch is then
    ``num_blocks`` chunk-sized broadcasts with no relation gather at all,
    and scoring is a single full-dimension GEMM against the entity-table
    slice — one GEMM per batch instead of one per block.
    """

    def __init__(
        self,
        scoring_function: "BlockScoringFunction",
        params: ParamDict,
        relation: int,
        direction: str,
    ) -> None:
        super().__init__(scoring_function, params, relation, direction)
        scoring_function._check_dimension(params)
        relation_row = params["relations"][self.relation]
        self._dimension = int(relation_row.shape[0])
        chunk = self._dimension // NUM_CHUNKS
        self._maps = []
        for query_chunk, candidate_chunk, component, sign in scoring_function._query_chunks(
            self.direction
        ):
            self._maps.append(
                (
                    slice(query_chunk * chunk, (query_chunk + 1) * chunk),
                    slice(candidate_chunk * chunk, (candidate_chunk + 1) * chunk),
                    sign * relation_row[component * chunk : (component + 1) * chunk],
                )
            )

    def project(self, entity_indices: np.ndarray) -> np.ndarray:
        rows = self.params["entities"][np.asarray(entity_indices, dtype=np.int64)]
        projection = np.zeros((rows.shape[0], self._dimension), dtype=np.float64)
        for query_slice, candidate_slice, signed_relation in self._maps:
            projection[:, candidate_slice] += rows[:, query_slice] * signed_relation
        return projection

    def score(self, projection: np.ndarray, start: int, stop: int) -> np.ndarray:
        return projection @ self.params["entities"][start:stop].T


# ----------------------------------------------------------------------
# Classical bilinear models as named block structures
# ----------------------------------------------------------------------
class DistMult(BlockScoringFunction):
    """DistMult (Yang et al., 2015): purely diagonal, only symmetric relations."""

    def __init__(self) -> None:
        super().__init__(distmult_structure(), name="DistMult")


class ComplEx(BlockScoringFunction):
    """ComplEx (Trouillon et al., 2017) expressed over four real chunks."""

    def __init__(self) -> None:
        super().__init__(complex_structure(), name="ComplEx")


class Analogy(BlockScoringFunction):
    """Analogy (Liu et al., 2017): half DistMult, half ComplEx."""

    def __init__(self) -> None:
        super().__init__(analogy_structure(), name="Analogy")


class SimplE(BlockScoringFunction):
    """SimplE / CP (Kazemi & Poole, 2018; Lacroix et al., 2018)."""

    def __init__(self) -> None:
        super().__init__(simple_structure(), name="SimplE")


class RESCAL(ScoringFunction):
    """RESCAL (Nickel et al., 2011): one full ``d x d`` matrix per relation.

    Included as a baseline; the paper excludes it from the search space
    because its relation parameter count scales quadratically with the
    dimension, but it remains a useful reference implementation.
    """

    name = "RESCAL"

    def init_params(
        self,
        num_entities: int,
        num_relations: int,
        dimension: int,
        rng: RngLike = None,
        scale: float = 0.1,
    ) -> ParamDict:
        gen = ensure_rng(rng)
        return {
            "entities": gen.uniform(-scale, scale, size=(num_entities, dimension)),
            "relations": gen.uniform(-scale, scale, size=(num_relations, dimension, dimension)),
        }

    def score_triples(self, params: ParamDict, triples: np.ndarray) -> np.ndarray:
        triples = check_triples(triples)
        entities, relations = params["entities"], params["relations"]
        heads = entities[triples[:, 0]]
        rel_matrices = relations[triples[:, 1]]
        tails = entities[triples[:, 2]]
        transformed = np.einsum("bi,bij->bj", heads, rel_matrices)
        return np.sum(transformed * tails, axis=1)

    def score_candidates(
        self,
        params: ParamDict,
        queries: np.ndarray,
        direction: str = TAIL,
        candidates: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        queries = check_queries(queries)
        validate_direction(direction)
        entities, relations = params["entities"], params["relations"]
        candidate_index = self.candidate_entities(params, candidates)
        candidate_rows = entities[candidate_index]
        query_entities = entities[queries[:, 0]]
        rel_matrices = relations[queries[:, 1]]
        if direction == TAIL:
            transformed = np.einsum("bi,bij->bj", query_entities, rel_matrices)
        else:
            transformed = np.einsum("bj,bij->bi", query_entities, rel_matrices)
        return transformed @ candidate_rows.T

    def grad_candidates(
        self,
        params: ParamDict,
        queries: np.ndarray,
        dscores: np.ndarray,
        direction: str = TAIL,
        candidates: Optional[np.ndarray] = None,
    ) -> ParamDict:
        queries = check_queries(queries)
        validate_direction(direction)
        entities, relations = params["entities"], params["relations"]
        candidate_index = self.candidate_entities(params, candidates)
        candidate_rows = entities[candidate_index]
        query_entity_index = queries[:, 0]
        query_relation_index = queries[:, 1]
        query_entities = entities[query_entity_index]
        rel_matrices = relations[query_relation_index]
        dscores = np.asarray(dscores, dtype=np.float64)

        grads = self.zero_grads(params)
        if direction == TAIL:
            transformed = np.einsum("bi,bij->bj", query_entities, rel_matrices)
            # scores = transformed @ candidate_rows.T
            np.add.at(grads["entities"], candidate_index, dscores.T @ transformed)
            dtransformed = dscores @ candidate_rows
            np.add.at(
                grads["entities"],
                query_entity_index,
                np.einsum("bj,bij->bi", dtransformed, rel_matrices),
            )
            np.add.at(
                grads["relations"],
                query_relation_index,
                np.einsum("bi,bj->bij", query_entities, dtransformed),
            )
        else:
            transformed = np.einsum("bj,bij->bi", query_entities, rel_matrices)
            np.add.at(grads["entities"], candidate_index, dscores.T @ transformed)
            dtransformed = dscores @ candidate_rows
            np.add.at(
                grads["entities"],
                query_entity_index,
                np.einsum("bi,bij->bj", dtransformed, rel_matrices),
            )
            np.add.at(
                grads["relations"],
                query_relation_index,
                np.einsum("bi,bj->bij", dtransformed, query_entities),
            )
        return grads

    # ------------------------------------------------------------------
    # Chunk-aware scoring: the relation transform is chunk-independent
    # ------------------------------------------------------------------
    def begin_candidate_pass(
        self, params: ParamDict, queries: np.ndarray, direction: str = TAIL
    ) -> dict:
        queries = check_queries(queries)
        validate_direction(direction)
        entities, relations = params["entities"], params["relations"]
        query_entities = entities[queries[:, 0]]
        rel_matrices = relations[queries[:, 1]]
        if direction == TAIL:
            transformed = np.einsum("bi,bij->bj", query_entities, rel_matrices)
        else:
            transformed = np.einsum("bj,bij->bi", query_entities, rel_matrices)
        return {
            "transformed": transformed,
            "dtransformed": None,
            "query_entities": query_entities,
            "rel_matrices": rel_matrices,
        }

    def _score_candidates_chunk(
        self,
        params: ParamDict,
        queries: np.ndarray,
        direction: str,
        start: int,
        stop: int,
        state: Optional[dict],
    ) -> np.ndarray:
        return state["transformed"] @ params["entities"][start:stop].T

    def _grad_candidates_chunk(
        self,
        params: ParamDict,
        queries: np.ndarray,
        dscores: np.ndarray,
        direction: str,
        start: int,
        stop: int,
        grads: ParamDict,
        state: Optional[dict],
    ) -> None:
        grads["entities"][start:stop] += dscores.T @ state["transformed"]
        dtransformed = dscores @ params["entities"][start:stop]
        if state["dtransformed"] is None:
            state["dtransformed"] = dtransformed
        else:
            state["dtransformed"] += dtransformed

    def finish_candidate_pass(
        self,
        params: ParamDict,
        queries: np.ndarray,
        direction: str,
        state: Optional[dict],
        grads: ParamDict,
    ) -> None:
        if state is None or state["dtransformed"] is None:
            return
        dtransformed = state["dtransformed"]
        rel_matrices = state["rel_matrices"]
        query_entities = state["query_entities"]
        if direction == TAIL:
            dquery = np.einsum("bj,bij->bi", dtransformed, rel_matrices)
            drelation = np.einsum("bi,bj->bij", query_entities, dtransformed)
        else:
            dquery = np.einsum("bi,bij->bj", dtransformed, rel_matrices)
            drelation = np.einsum("bi,bj->bij", dtransformed, query_entities)
        np.add.at(grads["entities"], queries[:, 0], dquery)
        np.add.at(grads["relations"], queries[:, 1], drelation)

    # ------------------------------------------------------------------
    # Relation-materialized inference
    # ------------------------------------------------------------------
    def relation_operator(
        self, params: ParamDict, relation: int, direction: str = TAIL
    ) -> RelationOperator:
        return RescalRelationOperator(self, params, relation, direction)


class RescalRelationOperator(RelationOperator):
    """One relation's full ``d x d`` matrix, transposed once for head queries.

    Projection is a single ``(batch, d) @ (d, d)`` GEMM and scoring a GEMM
    against the entity-table slice, with no per-query ``einsum`` over a
    gathered ``(batch, d, d)`` relation stack.
    """

    def __init__(
        self,
        scoring_function: "RESCAL",
        params: ParamDict,
        relation: int,
        direction: str,
    ) -> None:
        super().__init__(scoring_function, params, relation, direction)
        matrix = params["relations"][self.relation]
        # Tail queries transform the head through g(r); head queries see the
        # transpose (score = h^T g(r) t either way).
        self._matrix = matrix if self.direction == TAIL else matrix.T

    def project(self, entity_indices: np.ndarray) -> np.ndarray:
        rows = self.params["entities"][np.asarray(entity_indices, dtype=np.int64)]
        return rows @ self._matrix

    def score(self, projection: np.ndarray, start: int, stop: int) -> np.ndarray:
        return projection @ self.params["entities"][start:stop].T
