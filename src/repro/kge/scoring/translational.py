r"""Translational-distance scoring functions (TDM baselines).

The paper compares against translational models mainly to illustrate that
bilinear models dominate on the benchmarks.  Two representative TDMs are
implemented here with full analytic gradients so they can be trained with the
same multi-class loss as every other model:

* :class:`TransE` — ``f(h, r, t) = -||h + r - t||_p``;
* :class:`RotatE` — entities are complex vectors, relations are element-wise
  rotations (unit-modulus complex numbers parameterized by phases), and
  ``f(h, r, t) = -||h \circ r - t||_1``.  Because a rotation is an isometry,
  head-prediction queries reduce to the same "translate the query, compare
  to raw candidates" form as tail prediction.

TransH is not re-implemented; its Table IV rows are reference values copied
from the literature exactly as the paper itself does.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.kge.scoring.base import (
    HEAD,
    TAIL,
    ParamDict,
    RelationOperator,
    ScoringFunction,
    check_queries,
    check_triples,
    validate_direction,
)
from repro.utils.rng import RngLike, ensure_rng


class TransE(ScoringFunction):
    """TransE (Bordes et al., 2013) with an L1 or L2 distance."""

    def __init__(self, norm: int = 1) -> None:
        if norm not in (1, 2):
            raise ValueError("norm must be 1 or 2")
        self.norm = norm
        self.name = f"TransE-L{norm}"

    # -- internal helpers -------------------------------------------------
    def _distance(self, diff: np.ndarray) -> np.ndarray:
        if self.norm == 1:
            return np.sum(np.abs(diff), axis=-1)
        return np.sum(diff * diff, axis=-1)

    def _distance_grad(self, diff: np.ndarray) -> np.ndarray:
        """d distance / d diff."""
        if self.norm == 1:
            return np.sign(diff)
        return 2.0 * diff

    def _query_vectors(self, params: ParamDict, queries: np.ndarray, direction: str) -> np.ndarray:
        """Translate the query so scoring is ``-distance(query_vec, candidate)``.

        For tail prediction the query vector is ``h + r``; for head
        prediction the score of candidate ``x`` is ``-||x + r - t||``, i.e.
        ``-distance(t - r, x)``.
        """
        entities, relations = params["entities"], params["relations"]
        query_entities = entities[queries[:, 0]]
        query_relations = relations[queries[:, 1]]
        if direction == TAIL:
            return query_entities + query_relations
        return query_entities - query_relations

    # -- ScoringFunction API ----------------------------------------------
    def score_triples(self, params: ParamDict, triples: np.ndarray) -> np.ndarray:
        triples = check_triples(triples)
        entities, relations = params["entities"], params["relations"]
        diff = entities[triples[:, 0]] + relations[triples[:, 1]] - entities[triples[:, 2]]
        return -self._distance(diff)

    def score_candidates(
        self,
        params: ParamDict,
        queries: np.ndarray,
        direction: str = TAIL,
        candidates: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        queries = check_queries(queries)
        validate_direction(direction)
        candidate_index = self.candidate_entities(params, candidates)
        candidate_rows = params["entities"][candidate_index]
        query_vectors = self._query_vectors(params, queries, direction)
        diff = query_vectors[:, None, :] - candidate_rows[None, :, :]
        return -self._distance(diff)

    def grad_candidates(
        self,
        params: ParamDict,
        queries: np.ndarray,
        dscores: np.ndarray,
        direction: str = TAIL,
        candidates: Optional[np.ndarray] = None,
    ) -> ParamDict:
        queries = check_queries(queries)
        validate_direction(direction)
        candidate_index = self.candidate_entities(params, candidates)
        candidate_rows = params["entities"][candidate_index]
        query_vectors = self._query_vectors(params, queries, direction)
        dscores = np.asarray(dscores, dtype=np.float64)

        diff = query_vectors[:, None, :] - candidate_rows[None, :, :]
        # score = -distance(diff); d score / d diff = -distance'(diff)
        ddiff = -self._distance_grad(diff) * dscores[:, :, None]

        grads = self.zero_grads(params)
        dquery = np.sum(ddiff, axis=1)  # (batch, d)
        dcandidate = -np.sum(ddiff, axis=0)  # (num_candidates, d)
        np.add.at(grads["entities"], candidate_index, dcandidate)
        np.add.at(grads["entities"], queries[:, 0], dquery)
        relation_sign = 1.0 if direction == TAIL else -1.0
        np.add.at(grads["relations"], queries[:, 1], relation_sign * dquery)
        return grads

    # ------------------------------------------------------------------
    # Chunk-aware scoring: the translated query vector is chunk-independent
    # and the ``(batch, chunk, dimension)`` difference tensor — the memory
    # hot spot of translational models — never exceeds one chunk.
    # ------------------------------------------------------------------
    def begin_candidate_pass(
        self, params: ParamDict, queries: np.ndarray, direction: str = TAIL
    ) -> dict:
        queries = check_queries(queries)
        validate_direction(direction)
        return {
            "query_vectors": self._query_vectors(params, queries, direction),
            "dquery": None,
        }

    def _score_candidates_chunk(
        self,
        params: ParamDict,
        queries: np.ndarray,
        direction: str,
        start: int,
        stop: int,
        state: Optional[dict],
    ) -> np.ndarray:
        diff = state["query_vectors"][:, None, :] - params["entities"][None, start:stop, :]
        return -self._distance(diff)

    def _grad_candidates_chunk(
        self,
        params: ParamDict,
        queries: np.ndarray,
        dscores: np.ndarray,
        direction: str,
        start: int,
        stop: int,
        grads: ParamDict,
        state: Optional[dict],
    ) -> None:
        diff = state["query_vectors"][:, None, :] - params["entities"][None, start:stop, :]
        ddiff = -self._distance_grad(diff) * np.asarray(dscores, dtype=np.float64)[:, :, None]
        dquery = np.sum(ddiff, axis=1)
        grads["entities"][start:stop] -= np.sum(ddiff, axis=0)
        if state["dquery"] is None:
            state["dquery"] = dquery
        else:
            state["dquery"] += dquery

    def finish_candidate_pass(
        self,
        params: ParamDict,
        queries: np.ndarray,
        direction: str,
        state: Optional[dict],
        grads: ParamDict,
    ) -> None:
        if state is None or state["dquery"] is None:
            return
        dquery = state["dquery"]
        np.add.at(grads["entities"], queries[:, 0], dquery)
        relation_sign = 1.0 if direction == TAIL else -1.0
        np.add.at(grads["relations"], queries[:, 1], relation_sign * dquery)

    # ------------------------------------------------------------------
    # Relation-materialized inference
    # ------------------------------------------------------------------
    def relation_operator(
        self, params: ParamDict, relation: int, direction: str = TAIL
    ) -> RelationOperator:
        return TransERelationOperator(self, params, relation, direction)


class TransERelationOperator(RelationOperator):
    """One relation's translation vector, sign-resolved once per direction.

    Projection is a single broadcast add (``h + r`` for tail queries,
    ``t - r`` for head queries); scoring compares the translated queries
    against the raw entity-table slice under the model's distance.
    """

    def __init__(
        self,
        scoring_function: "TransE",
        params: ParamDict,
        relation: int,
        direction: str,
    ) -> None:
        super().__init__(scoring_function, params, relation, direction)
        translation = params["relations"][self.relation]
        self._translation = translation if self.direction == TAIL else -translation

    def project(self, entity_indices: np.ndarray) -> np.ndarray:
        rows = self.params["entities"][np.asarray(entity_indices, dtype=np.int64)]
        return rows + self._translation

    def score(self, projection: np.ndarray, start: int, stop: int) -> np.ndarray:
        diff = projection[:, None, :] - self.params["entities"][None, start:stop, :]
        return -self.scoring_function._distance(diff)


class RotatE(ScoringFunction):
    r"""RotatE (Sun et al., 2019): relations rotate complex entity embeddings.

    The entity table has an even dimension ``d``; the first ``d / 2`` columns
    are the real parts and the last ``d / 2`` the imaginary parts.  The
    relation table stores one phase per complex coordinate, so its shape is
    ``(num_relations, d / 2)``.

    The score is ``-sum_i |h_i * r_i - t_i|`` with ``|.|`` the *complex
    modulus* (as in the original paper), which makes element-wise rotation an
    exact isometry: head-prediction queries reduce to comparing
    ``t \circ conj(r)`` against raw candidate embeddings.
    """

    name = "RotatE"

    #: Numerical floor for the complex modulus when computing gradients.
    _modulus_epsilon = 1e-12

    def init_params(
        self,
        num_entities: int,
        num_relations: int,
        dimension: int,
        rng: RngLike = None,
        scale: float = 0.1,
    ) -> ParamDict:
        if dimension % 2 != 0:
            raise ValueError("RotatE requires an even embedding dimension")
        gen = ensure_rng(rng)
        return {
            "entities": gen.uniform(-scale, scale, size=(num_entities, dimension)),
            "relations": gen.uniform(-np.pi, np.pi, size=(num_relations, dimension // 2)),
        }

    # -- internal helpers -------------------------------------------------
    @staticmethod
    def _split(array: np.ndarray) -> tuple:
        half = array.shape[-1] // 2
        return array[..., :half], array[..., half:]

    def _query_vectors(self, params: ParamDict, queries: np.ndarray, direction: str) -> np.ndarray:
        r"""Rotate the query entity so candidates can be compared directly.

        Tail: ``q = h \circ r``.  Head: because rotation is an isometry,
        ``||x \circ r - t|| = ||x - t \circ conj(r)||``, so ``q = t \circ conj(r)``.
        """
        entities, phases = params["entities"], params["relations"]
        query = entities[queries[:, 0]]
        theta = phases[queries[:, 1]]
        real, imag = self._split(query)
        cos, sin = np.cos(theta), np.sin(theta)
        if direction == TAIL:
            rotated_real = real * cos - imag * sin
            rotated_imag = real * sin + imag * cos
        else:
            rotated_real = real * cos + imag * sin
            rotated_imag = -real * sin + imag * cos
        return np.concatenate([rotated_real, rotated_imag], axis=-1)

    def _modulus(self, diff: np.ndarray) -> np.ndarray:
        """Complex modulus per coordinate: diff holds [real | imaginary] halves."""
        real, imag = self._split(diff)
        return np.sqrt(real * real + imag * imag)

    def score_triples(self, params: ParamDict, triples: np.ndarray) -> np.ndarray:
        triples = check_triples(triples)
        queries = triples[:, [0, 1]]
        rotated = self._query_vectors(params, queries, TAIL)
        tails = params["entities"][triples[:, 2]]
        return -np.sum(self._modulus(rotated - tails), axis=-1)

    def score_candidates(
        self,
        params: ParamDict,
        queries: np.ndarray,
        direction: str = TAIL,
        candidates: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        queries = check_queries(queries)
        validate_direction(direction)
        candidate_index = self.candidate_entities(params, candidates)
        candidate_rows = params["entities"][candidate_index]
        query_vectors = self._query_vectors(params, queries, direction)
        diff = query_vectors[:, None, :] - candidate_rows[None, :, :]
        return -np.sum(self._modulus(diff), axis=-1)

    def grad_candidates(
        self,
        params: ParamDict,
        queries: np.ndarray,
        dscores: np.ndarray,
        direction: str = TAIL,
        candidates: Optional[np.ndarray] = None,
    ) -> ParamDict:
        queries = check_queries(queries)
        validate_direction(direction)
        entities, phases = params["entities"], params["relations"]
        candidate_index = self.candidate_entities(params, candidates)
        candidate_rows = entities[candidate_index]
        query_vectors = self._query_vectors(params, queries, direction)
        dscores = np.asarray(dscores, dtype=np.float64)

        diff = query_vectors[:, None, :] - candidate_rows[None, :, :]
        diff_real, diff_imag = self._split(diff)
        modulus = np.sqrt(diff_real * diff_real + diff_imag * diff_imag) + self._modulus_epsilon
        # score = -sum(modulus); d modulus / d diff = diff / modulus
        scaled = -dscores[:, :, None] / modulus
        ddiff = np.concatenate([scaled * diff_real, scaled * diff_imag], axis=-1)
        dquery = np.sum(ddiff, axis=1)  # (batch, d)
        dcandidate = -np.sum(ddiff, axis=0)  # (num_candidates, d)

        grads = self.zero_grads(params)
        np.add.at(grads["entities"], candidate_index, dcandidate)

        # Backpropagate the rotation into the query entity and the phases.
        query_entity_index = queries[:, 0]
        query_relation_index = queries[:, 1]
        real, imag = self._split(entities[query_entity_index])
        theta = phases[query_relation_index]
        cos, sin = np.cos(theta), np.sin(theta)
        dreal_rot, dimag_rot = self._split(dquery)

        if direction == TAIL:
            # q_re = re*cos - im*sin ; q_im = re*sin + im*cos
            dreal = dreal_rot * cos + dimag_rot * sin
            dimag = -dreal_rot * sin + dimag_rot * cos
            dtheta = dreal_rot * (-real * sin - imag * cos) + dimag_rot * (real * cos - imag * sin)
        else:
            # q_re = re*cos + im*sin ; q_im = -re*sin + im*cos
            dreal = dreal_rot * cos - dimag_rot * sin
            dimag = dreal_rot * sin + dimag_rot * cos
            dtheta = dreal_rot * (-real * sin + imag * cos) + dimag_rot * (-real * cos - imag * sin)

        dquery_entity = np.concatenate([dreal, dimag], axis=-1)
        np.add.at(grads["entities"], query_entity_index, dquery_entity)
        np.add.at(grads["relations"], query_relation_index, dtheta)
        return grads

    # ------------------------------------------------------------------
    # Relation-materialized inference
    # ------------------------------------------------------------------
    def relation_operator(
        self, params: ParamDict, relation: int, direction: str = TAIL
    ) -> RelationOperator:
        return RotatERelationOperator(self, params, relation, direction)

    # ------------------------------------------------------------------
    # Chunk-aware scoring: rotate the query once, backpropagate the
    # rotation once per pass, and keep the difference tensor chunk-sized.
    # ------------------------------------------------------------------
    def begin_candidate_pass(
        self, params: ParamDict, queries: np.ndarray, direction: str = TAIL
    ) -> dict:
        queries = check_queries(queries)
        validate_direction(direction)
        return {
            "query_vectors": self._query_vectors(params, queries, direction),
            "dquery": None,
        }

    def _score_candidates_chunk(
        self,
        params: ParamDict,
        queries: np.ndarray,
        direction: str,
        start: int,
        stop: int,
        state: Optional[dict],
    ) -> np.ndarray:
        diff = state["query_vectors"][:, None, :] - params["entities"][None, start:stop, :]
        return -np.sum(self._modulus(diff), axis=-1)

    def _grad_candidates_chunk(
        self,
        params: ParamDict,
        queries: np.ndarray,
        dscores: np.ndarray,
        direction: str,
        start: int,
        stop: int,
        grads: ParamDict,
        state: Optional[dict],
    ) -> None:
        diff = state["query_vectors"][:, None, :] - params["entities"][None, start:stop, :]
        diff_real, diff_imag = self._split(diff)
        modulus = np.sqrt(diff_real * diff_real + diff_imag * diff_imag) + self._modulus_epsilon
        scaled = -np.asarray(dscores, dtype=np.float64)[:, :, None] / modulus
        ddiff = np.concatenate([scaled * diff_real, scaled * diff_imag], axis=-1)
        dquery = np.sum(ddiff, axis=1)
        grads["entities"][start:stop] -= np.sum(ddiff, axis=0)
        if state["dquery"] is None:
            state["dquery"] = dquery
        else:
            state["dquery"] += dquery

    def finish_candidate_pass(
        self,
        params: ParamDict,
        queries: np.ndarray,
        direction: str,
        state: Optional[dict],
        grads: ParamDict,
    ) -> None:
        if state is None or state["dquery"] is None:
            return
        entities, phases = params["entities"], params["relations"]
        query_entity_index = queries[:, 0]
        query_relation_index = queries[:, 1]
        real, imag = self._split(entities[query_entity_index])
        theta = phases[query_relation_index]
        cos, sin = np.cos(theta), np.sin(theta)
        dreal_rot, dimag_rot = self._split(state["dquery"])

        if direction == TAIL:
            dreal = dreal_rot * cos + dimag_rot * sin
            dimag = -dreal_rot * sin + dimag_rot * cos
            dtheta = dreal_rot * (-real * sin - imag * cos) + dimag_rot * (real * cos - imag * sin)
        else:
            dreal = dreal_rot * cos - dimag_rot * sin
            dimag = dreal_rot * sin + dimag_rot * cos
            dtheta = dreal_rot * (-real * sin + imag * cos) + dimag_rot * (-real * cos - imag * sin)

        dquery_entity = np.concatenate([dreal, dimag], axis=-1)
        np.add.at(grads["entities"], query_entity_index, dquery_entity)
        np.add.at(grads["relations"], query_relation_index, dtheta)


class RotatERelationOperator(RelationOperator):
    """One relation's rotation, with the phase trigonometry evaluated once.

    ``cos``/``sin`` of the relation's phases are computed at construction
    instead of once per query batch; projection applies the (direction-aware)
    rotation to the query entities and scoring compares against the raw
    entity-table slice, exploiting that rotations are isometries.
    """

    def __init__(
        self,
        scoring_function: "RotatE",
        params: ParamDict,
        relation: int,
        direction: str,
    ) -> None:
        super().__init__(scoring_function, params, relation, direction)
        theta = params["relations"][self.relation]
        self._cos = np.cos(theta)
        self._sin = np.sin(theta)

    def project(self, entity_indices: np.ndarray) -> np.ndarray:
        rows = self.params["entities"][np.asarray(entity_indices, dtype=np.int64)]
        real, imag = self.scoring_function._split(rows)
        cos, sin = self._cos, self._sin
        if self.direction == TAIL:
            rotated_real = real * cos - imag * sin
            rotated_imag = real * sin + imag * cos
        else:
            rotated_real = real * cos + imag * sin
            rotated_imag = -real * sin + imag * cos
        return np.concatenate([rotated_real, rotated_imag], axis=-1)

    def score(self, projection: np.ndarray, start: int, stop: int) -> np.ndarray:
        diff = projection[:, None, :] - self.params["entities"][None, start:stop, :]
        return -np.sum(self.scoring_function._modulus(diff), axis=-1)
