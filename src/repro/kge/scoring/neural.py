"""The MLP "general approximator" baseline (Appendix D of the paper).

Two small fully-connected networks are used: ``NN1`` combines the head and
relation embeddings into a vector whose dot product with the tail embedding
is the tail-prediction score, and ``NN2`` plays the symmetric role for head
prediction.  The paper uses this model to show that an unconstrained
general approximator, despite covering every bilinear model in principle,
performs much worse than the structured search space (Fig. 6).

Both networks have the layout ``2d -> hidden -> d`` with a ``tanh``
non-linearity after the first layer, mirroring the paper's 128-64-64 network
at ``d = 64``.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.kge.scoring.base import (
    HEAD,
    TAIL,
    ParamDict,
    RelationOperator,
    ScoringFunction,
    check_queries,
    check_triples,
    validate_direction,
)
from repro.utils.rng import RngLike, ensure_rng


class MLPScoringFunction(ScoringFunction):
    """The two-network MLP scorer used as the Gen-Approx baseline."""

    name = "MLP"

    def __init__(self, hidden_units: Optional[int] = None) -> None:
        # ``None`` means "use the embedding dimension", matching the paper.
        self.hidden_units = hidden_units

    # ------------------------------------------------------------------
    # Parameters
    # ------------------------------------------------------------------
    def init_params(
        self,
        num_entities: int,
        num_relations: int,
        dimension: int,
        rng: RngLike = None,
        scale: float = 0.1,
    ) -> ParamDict:
        gen = ensure_rng(rng)
        hidden = self.hidden_units or dimension
        params: ParamDict = {
            "entities": gen.uniform(-scale, scale, size=(num_entities, dimension)),
            "relations": gen.uniform(-scale, scale, size=(num_relations, dimension)),
        }
        for prefix in ("nn1", "nn2"):
            params[f"{prefix}_w1"] = gen.normal(0.0, 1.0 / np.sqrt(2 * dimension), size=(2 * dimension, hidden))
            params[f"{prefix}_b1"] = np.zeros(hidden)
            params[f"{prefix}_w2"] = gen.normal(0.0, 1.0 / np.sqrt(hidden), size=(hidden, dimension))
            params[f"{prefix}_b2"] = np.zeros(dimension)
        return params

    # ------------------------------------------------------------------
    # Forward / backward through one network
    # ------------------------------------------------------------------
    @staticmethod
    def _forward(
        params: ParamDict, prefix: str, inputs: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return (output, hidden activation) of the named network."""
        hidden = np.tanh(inputs @ params[f"{prefix}_w1"] + params[f"{prefix}_b1"])
        output = hidden @ params[f"{prefix}_w2"] + params[f"{prefix}_b2"]
        return output, hidden

    @staticmethod
    def _backward(
        params: ParamDict,
        grads: ParamDict,
        prefix: str,
        inputs: np.ndarray,
        hidden: np.ndarray,
        doutput: np.ndarray,
    ) -> np.ndarray:
        """Accumulate network gradients and return d loss / d inputs."""
        grads[f"{prefix}_w2"] += hidden.T @ doutput
        grads[f"{prefix}_b2"] += doutput.sum(axis=0)
        dhidden = (doutput @ params[f"{prefix}_w2"].T) * (1.0 - hidden * hidden)
        grads[f"{prefix}_w1"] += inputs.T @ dhidden
        grads[f"{prefix}_b1"] += dhidden.sum(axis=0)
        return dhidden @ params[f"{prefix}_w1"].T

    @staticmethod
    def _network_for(direction: str) -> str:
        return "nn1" if direction == TAIL else "nn2"

    # ------------------------------------------------------------------
    # ScoringFunction API
    # ------------------------------------------------------------------
    def score_triples(self, params: ParamDict, triples: np.ndarray) -> np.ndarray:
        triples = check_triples(triples)
        entities, relations = params["entities"], params["relations"]
        inputs = np.concatenate([entities[triples[:, 0]], relations[triples[:, 1]]], axis=1)
        combined, _hidden = self._forward(params, "nn1", inputs)
        return np.sum(combined * entities[triples[:, 2]], axis=1)

    def score_candidates(
        self,
        params: ParamDict,
        queries: np.ndarray,
        direction: str = TAIL,
        candidates: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        queries = check_queries(queries)
        validate_direction(direction)
        entities, relations = params["entities"], params["relations"]
        candidate_index = self.candidate_entities(params, candidates)
        candidate_rows = entities[candidate_index]
        inputs = np.concatenate([entities[queries[:, 0]], relations[queries[:, 1]]], axis=1)
        combined, _hidden = self._forward(params, self._network_for(direction), inputs)
        return combined @ candidate_rows.T

    def grad_candidates(
        self,
        params: ParamDict,
        queries: np.ndarray,
        dscores: np.ndarray,
        direction: str = TAIL,
        candidates: Optional[np.ndarray] = None,
    ) -> ParamDict:
        queries = check_queries(queries)
        validate_direction(direction)
        entities, relations = params["entities"], params["relations"]
        candidate_index = self.candidate_entities(params, candidates)
        candidate_rows = entities[candidate_index]
        query_entities = entities[queries[:, 0]]
        query_relations = relations[queries[:, 1]]
        dscores = np.asarray(dscores, dtype=np.float64)

        prefix = self._network_for(direction)
        inputs = np.concatenate([query_entities, query_relations], axis=1)
        combined, hidden = self._forward(params, prefix, inputs)

        grads = self.zero_grads(params)
        # scores = combined @ candidate_rows.T
        np.add.at(grads["entities"], candidate_index, dscores.T @ combined)
        dcombined = dscores @ candidate_rows
        dinputs = self._backward(params, grads, prefix, inputs, hidden, dcombined)

        dimension = entities.shape[1]
        np.add.at(grads["entities"], queries[:, 0], dinputs[:, :dimension])
        np.add.at(grads["relations"], queries[:, 1], dinputs[:, dimension:])
        return grads

    # ------------------------------------------------------------------
    # Chunk-aware scoring: one network forward per pass (not per chunk),
    # one backward through the network per pass in ``finish``.
    # ------------------------------------------------------------------
    def begin_candidate_pass(
        self, params: ParamDict, queries: np.ndarray, direction: str = TAIL
    ) -> dict:
        queries = check_queries(queries)
        validate_direction(direction)
        entities, relations = params["entities"], params["relations"]
        inputs = np.concatenate([entities[queries[:, 0]], relations[queries[:, 1]]], axis=1)
        combined, hidden = self._forward(params, self._network_for(direction), inputs)
        return {
            "inputs": inputs,
            "hidden": hidden,
            "combined": combined,
            "dcombined": None,
        }

    def _score_candidates_chunk(
        self,
        params: ParamDict,
        queries: np.ndarray,
        direction: str,
        start: int,
        stop: int,
        state: Optional[dict],
    ) -> np.ndarray:
        return state["combined"] @ params["entities"][start:stop].T

    def _grad_candidates_chunk(
        self,
        params: ParamDict,
        queries: np.ndarray,
        dscores: np.ndarray,
        direction: str,
        start: int,
        stop: int,
        grads: ParamDict,
        state: Optional[dict],
    ) -> None:
        dscores = np.asarray(dscores, dtype=np.float64)
        grads["entities"][start:stop] += dscores.T @ state["combined"]
        dcombined = dscores @ params["entities"][start:stop]
        if state["dcombined"] is None:
            state["dcombined"] = dcombined
        else:
            state["dcombined"] += dcombined

    def finish_candidate_pass(
        self,
        params: ParamDict,
        queries: np.ndarray,
        direction: str,
        state: Optional[dict],
        grads: ParamDict,
    ) -> None:
        if state is None or state["dcombined"] is None:
            return
        dinputs = self._backward(
            params,
            grads,
            self._network_for(direction),
            state["inputs"],
            state["hidden"],
            state["dcombined"],
        )
        dimension = params["entities"].shape[1]
        np.add.at(grads["entities"], queries[:, 0], dinputs[:, :dimension])
        np.add.at(grads["relations"], queries[:, 1], dinputs[:, dimension:])

    # ------------------------------------------------------------------
    # Relation-materialized inference
    # ------------------------------------------------------------------
    def relation_operator(
        self, params: ParamDict, relation: int, direction: str = TAIL
    ) -> RelationOperator:
        return MLPRelationOperator(self, params, relation, direction)


class MLPRelationOperator(RelationOperator):
    """The direction's network with the relation embedding bound once.

    Projection broadcasts the (single) relation row next to the query
    entities and runs one forward pass through the direction's network;
    scoring is the combined-vector GEMM against the entity-table slice.
    """

    def __init__(
        self,
        scoring_function: "MLPScoringFunction",
        params: ParamDict,
        relation: int,
        direction: str,
    ) -> None:
        super().__init__(scoring_function, params, relation, direction)
        self._relation_row = params["relations"][self.relation]
        self._prefix = scoring_function._network_for(self.direction)

    def project(self, entity_indices: np.ndarray) -> np.ndarray:
        rows = self.params["entities"][np.asarray(entity_indices, dtype=np.int64)]
        inputs = np.concatenate(
            [rows, np.broadcast_to(self._relation_row, rows.shape)], axis=1
        )
        combined, _hidden = self.scoring_function._forward(self.params, self._prefix, inputs)
        return combined

    def score(self, projection: np.ndarray, start: int, stop: int) -> np.ndarray:
        return projection @ self.params["entities"][start:stop].T
