"""Name-based registry of scoring functions.

Examples, benchmarks and the HPO module all refer to models by name
(``"complex"``, ``"transe"`` …); this registry centralizes the mapping so
that adding a new model is a one-line change.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.kge.scoring.base import ScoringFunction
from repro.kge.scoring.bilinear import (
    RESCAL,
    Analogy,
    BlockScoringFunction,
    ComplEx,
    DistMult,
    SimplE,
)
from repro.kge.scoring.blocks import BlockStructure, classical_structure
from repro.kge.scoring.neural import MLPScoringFunction
from repro.kge.scoring.translational import RotatE, TransE

_FACTORIES: Dict[str, Callable[[], ScoringFunction]] = {
    "distmult": DistMult,
    "complex": ComplEx,
    "analogy": Analogy,
    "simple": SimplE,
    "cp": SimplE,
    "rescal": RESCAL,
    "transe": TransE,
    "rotate": RotatE,
    "mlp": MLPScoringFunction,
}

#: Display-name aliases resolved by :func:`get_scoring_function` but not
#: listed as primary names.  Saved models and serving artifacts record the
#: instance's display name (e.g. ``"TransE-L1"``), which must round-trip.
_ALIASES: Dict[str, Callable[[], ScoringFunction]] = {
    "transel1": lambda: TransE(norm=1),
    "transel2": lambda: TransE(norm=2),
}


def available_scoring_functions() -> List[str]:
    """Names accepted by :func:`get_scoring_function`."""
    return sorted(_FACTORIES)


def get_scoring_function(name: str) -> ScoringFunction:
    """Instantiate a scoring function by name.

    The lookup is case-insensitive and ignores dashes/underscores, so
    ``"DistMult"`` and ``"dist_mult"`` both work.
    """
    key = name.lower().replace("-", "").replace("_", "")
    factory = _FACTORIES.get(key) or _ALIASES.get(key)
    if factory is None:
        raise KeyError(
            f"unknown scoring function {name!r}; available: "
            f"{', '.join(available_scoring_functions())}"
        )
    return factory()


def block_scoring_function(structure: BlockStructure) -> BlockScoringFunction:
    """Wrap an arbitrary block structure (e.g. a searched SF) as a model."""
    return BlockScoringFunction(structure)


def classical_block_scoring_function(name: str) -> BlockScoringFunction:
    """Build the block-scorer version of a named classical bilinear model."""
    return BlockScoringFunction(classical_structure(name))
