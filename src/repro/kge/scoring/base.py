"""The scoring-function interface shared by every model in the library.

A scoring function owns its parameter layout (a dict of named NumPy arrays —
at minimum ``"entities"`` and ``"relations"``) and exposes three operations:

* ``score_triples`` — plausibility of explicit (h, r, t) triples;
* ``score_candidates`` — scores of a batch of queries against a candidate
  entity set (all entities when ``candidates is None``), in either the
  tail-prediction or head-prediction direction;
* ``grad_candidates`` — gradients of a scalar loss with respect to every
  parameter array, given the upstream gradient of the candidate scores.

The trainer composes ``score_candidates``/``grad_candidates`` with a loss;
the evaluator only needs ``score_candidates``.  Keeping gradients analytic
(no autograd) is what makes a pure-NumPy search over hundreds of candidate
scoring functions tractable.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional

import numpy as np

from repro.utils.rng import RngLike, ensure_rng

#: Parameter and gradient containers are plain dicts of arrays.
ParamDict = Dict[str, np.ndarray]

#: The two ranking directions.
TAIL = "tail"
HEAD = "head"


def validate_direction(direction: str) -> str:
    """Validate a ranking direction string."""
    if direction not in (TAIL, HEAD):
        raise ValueError(f"direction must be 'tail' or 'head', got {direction!r}")
    return direction


class ScoringFunction(ABC):
    """Abstract base class for all scoring functions."""

    #: Human-readable model name (set by subclasses).
    name: str = "scoring-function"

    # ------------------------------------------------------------------
    # Parameters
    # ------------------------------------------------------------------
    def init_params(
        self,
        num_entities: int,
        num_relations: int,
        dimension: int,
        rng: RngLike = None,
        scale: float = 0.1,
    ) -> ParamDict:
        """Initialize all trainable arrays.

        The default layout is one ``(num_entities, dimension)`` entity table
        and one ``(num_relations, dimension)`` relation table, both drawn
        from a zero-mean uniform distribution of half-width ``scale``.
        Subclasses with extra parameters extend the returned dict.
        """
        if dimension <= 0:
            raise ValueError("dimension must be positive")
        gen = ensure_rng(rng)
        return {
            "entities": gen.uniform(-scale, scale, size=(num_entities, dimension)),
            "relations": gen.uniform(-scale, scale, size=(num_relations, dimension)),
        }

    def zero_grads(self, params: ParamDict) -> ParamDict:
        """Return a gradient dict of zeros matching ``params``."""
        return {key: np.zeros_like(value) for key, value in params.items()}

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    @abstractmethod
    def score_triples(self, params: ParamDict, triples: np.ndarray) -> np.ndarray:
        """Score explicit triples.

        Parameters
        ----------
        triples:
            ``(batch, 3)`` integer array of (head, relation, tail).

        Returns
        -------
        ``(batch,)`` float array of plausibility scores (higher = better).
        """

    @abstractmethod
    def score_candidates(
        self,
        params: ParamDict,
        queries: np.ndarray,
        direction: str = TAIL,
        candidates: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Score queries against candidate entities.

        Parameters
        ----------
        queries:
            ``(batch, 2)`` integer array.  For ``direction="tail"`` each row
            is (head, relation) and candidates fill the tail slot; for
            ``direction="head"`` each row is (tail, relation) and candidates
            fill the head slot.
        candidates:
            Optional ``(num_candidates,)`` entity index array; ``None`` means
            every entity.

        Returns
        -------
        ``(batch, num_candidates)`` float array.
        """

    @abstractmethod
    def grad_candidates(
        self,
        params: ParamDict,
        queries: np.ndarray,
        dscores: np.ndarray,
        direction: str = TAIL,
        candidates: Optional[np.ndarray] = None,
    ) -> ParamDict:
        """Backpropagate through :meth:`score_candidates`.

        Parameters
        ----------
        dscores:
            ``(batch, num_candidates)`` upstream gradient (d loss / d score).

        Returns
        -------
        A dict of dense gradient arrays with the same keys/shapes as
        ``params``.
        """

    # ------------------------------------------------------------------
    # Chunk-aware scoring (the batched training engine's interface)
    # ------------------------------------------------------------------
    # The batched trainer scores every query against the entity vocabulary
    # in contiguous chunks ``[start, stop)`` so that peak memory stays
    # bounded.  Most of the per-query work (embedding lookups, relation
    # projections, network forward passes) is identical for every chunk, so
    # the pass is bracketed: ``begin_candidate_pass`` precomputes that state
    # once, the ``*_chunk`` methods reuse it per chunk, and
    # ``finish_candidate_pass`` scatters gradient contributions that were
    # accumulated across chunks (one scatter per pass instead of one per
    # chunk).  The defaults below delegate to ``score_candidates`` /
    # ``grad_candidates`` so every scoring function works unmodified;
    # subclasses override the ``_``-prefixed hooks with fused
    # implementations.  The public methods own the pass protocol: callers
    # may omit ``state`` for a standalone chunk call, in which case the
    # state is created (and, for gradients, finalized) on the spot.

    def begin_candidate_pass(
        self, params: ParamDict, queries: np.ndarray, direction: str = TAIL
    ) -> Optional[dict]:
        """Precompute per-query state shared by every chunk of one pass."""
        return None

    def score_candidates_chunk(
        self,
        params: ParamDict,
        queries: np.ndarray,
        direction: str,
        start: int,
        stop: int,
        state: Optional[dict] = None,
    ) -> np.ndarray:
        """Score queries against candidate entities ``start:stop``."""
        if state is None:
            state = self.begin_candidate_pass(params, queries, direction)
        return self._score_candidates_chunk(params, queries, direction, start, stop, state)

    def grad_candidates_chunk(
        self,
        params: ParamDict,
        queries: np.ndarray,
        dscores: np.ndarray,
        direction: str,
        start: int,
        stop: int,
        grads: ParamDict,
        state: Optional[dict] = None,
    ) -> None:
        """Accumulate the gradient of the ``start:stop`` chunk into ``grads``."""
        own_pass = state is None
        if own_pass:
            state = self.begin_candidate_pass(params, queries, direction)
        self._grad_candidates_chunk(params, queries, dscores, direction, start, stop, grads, state)
        if own_pass:
            self.finish_candidate_pass(params, queries, direction, state, grads)

    def finish_candidate_pass(
        self,
        params: ParamDict,
        queries: np.ndarray,
        direction: str,
        state: Optional[dict],
        grads: ParamDict,
    ) -> None:
        """Scatter cross-chunk gradient accumulators into ``grads``."""
        return None

    def _score_candidates_chunk(
        self,
        params: ParamDict,
        queries: np.ndarray,
        direction: str,
        start: int,
        stop: int,
        state: Optional[dict],
    ) -> np.ndarray:
        return self.score_candidates(
            params, queries, direction=direction, candidates=np.arange(start, stop, dtype=np.int64)
        )

    def _grad_candidates_chunk(
        self,
        params: ParamDict,
        queries: np.ndarray,
        dscores: np.ndarray,
        direction: str,
        start: int,
        stop: int,
        grads: ParamDict,
        state: Optional[dict],
    ) -> None:
        chunk_grads = self.grad_candidates(
            params,
            queries,
            dscores,
            direction=direction,
            candidates=np.arange(start, stop, dtype=np.int64),
        )
        for key, grad in chunk_grads.items():
            grads[key] += grad

    # ------------------------------------------------------------------
    # Relation-materialized inference (the serving engine's interface)
    # ------------------------------------------------------------------
    # Serving workloads answer many queries that share a relation.  Scoring
    # then splits into a query-side *projection* (depends on the query entity
    # and the relation) and a candidate-side comparison (depends only on the
    # projection and the candidate embeddings).  A RelationOperator
    # materializes one relation's parameters for one direction exactly once
    # — gathered, signed and reshaped into whatever form makes the per-query
    # work a broadcast plus (for dot-product families) a single GEMM per
    # batch — and is then reused for every query batch on that relation.
    # The default below delegates to the chunk-aware candidate pass, so
    # every scoring function gets a working operator; subclasses override
    # ``relation_operator`` with fused implementations.

    def relation_operator(
        self, params: ParamDict, relation: int, direction: str = TAIL
    ) -> "RelationOperator":
        """Materialize the scoring operator of one (relation, direction) pair."""
        return RelationOperator(self, params, relation, direction)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def candidate_entities(self, params: ParamDict, candidates: Optional[np.ndarray]) -> np.ndarray:
        """Resolve the candidate index array (all entities when ``None``)."""
        num_entities = params["entities"].shape[0]
        if candidates is None:
            return np.arange(num_entities, dtype=np.int64)
        candidates = np.asarray(candidates, dtype=np.int64)
        if candidates.ndim != 1:
            raise ValueError("candidates must be a 1-D index array")
        return candidates

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return f"{type(self).__name__}(name={self.name!r})"


class RelationOperator:
    """The scoring operator of one (relation, direction) pair.

    The two-step protocol mirrors how batched inference uses it:

    * :meth:`project` turns a batch of query-entity indices into the
      query-side state (for bilinear families: one fused ``(batch,
      dimension)`` projection matrix);
    * :meth:`score` compares a projection against the contiguous candidate
      entities ``start:stop`` (for bilinear families: one GEMM against the
      entity-table slice).

    This generic implementation reuses the chunk-aware candidate pass, so it
    is correct for every scoring function; family-specific subclasses avoid
    the per-query relation gathers entirely by materializing the relation's
    parameters once at construction.
    """

    def __init__(
        self,
        scoring_function: "ScoringFunction",
        params: ParamDict,
        relation: int,
        direction: str,
    ) -> None:
        num_relations = params["relations"].shape[0]
        relation = int(relation)
        if not 0 <= relation < num_relations:
            raise ValueError(
                f"relation index {relation} out of range [0, {num_relations})"
            )
        self.scoring_function = scoring_function
        self.params = params
        self.relation = relation
        self.direction = validate_direction(direction)

    @property
    def num_entities(self) -> int:
        return int(self.params["entities"].shape[0])

    def _queries(self, entity_indices: np.ndarray) -> np.ndarray:
        entity_indices = np.asarray(entity_indices, dtype=np.int64)
        relations = np.full_like(entity_indices, self.relation)
        return np.stack([entity_indices, relations], axis=1)

    def project(self, entity_indices: np.ndarray) -> object:
        """Precompute the query-side state for a batch of query entities."""
        queries = self._queries(entity_indices)
        return {
            "queries": queries,
            "state": self.scoring_function.begin_candidate_pass(
                self.params, queries, self.direction
            ),
        }

    def score(self, projection: object, start: int, stop: int) -> np.ndarray:
        """Scores of every projected query against entities ``start:stop``."""
        return self.scoring_function.score_candidates_chunk(
            self.params,
            projection["queries"],
            self.direction,
            start,
            stop,
            projection["state"],
        )

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return (
            f"{type(self).__name__}(scoring_function={self.scoring_function.name!r}, "
            f"relation={self.relation}, direction={self.direction!r})"
        )


def check_queries(queries: np.ndarray) -> np.ndarray:
    """Validate a (batch, 2) query array."""
    queries = np.asarray(queries, dtype=np.int64)
    if queries.ndim != 2 or queries.shape[1] != 2:
        raise ValueError("queries must have shape (batch, 2)")
    return queries


def check_triples(triples: np.ndarray) -> np.ndarray:
    """Validate a (batch, 3) triple array."""
    triples = np.asarray(triples, dtype=np.int64)
    if triples.ndim != 2 or triples.shape[1] != 3:
        raise ValueError("triples must have shape (batch, 3)")
    return triples
