"""The block-structure representation of bilinear scoring functions.

Definition 2 of the paper: a bilinear scoring function is determined by a
4x4 block matrix ``g(r)`` whose (i, j) block is ``diag(a_ij)`` with
``a_ij in {0, ±r_1, ±r_2, ±r_3, ±r_4}``; the score is
``f(h, r, t) = h^T g(r) t`` with ``h``, ``r``, ``t`` split into four chunks.

A :class:`BlockStructure` stores the non-zero blocks as ``(row, col,
component, sign)`` tuples, where ``row``/``col``/``component`` are 0-based
chunk indices and ``sign`` is ``+1`` or ``-1``.  This is exactly the "4x4
substitute matrix" the paper uses for the filter and the SRF features, and it
is the genotype manipulated by the search algorithm.

The classical bilinear models are specific fillings of that matrix (Fig. 1);
they are exposed here as named constructors so that the search space provably
covers them and so that tests can cross-check the generic block scorer
against direct implementations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

#: One non-zero block: (row chunk, column chunk, relation component, sign).
Block = Tuple[int, int, int, int]

#: Number of chunks the embeddings are split into (k = 4 in the paper).
NUM_CHUNKS = 4


def _normalize_block(block: Sequence[int]) -> Block:
    """Validate and canonicalize one (row, col, component, sign) tuple."""
    if len(block) != 4:
        raise ValueError(f"a block must have 4 fields, got {len(block)}")
    row, col, component, sign = (int(v) for v in block)
    for index, label in ((row, "row"), (col, "col"), (component, "component")):
        if not 0 <= index < NUM_CHUNKS:
            raise ValueError(f"block {label} index {index} out of range [0, {NUM_CHUNKS})")
    if sign not in (-1, 1):
        raise ValueError(f"block sign must be +1 or -1, got {sign}")
    return (row, col, component, sign)


@dataclass(frozen=True)
class BlockStructure:
    """An immutable set of non-zero blocks defining one bilinear SF.

    Blocks are stored sorted so that two structures with the same blocks in
    different order compare (and hash) equal.  At most one block may occupy a
    given (row, col) cell.
    """

    blocks: Tuple[Block, ...]
    name: str = ""

    def __init__(self, blocks: Iterable[Sequence[int]], name: str = "") -> None:
        normalized = sorted(_normalize_block(b) for b in blocks)
        cells = [(row, col) for row, col, _comp, _sign in normalized]
        if len(cells) != len(set(cells)):
            raise ValueError("two blocks occupy the same (row, col) cell")
        object.__setattr__(self, "blocks", tuple(normalized))
        object.__setattr__(self, "name", name)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_blocks(self) -> int:
        """Number of non-zero blocks (the paper's ``b``)."""
        return len(self.blocks)

    def components_used(self) -> List[int]:
        """Sorted list of distinct relation components appearing in the structure."""
        return sorted({component for _row, _col, component, _sign in self.blocks})

    def cells(self) -> List[Tuple[int, int]]:
        """The occupied (row, col) cells."""
        return [(row, col) for row, col, _comp, _sign in self.blocks]

    def substitute_matrix(self) -> np.ndarray:
        """The 4x4 integer substitute matrix used by the filter and SRF.

        Entry (i, j) is ``0`` for an empty cell and ``±(component + 1)``
        otherwise — i.e. the values live in ``{0, ±1, ±2, ±3, ±4}`` exactly
        as in the paper's description of the filter.
        """
        matrix = np.zeros((NUM_CHUNKS, NUM_CHUNKS), dtype=np.int64)
        for row, col, component, sign in self.blocks:
            matrix[row, col] = sign * (component + 1)
        return matrix

    @classmethod
    def from_substitute_matrix(cls, matrix: np.ndarray, name: str = "") -> "BlockStructure":
        """Inverse of :meth:`substitute_matrix`."""
        matrix = np.asarray(matrix, dtype=np.int64)
        if matrix.shape != (NUM_CHUNKS, NUM_CHUNKS):
            raise ValueError(f"substitute matrix must be {NUM_CHUNKS}x{NUM_CHUNKS}")
        blocks: List[Block] = []
        for row in range(NUM_CHUNKS):
            for col in range(NUM_CHUNKS):
                value = int(matrix[row, col])
                if value == 0:
                    continue
                if not 1 <= abs(value) <= NUM_CHUNKS:
                    raise ValueError(f"invalid substitute value {value} at ({row}, {col})")
                blocks.append((row, col, abs(value) - 1, 1 if value > 0 else -1))
        return cls(blocks, name=name)

    # ------------------------------------------------------------------
    # Semantics: the relation matrix g(r) and the score
    # ------------------------------------------------------------------
    def relation_matrix(self, relation_embedding: np.ndarray) -> np.ndarray:
        """Materialize ``g(r)`` as a dense ``(d, d)`` matrix.

        Only used in tests and case studies; the scorer never builds this
        matrix explicitly.
        """
        relation_embedding = np.asarray(relation_embedding, dtype=np.float64)
        if relation_embedding.ndim != 1 or relation_embedding.size % NUM_CHUNKS != 0:
            raise ValueError("relation embedding must be 1-D with length divisible by 4")
        chunk = relation_embedding.size // NUM_CHUNKS
        dimension = relation_embedding.size
        matrix = np.zeros((dimension, dimension), dtype=np.float64)
        chunks = relation_embedding.reshape(NUM_CHUNKS, chunk)
        for row, col, component, sign in self.blocks:
            rows = slice(row * chunk, (row + 1) * chunk)
            cols = slice(col * chunk, (col + 1) * chunk)
            matrix[rows, cols] = sign * np.diag(chunks[component])
        return matrix

    def score(
        self,
        head: np.ndarray,
        relation: np.ndarray,
        tail: np.ndarray,
    ) -> float:
        """Reference (slow) implementation of ``h^T g(r) t`` for one triple."""
        head = np.asarray(head, dtype=np.float64)
        relation = np.asarray(relation, dtype=np.float64)
        tail = np.asarray(tail, dtype=np.float64)
        if not head.shape == relation.shape == tail.shape:
            raise ValueError("head, relation and tail must share a shape")
        chunk = head.size // NUM_CHUNKS
        h_chunks = head.reshape(NUM_CHUNKS, chunk)
        r_chunks = relation.reshape(NUM_CHUNKS, chunk)
        t_chunks = tail.reshape(NUM_CHUNKS, chunk)
        total = 0.0
        for row, col, component, sign in self.blocks:
            total += sign * float(np.sum(h_chunks[row] * r_chunks[component] * t_chunks[col]))
        return total

    # ------------------------------------------------------------------
    # Construction helpers used by the search
    # ------------------------------------------------------------------
    def with_block(self, row: int, col: int, component: int, sign: int) -> "BlockStructure":
        """Return a new structure with one extra block (the f^{b+1} rule)."""
        return BlockStructure(list(self.blocks) + [(row, col, component, sign)], name="")

    def transpose(self) -> "BlockStructure":
        """The structure of ``g(r)^T`` (swap row and column of every block)."""
        return BlockStructure(
            [(col, row, component, sign) for row, col, component, sign in self.blocks],
            name=f"{self.name}^T" if self.name else "",
        )

    def key(self) -> Tuple[Block, ...]:
        """Hashable identity (the sorted block tuple)."""
        return self.blocks

    def __len__(self) -> int:
        return len(self.blocks)

    def __str__(self) -> str:
        return render_structure(self)

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        label = f" {self.name!r}" if self.name else ""
        return f"BlockStructure({list(self.blocks)}{label})"


def render_structure(structure: BlockStructure) -> str:
    """Render the 4x4 substitute matrix as aligned text (used by Fig. 5 output).

    Cells are printed as ``.`` (zero), ``+rK`` or ``-rK``.
    """
    matrix = structure.substitute_matrix()
    rows: List[str] = []
    for row in range(NUM_CHUNKS):
        cells = []
        for col in range(NUM_CHUNKS):
            value = int(matrix[row, col])
            if value == 0:
                cells.append("  . ")
            else:
                sign = "+" if value > 0 else "-"
                cells.append(f"{sign}r{abs(value)} ")
        rows.append(" ".join(cells))
    header = f"[{structure.name}]" if structure.name else "[block structure]"
    return header + "\n" + "\n".join(rows)


# ----------------------------------------------------------------------
# Named classical structures (Fig. 1 of the paper)
# ----------------------------------------------------------------------
def distmult_structure() -> BlockStructure:
    """DistMult: the diagonal filling <h_i, r_i, t_i> for i = 1..4."""
    return BlockStructure(
        [(i, i, i, 1) for i in range(NUM_CHUNKS)],
        name="DistMult",
    )


def complex_structure() -> BlockStructure:
    """ComplEx re-expressed over four real chunks (Eq. 3 of the paper).

    With the complex embedding written as two (real, imaginary) pairs
    ``(h1 + i h3)`` and ``(h2 + i h4)``, the real part of
    ``<h, r, conj(t)>`` expands into eight signed tri-linear terms.
    """
    return BlockStructure(
        [
            (0, 0, 0, 1),
            (0, 2, 2, 1),
            (2, 2, 0, 1),
            (2, 0, 2, -1),
            (1, 1, 1, 1),
            (1, 3, 3, 1),
            (3, 3, 1, 1),
            (3, 1, 3, -1),
        ],
        name="ComplEx",
    )


def analogy_structure() -> BlockStructure:
    """Analogy: two real (DistMult) chunks plus one complex pair (Eq. 5)."""
    return BlockStructure(
        [
            (0, 0, 0, 1),
            (1, 1, 1, 1),
            (2, 2, 2, 1),
            (2, 3, 3, 1),
            (3, 3, 2, 1),
            (3, 2, 3, -1),
        ],
        name="Analogy",
    )


def simple_structure() -> BlockStructure:
    """SimplE / CP: two independent embedding halves coupled crosswise (Eq. 6)."""
    return BlockStructure(
        [
            (0, 2, 0, 1),
            (1, 3, 1, 1),
            (2, 0, 2, 1),
            (3, 1, 3, 1),
        ],
        name="SimplE",
    )


#: Classical structures keyed by lower-case name.
CLASSICAL_STRUCTURES: Dict[str, BlockStructure] = {
    "distmult": distmult_structure(),
    "complex": complex_structure(),
    "analogy": analogy_structure(),
    "simple": simple_structure(),
    "cp": simple_structure(),
}


def classical_structure(name: str) -> BlockStructure:
    """Look up one of the named classical block structures."""
    key = name.lower()
    if key not in CLASSICAL_STRUCTURES:
        raise KeyError(
            f"unknown classical structure {name!r}; available: "
            f"{', '.join(sorted(CLASSICAL_STRUCTURES))}"
        )
    return CLASSICAL_STRUCTURES[key]
