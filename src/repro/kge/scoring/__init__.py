"""Scoring functions: the unified block family, classical BLMs, TDMs, MLP."""

from repro.kge.scoring.base import (
    HEAD,
    TAIL,
    ParamDict,
    RelationOperator,
    ScoringFunction,
)
from repro.kge.scoring.blocks import (
    NUM_CHUNKS,
    Block,
    BlockStructure,
    CLASSICAL_STRUCTURES,
    analogy_structure,
    classical_structure,
    complex_structure,
    distmult_structure,
    render_structure,
    simple_structure,
)
from repro.kge.scoring.bilinear import (
    RESCAL,
    Analogy,
    BlockScoringFunction,
    ComplEx,
    DistMult,
    SimplE,
)
from repro.kge.scoring.neural import MLPScoringFunction
from repro.kge.scoring.translational import RotatE, TransE
from repro.kge.scoring.registry import (
    available_scoring_functions,
    block_scoring_function,
    classical_block_scoring_function,
    get_scoring_function,
)

__all__ = [
    "HEAD",
    "TAIL",
    "ParamDict",
    "RelationOperator",
    "ScoringFunction",
    "NUM_CHUNKS",
    "Block",
    "BlockStructure",
    "CLASSICAL_STRUCTURES",
    "analogy_structure",
    "classical_structure",
    "complex_structure",
    "distmult_structure",
    "render_structure",
    "simple_structure",
    "RESCAL",
    "Analogy",
    "BlockScoringFunction",
    "ComplEx",
    "DistMult",
    "SimplE",
    "MLPScoringFunction",
    "RotatE",
    "TransE",
    "available_scoring_functions",
    "block_scoring_function",
    "classical_block_scoring_function",
    "get_scoring_function",
]
