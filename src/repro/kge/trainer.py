"""The stochastic training loop (Alg. 1 of the paper).

Each mini-batch contributes two terms, exactly as in the reciprocal /
multi-class training setup the paper adopts: a *tail-prediction* term where
``(h, r, ?)`` is scored against candidate entities, and a *head-prediction*
term for ``(?, r, t)``.  Gradients from both directions plus the regularizer
are summed and handed to the optimizer.

The trainer records a :class:`TrainingHistory` with per-epoch loss, wall
time and (optionally) validation MRR, which is what the learning-curve
figure (Fig. 4) and the early-stopping logic consume.

The per-batch loss/gradient computation is delegated to a
:class:`repro.kge.engine.TrainEngine` (``TrainingConfig.train_engine``):
``"batched"`` is the fused, entity-chunked fast path, ``"sparse"`` the
touched-rows-only path for pairwise losses, and ``"reference"`` the
original loop kept as the parity oracle.  Whenever validation runs during
``fit`` the trainer snapshots the best-validation parameters (and optimizer
state) and restores them before returning, so the returned parameters are
the checkpoint that actually achieved ``history.best_validation_mrr`` — not
whatever the last epoch happened to produce.  Early-stopping patience counts
*evaluations* without improvement (one evaluation every ``eval_every``
epochs), not epochs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional

import numpy as np

from repro.datasets.knowledge_graph import KnowledgeGraph
from repro.kge.engine import TrainEngine, get_train_engine
from repro.kge.losses import Loss, get_loss
from repro.kge.negative_sampling import NegativeSampler, UniformNegativeSampler
from repro.kge.optimizers import Optimizer, get_optimizer
from repro.kge.regularizers import L2Regularizer, Regularizer
from repro.kge.scoring.base import HEAD, TAIL, ParamDict, ScoringFunction
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.utils.config import TrainingConfig
from repro.utils.rng import ensure_rng

if TYPE_CHECKING:  # pragma: no cover - import for type checkers only
    from repro.datasets.pipeline import TripleStream as TripleStreamLike


@dataclass
class TrainingHistory:
    """Per-epoch training trace."""

    epochs: List[int] = field(default_factory=list)
    losses: List[float] = field(default_factory=list)
    elapsed_seconds: List[float] = field(default_factory=list)
    validation_mrr: List[Optional[float]] = field(default_factory=list)

    def record(
        self,
        epoch: int,
        loss: float,
        elapsed: float,
        validation_mrr: Optional[float] = None,
    ) -> None:
        self.epochs.append(int(epoch))
        self.losses.append(float(loss))
        self.elapsed_seconds.append(float(elapsed))
        self.validation_mrr.append(validation_mrr)

    @property
    def final_loss(self) -> Optional[float]:
        return self.losses[-1] if self.losses else None

    @property
    def best_validation_mrr(self) -> Optional[float]:
        observed = [value for value in self.validation_mrr if value is not None]
        return max(observed) if observed else None

    def as_dict(self) -> dict:
        return {
            "epochs": list(self.epochs),
            "losses": list(self.losses),
            "elapsed_seconds": list(self.elapsed_seconds),
            "validation_mrr": list(self.validation_mrr),
        }


class Trainer:
    """Train one scoring function on one knowledge graph."""

    def __init__(
        self,
        scoring_function: ScoringFunction,
        config: TrainingConfig,
        loss: Optional[Loss] = None,
        optimizer: Optional[Optimizer] = None,
        regularizer: Optional[Regularizer] = None,
        negative_sampler: Optional[NegativeSampler] = None,
        engine: Optional[TrainEngine] = None,
    ) -> None:
        self.scoring_function = scoring_function
        self.config = config
        self.loss = loss if loss is not None else get_loss(config.loss, margin=config.margin)
        self.optimizer = (
            optimizer
            if optimizer is not None
            else get_optimizer(config.optimizer, config.learning_rate, config.decay_rate)
        )
        self.regularizer = (
            regularizer if regularizer is not None else L2Regularizer(config.l2_penalty)
        )
        self.negative_sampler = negative_sampler
        self.engine = engine if engine is not None else get_train_engine(config)
        self.rng = ensure_rng(config.seed)

    # ------------------------------------------------------------------
    # Parameter initialization
    # ------------------------------------------------------------------
    def initialize(self, graph) -> ParamDict:
        """Initialize the parameter dict for ``graph``.

        Duck-typed: anything exposing ``num_entities``/``num_relations``
        works — a :class:`KnowledgeGraph` or a
        :class:`repro.datasets.pipeline.TripleStream`.
        """
        return self.scoring_function.init_params(
            num_entities=graph.num_entities,
            num_relations=graph.num_relations,
            dimension=self.config.dimension,
            rng=self.rng,
            scale=self.config.init_scale,
        )

    # ------------------------------------------------------------------
    # One mini-batch
    # ------------------------------------------------------------------
    def _direction_loss(
        self,
        params: ParamDict,
        batch: np.ndarray,
        direction: str,
        grads: ParamDict,
    ) -> float:
        """Accumulate gradients for one ranking direction; return its loss."""
        if direction == TAIL:
            queries = batch[:, [0, 1]]
            targets = batch[:, 2]
        else:
            queries = batch[:, [2, 1]]
            targets = batch[:, 0]

        scores = self.scoring_function.score_candidates(params, queries, direction=direction)
        negatives = None
        if self.loss.needs_negative_samples:
            if self.negative_sampler is None:
                self.negative_sampler = UniformNegativeSampler(
                    num_entities=params["entities"].shape[0],
                    num_negatives=self.config.negative_samples,
                    rng=self.rng,
                )
            negatives = self.negative_sampler.sample(targets, relations=batch[:, 1])
        value, dscores = self.loss.compute(scores, targets, negatives=negatives)
        direction_grads = self.scoring_function.grad_candidates(
            params, queries, dscores, direction=direction
        )
        for key, grad in direction_grads.items():
            grads[key] += grad
        return value

    def train_step(self, params: ParamDict, batch: np.ndarray) -> float:
        """Run one mini-batch update; return the batch loss.

        Fully delegated to the configured
        :class:`~repro.kge.engine.TrainEngine`: dense engines allocate a
        full gradient dict, add the regularizer gradient and call
        :meth:`Optimizer.step`, while the sparse engine routes compact
        per-row gradients through :meth:`Optimizer.step_sparse`.
        """
        return self.engine.train_step(self, params, batch)

    # ------------------------------------------------------------------
    # Full training loop
    # ------------------------------------------------------------------
    def fit(
        self,
        graph: Optional[KnowledgeGraph],
        params: Optional[ParamDict] = None,
        validation_callback: Optional[Callable[[ParamDict], float]] = None,
        stream: Optional["TripleStreamLike"] = None,
    ) -> tuple:
        """Train on ``graph.train`` (or on a streaming mini-batch source).

        Parameters
        ----------
        graph:
            The training graph.  May be ``None`` when ``stream`` is given:
            the stream then supplies the vocabulary sizes too
            (``num_entities``/``num_relations``), so a large store never
            needs materializing into a graph just to train on it.
        params:
            Optional pre-initialized parameters (e.g. to continue training).
        validation_callback:
            Called with the current parameters whenever validation is due
            (every ``config.eval_every`` epochs); must return a scalar score
            where higher is better (normally the filtered validation MRR).
        stream:
            Optional :class:`repro.datasets.pipeline.TripleStream` (or any
            object with ``epoch(i)`` yielding ``(n, 3)`` batches and
            ``num_triples``/``num_entities``/``num_relations`` attributes).
            When given, mini-batches come from the stream's deterministic
            two-level shuffle instead of a global permutation of
            ``graph.train``, so the training split is never materialized —
            the engine only ever sees one batch at a time.

        Returns
        -------
        (params, history)

        Notes
        -----
        When validation runs at least once, the returned parameters are the
        snapshot taken at the *best* validation score — not the last epoch's
        state, which early stopping (or plain over-training) may have left
        strictly worse.  The optimizer state is restored alongside, so a
        continued run resumes with accumulator state matching the returned
        parameters (the epoch-shuffle RNG stream is not rewound, so the
        continuation is consistent but not bitwise-identical to a run that
        stopped at the best epoch).  Early-stopping patience
        counts evaluations without improvement, not epochs: with
        ``eval_every=e`` and ``early_stopping_patience=p`` training stops
        ``e * p`` epochs after the best evaluation at the earliest.
        """
        if graph is None and stream is None:
            raise ValueError("fit needs a graph, a stream, or both")
        if params is None:
            # A TripleStream carries the vocabulary sizes, so it can stand
            # in for the graph during parameter initialization.
            params = self.initialize(graph if graph is not None else stream)
        history = TrainingHistory()
        train = graph.train if graph is not None else None
        num_train = stream.num_triples if stream is not None else train.shape[0]
        if num_train == 0:
            raise ValueError("cannot train on an empty training split")

        best_score = -np.inf
        evaluations_since_best = 0
        best_params: Optional[ParamDict] = None
        best_optimizer_state: Optional[dict] = None
        start_time = time.perf_counter()

        # Telemetry handles are bound once per fit: with observability off
        # these are shared no-op objects, so the per-batch cost is two
        # empty method calls.
        registry = obs_metrics.get_registry()
        engine_label = {"engine": self.config.train_engine}
        m_epochs = registry.counter(
            "repro_train_epochs_total", help="Training epochs completed.",
            labels=engine_label,
        )
        m_batches = registry.counter(
            "repro_train_batches_total", help="Training mini-batches processed.",
            labels=engine_label,
        )
        m_triples = registry.counter(
            "repro_train_triples_total", help="Training triples processed.",
            labels=engine_label,
        )
        m_loss = registry.gauge(
            "repro_train_epoch_loss", help="Mean loss of the last epoch.",
            labels=engine_label,
        )
        m_rate = registry.gauge(
            "repro_train_triples_per_second",
            help="Training throughput of the last epoch.",
            labels=engine_label,
        )

        for epoch in range(1, self.config.epochs + 1):
            epoch_loss = 0.0
            num_batches = 0
            epoch_triples = 0
            with obs_trace.span("train.epoch") as epoch_span:
                epoch_started = time.monotonic()
                if stream is not None:
                    for batch in stream.epoch(epoch - 1):
                        batch = np.asarray(batch)
                        epoch_loss += self.train_step(params, batch)
                        num_batches += 1
                        epoch_triples += batch.shape[0]
                        m_batches.inc()
                        m_triples.inc(batch.shape[0])
                else:
                    order = self.rng.permutation(train.shape[0])
                    for begin in range(0, train.shape[0], self.config.batch_size):
                        batch = train[order[begin : begin + self.config.batch_size]]
                        epoch_loss += self.train_step(params, batch)
                        num_batches += 1
                        epoch_triples += batch.shape[0]
                        m_batches.inc()
                        m_triples.inc(batch.shape[0])
                self.optimizer.decay()
                mean_loss = epoch_loss / max(num_batches, 1)
                epoch_seconds = time.monotonic() - epoch_started
                m_epochs.inc()
                m_loss.set(mean_loss)
                if epoch_seconds > 0:
                    m_rate.set(epoch_triples / epoch_seconds)
                epoch_span.attrs.update(
                    epoch=epoch,
                    batches=num_batches,
                    triples=epoch_triples,
                    loss=float(mean_loss),
                )

            validation_score: Optional[float] = None
            evaluate_now = (
                validation_callback is not None
                and self.config.eval_every > 0
                and (epoch % self.config.eval_every == 0 or epoch == self.config.epochs)
            )
            if evaluate_now:
                validation_score = float(validation_callback(params))
                if validation_score > best_score:
                    best_score = validation_score
                    evaluations_since_best = 0
                    best_params = {key: value.copy() for key, value in params.items()}
                    best_optimizer_state = self.optimizer.snapshot()
                else:
                    evaluations_since_best += 1

            history.record(
                epoch,
                mean_loss,
                time.perf_counter() - start_time,
                validation_score,
            )

            patience = self.config.early_stopping_patience
            if patience > 0 and evaluate_now and evaluations_since_best >= patience:
                break

        if best_params is not None:
            # Restore the best-validation checkpoint in place (callers may
            # hold references to the parameter arrays they passed in).
            for key, value in best_params.items():
                params[key][...] = value
            if best_optimizer_state is not None:
                self.optimizer.restore(best_optimizer_state)
        return params, history
