"""Negative sampling strategies for pairwise losses.

The multi-class loss used by the paper scores against *every* entity, so it
needs no sampler.  The logistic and hinge losses (kept for completeness and
for the TDM baselines) need a set of negative entity columns per positive
triple; this module provides the two standard strategies:

* :class:`UniformNegativeSampler` — corrupt the target slot with entities
  drawn uniformly at random (Bordes et al., 2013);
* :class:`BernoulliNegativeSampler` — corrupt head vs. tail with a
  relation-specific probability proportional to the average number of tails
  per head (Wang et al., 2014).  In this library the corrupted *slot* is
  chosen by the trainer (it always trains both directions), so the Bernoulli
  sampler instead biases *which entities* are drawn towards those observed
  in the corrupted slot for the same relation, a light-weight form of
  type-consistent sampling.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional

import numpy as np

from repro.datasets.knowledge_graph import KnowledgeGraph
from repro.utils.rng import RngLike, ensure_rng


class NegativeSampler(ABC):
    """Base class: produce negative entity indices for a batch of positives."""

    def __init__(self, num_entities: int, num_negatives: int, rng: RngLike = None) -> None:
        if num_entities <= 1:
            raise ValueError("need at least two entities to sample negatives")
        if num_negatives <= 0:
            raise ValueError("num_negatives must be positive")
        self.num_entities = int(num_entities)
        self.num_negatives = int(num_negatives)
        self.rng = ensure_rng(rng)

    @abstractmethod
    def sample(self, positives: np.ndarray, relations: Optional[np.ndarray] = None) -> np.ndarray:
        """Return ``(batch, num_negatives)`` entity indices.

        Parameters
        ----------
        positives:
            ``(batch,)`` array of the true entity filling the corrupted slot.
        relations:
            Optional ``(batch,)`` relation indices (used by samplers that
            condition on the relation).
        """

    #: Resampling passes before `_avoid_positives` falls back to the exact draw.
    _max_resample_passes = 16

    def _avoid_positives(self, negatives: np.ndarray, positives: np.ndarray) -> np.ndarray:
        """Replace every negative that collides with its positive.

        Colliding entries are re-drawn until collision-free (a replacement
        drawn uniformly can hit the positive again, so a single pass is not
        enough — at ``num_entities=2`` roughly half the replacements would
        still be positives).  After a bounded number of passes any stragglers
        are fixed deterministically with a masked draw from the
        ``num_entities - 1`` non-positive entities, so the result is
        guaranteed collision-free.
        """
        expanded = positives[:, None]
        collisions = negatives == expanded
        if not collisions.any():
            return negatives
        negatives = negatives.copy()
        for _pass in range(self._max_resample_passes):
            count = int(collisions.sum())
            if count == 0:
                return negatives
            negatives[collisions] = self.rng.integers(0, self.num_entities, size=count)
            collisions = negatives == expanded
        remaining = negatives == expanded
        if remaining.any():
            # Exact fallback: draw from [0, num_entities - 1) and shift past
            # the positive, i.e. uniform over every entity except it.
            rows = np.nonzero(remaining)[0]
            draws = self.rng.integers(0, self.num_entities - 1, size=rows.shape[0])
            draws += draws >= positives[rows]
            negatives[remaining] = draws
        return negatives


class UniformNegativeSampler(NegativeSampler):
    """Corrupt with entities drawn uniformly at random."""

    def sample(self, positives: np.ndarray, relations: Optional[np.ndarray] = None) -> np.ndarray:
        positives = np.asarray(positives, dtype=np.int64)
        negatives = self.rng.integers(
            0, self.num_entities, size=(positives.shape[0], self.num_negatives)
        )
        return self._avoid_positives(negatives, positives)


class BernoulliNegativeSampler(NegativeSampler):
    """Relation-aware sampler biased towards type-consistent corruptions."""

    def __init__(
        self,
        graph: KnowledgeGraph,
        num_negatives: int,
        rng: RngLike = None,
        consistent_fraction: float = 0.5,
    ) -> None:
        super().__init__(graph.num_entities, num_negatives, rng)
        if not 0 <= consistent_fraction <= 1:
            raise ValueError("consistent_fraction must be in [0, 1]")
        self.consistent_fraction = float(consistent_fraction)
        self._entities_by_relation: Dict[int, np.ndarray] = {}
        for relation in range(graph.num_relations):
            triples = graph.relation_triples(relation, splits=("train",))
            if triples.size:
                observed = np.unique(np.concatenate([triples[:, 0], triples[:, 2]]))
            else:
                observed = np.arange(graph.num_entities)
            self._entities_by_relation[relation] = observed

    @classmethod
    def from_store(
        cls,
        store,
        num_negatives: int,
        rng: RngLike = None,
        consistent_fraction: float = 0.5,
    ) -> "BernoulliNegativeSampler":
        """Build the sampler from a sharded triple store, shard by shard.

        Produces exactly the per-relation pools the in-memory constructor
        computes (sorted unique train entities, full-range fallback for
        relations with no triples) without materializing the training
        split — the pools come from
        :func:`repro.datasets.pipeline.entities_by_relation`.
        """
        from repro.datasets.pipeline import entities_by_relation

        if not 0 <= consistent_fraction <= 1:
            raise ValueError("consistent_fraction must be in [0, 1]")
        sampler = cls.__new__(cls)
        NegativeSampler.__init__(sampler, store.num_entities, num_negatives, rng)
        sampler.consistent_fraction = float(consistent_fraction)
        sampler._entities_by_relation = entities_by_relation(store, splits=("train",))
        return sampler

    def sample(self, positives: np.ndarray, relations: Optional[np.ndarray] = None) -> np.ndarray:
        positives = np.asarray(positives, dtype=np.int64)
        negatives = self.rng.integers(
            0, self.num_entities, size=(positives.shape[0], self.num_negatives)
        )
        if relations is not None:
            relations = np.asarray(relations, dtype=np.int64)
            use_consistent = self.rng.random(negatives.shape) < self.consistent_fraction
            for row, relation in enumerate(relations):
                pool = self._entities_by_relation.get(int(relation))
                if pool is None or pool.size == 0:
                    continue
                mask = use_consistent[row]
                count = int(mask.sum())
                if count:
                    negatives[row, mask] = self.rng.choice(pool, size=count)
        return self._avoid_positives(negatives, positives)
