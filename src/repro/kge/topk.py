"""Shared top-k selection and known-positive masking for prediction paths.

Both :meth:`repro.kge.model.KGEModel.predict_tails` /
:meth:`~repro.kge.model.KGEModel.predict_heads` (the naive per-query path,
kept as the serving parity oracle) and the batched
:class:`repro.serving.engine.InferenceEngine` select their answers through
the helpers below, so the two paths agree *exactly* — including on ties.

Tie-breaking is canonical everywhere: candidates are ordered by descending
score and, within equal scores, by ascending entity index.  That makes
top-k results deterministic and independent of which selection algorithm
produced them, which is what the engine-vs-oracle parity tests pin down.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.datasets.knowledge_graph import FilterIndex
from repro.kge.scoring.base import HEAD, TAIL, validate_direction


def top_k_indices(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` best scores: descending score, ties by lower index.

    Uses :func:`np.argpartition` so the cost is ``O(n + t log t)`` with ``t``
    the number of candidates at or above the k-th score, instead of the
    ``O(n log n)`` full sort of :func:`top_k_reference`.  Candidates tied at
    the selection boundary are resolved canonically (lowest index wins), so
    the result is identical to the full-sort reference for every input.
    """
    scores = np.asarray(scores)
    if scores.ndim != 1:
        raise ValueError("scores must be 1-D (one row of a score matrix)")
    count = scores.shape[0]
    k = min(int(k), count)
    if k <= 0:
        return np.zeros(0, dtype=np.int64)
    if k < count:
        partitioned = np.argpartition(-scores, k - 1)[:k]
        threshold = scores[partitioned].min()
        # Everything strictly above the boundary survives; boundary ties are
        # re-resolved below so argpartition's arbitrary pick never leaks out.
        pool = np.flatnonzero(scores >= threshold)
    else:
        pool = np.arange(count, dtype=np.int64)
    # lexsort uses the *last* key as primary: sort by -score, then index.
    order = np.lexsort((pool, -scores[pool]))
    return pool[order[:k]].astype(np.int64)


def top_k_reference(scores: np.ndarray, k: int) -> np.ndarray:
    """Full-sort reference for :func:`top_k_indices` (the parity oracle)."""
    scores = np.asarray(scores)
    if scores.ndim != 1:
        raise ValueError("scores must be 1-D (one row of a score matrix)")
    count = scores.shape[0]
    k = max(0, min(int(k), count))
    order = np.lexsort((np.arange(count), -scores))
    return order[:k].astype(np.int64)


def mask_known_scores(
    scores: np.ndarray,
    filter_index: FilterIndex,
    entities: np.ndarray,
    relations: np.ndarray,
    direction: str = TAIL,
) -> np.ndarray:
    """Set the scores of known answers to ``-inf`` (in place) and return them.

    ``scores`` is a ``(batch, num_entities)`` matrix; row ``i`` answers the
    query ``(entities[i], relations[i])`` in the given direction (the entity
    is the head for tail queries and the tail for head queries).  Known
    answers come from the precomputed CSR-style ``filter_index``, exactly as
    in filtered evaluation — except that *every* known answer is masked, not
    just the non-target ones, because serving wants unseen predictions.
    """
    validate_direction(direction)
    entities = np.asarray(entities, dtype=np.int64)
    relations = np.asarray(relations, dtype=np.int64)
    if direction == TAIL:
        rows, cols = filter_index.known_tail_pairs(entities, relations)
    else:
        rows, cols = filter_index.known_head_pairs(entities, relations)
    if rows.size:
        scores[rows, cols] = -np.inf
    return scores


def select_predictions(
    scores: np.ndarray,
    k: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Top-k (indices, scores) of one score row, dropping masked candidates.

    Entries at ``-inf`` (masked known positives) never appear in the result,
    so a filtered query over a saturated (entity, relation) pair simply
    returns fewer than ``k`` predictions.
    """
    order = top_k_indices(scores, k)
    if order.size:
        order = order[np.isfinite(scores[order])]
    return order, scores[order]


def select_predictions_batch(
    scores: np.ndarray,
    k: int,
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Row-wise :func:`select_predictions` over a whole score matrix.

    One ``argpartition`` and one ``lexsort`` over the full ``(batch, n)``
    matrix replace the per-row selection loop — the difference between the
    batched engine and the naive path once scoring itself is a single GEMM.
    Rows whose selection boundary is ambiguous (more candidates tied at the
    k-th score than ``argpartition`` kept) fall back to the scalar helper,
    so the result is canonical for every row: descending score, ties by
    ascending index, ``-inf`` entries dropped.
    """
    scores = np.asarray(scores)
    if scores.ndim != 2:
        raise ValueError("scores must be a (batch, n) matrix")
    batch, count = scores.shape
    k = min(int(k), count)
    empty = np.zeros(0, dtype=np.int64)
    if k <= 0 or batch == 0:
        return [(empty, empty.astype(scores.dtype))] * batch
    if k < count:
        part = np.argpartition(-scores, k - 1, axis=1)[:, :k]
    else:
        part = np.broadcast_to(np.arange(count, dtype=np.int64), (batch, count))
    part_scores = np.take_along_axis(scores, part, axis=1)
    # One flat lexsort: primary key row, then descending score, then index —
    # i.e. every row internally in canonical order, rows kept together.
    rows = np.repeat(np.arange(batch), part.shape[1])
    order = np.lexsort((part.ravel(), -part_scores.ravel(), rows))
    sorted_indices = part.ravel()[order].reshape(batch, -1)[:, :k]
    sorted_scores = part_scores.ravel()[order].reshape(batch, -1)[:, :k]
    if k < count:
        # A row is ambiguous when candidates outside the partitioned set tie
        # with its k-th score: argpartition then kept an arbitrary subset of
        # the boundary ties instead of the lowest-index ones.
        threshold = sorted_scores[:, -1]
        ties_total = np.sum(scores == threshold[:, None], axis=1)
        ties_kept = np.sum(part_scores == threshold[:, None], axis=1)
        ambiguous = ties_total != ties_kept
    else:
        ambiguous = np.zeros(batch, dtype=bool)
    finite_mask = np.isfinite(sorted_scores)
    all_finite = bool(finite_mask.all())
    results: List[Tuple[np.ndarray, np.ndarray]] = []
    for row in range(batch):
        if ambiguous[row]:
            results.append(select_predictions(scores[row], k))
        elif all_finite:
            # Common case (no filtering): nothing to drop, no row-wise masking.
            results.append((sorted_indices[row], sorted_scores[row]))
        else:
            finite = finite_mask[row]
            results.append((sorted_indices[row][finite], sorted_scores[row][finite]))
    return results
