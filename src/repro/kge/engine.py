"""Training engines: how one mini-batch's loss and gradients are computed.

The trainer (Alg. 1 of the paper) is split into two layers.  The *loop* —
epochs, shuffling, validation, early stopping, checkpoint restore — lives in
:class:`repro.kge.trainer.Trainer`.  The *engine* — turning one mini-batch
into a parameter update — lives here, behind a small strategy interface,
because it is the hot path that dominates every candidate evaluation of the
greedy search:

* :class:`ReferenceTrainEngine` is the original per-direction Python loop:
  score all candidates, hand the full matrix to the loss, backpropagate.
  It is deliberately left untouched and serves as the parity oracle, in the
  same spirit as :func:`repro.kge.evaluation.compute_ranks_reference`.
* :class:`BatchedTrainEngine` computes the same quantities through the
  chunk-aware scoring interface (``begin_candidate_pass`` /
  ``score_candidates_chunk`` / ``grad_candidates_chunk`` /
  ``finish_candidate_pass``): per-query work is hoisted out of the
  per-entity loop, block structures collapse into single GEMMs, and with
  ``TrainingConfig.score_chunk_size > 0`` the multi-class loss streams over
  entity chunks (two-pass log-sum-exp) so peak memory stays bounded by
  ``batch_size * score_chunk_size`` scores no matter how large the entity
  vocabulary grows.
* :class:`SparseTrainEngine` makes pairwise-loss training *embedding-bound*
  instead of FLOP-bound: scores and gradients are computed only for the
  entity rows a batch actually touches (positives plus sampled corruptions,
  deduplicated), gradients land in compact ``(unique_rows, dim)`` buffers,
  and the optimizer applies in-place per-row updates through
  :meth:`repro.kge.optimizers.Optimizer.step_sparse`.  Per-batch cost scales
  with the batch, not the vocabulary.  Multi-class batches (which need the
  full softmax, hence every entity) delegate to the batched engine.

All engines produce the same per-epoch losses and final parameters up to
floating-point round-off (the parity tests pin this at ``atol=1e-10``); the
batched engine is the default (``TrainingConfig.train_engine``).  Pairwise
losses need sampled negatives and touch only a handful of score columns, so
the batched engine delegates those batches to the reference path — and the
sparse engine is the fast path for exactly that workload.  Two documented
deviations of the sparse engine from dense semantics: regularization is
*lazy* (the penalty gradient is applied only to the rows the batch touched;
exact parity therefore requires a zero regularization weight) and Adam uses
the standard lazy-moment sparse variant (see
:meth:`repro.kge.optimizers.Adam.step_sparse`).  SGD and Adagrad sparse
steps are exactly equivalent to dense steps with zero gradients outside the
touched rows.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Dict, Iterator, Optional, Tuple

import numpy as np

from repro.kge.losses import StreamingMulticlass, multiclass_inplace
from repro.kge.negative_sampling import UniformNegativeSampler
from repro.kge.scoring.base import HEAD, TAIL, ParamDict

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (trainer imports us)
    from repro.kge.trainer import Trainer
    from repro.utils.config import TrainingConfig


def entity_chunks(num_entities: int, chunk_size: int) -> Iterator[Tuple[int, int]]:
    """Yield contiguous ``(start, stop)`` entity ranges of ``chunk_size``.

    ``chunk_size <= 0`` means "no chunking": one range covering everything.
    """
    if chunk_size <= 0 or chunk_size >= num_entities:
        yield 0, num_entities
        return
    for start in range(0, num_entities, chunk_size):
        yield start, min(start + chunk_size, num_entities)


def _direction_queries(batch: np.ndarray, direction: str) -> Tuple[np.ndarray, np.ndarray]:
    """(queries, targets) of one ranking direction for a (batch, 3) array."""
    if direction == TAIL:
        return batch[:, [0, 1]], batch[:, 2]
    return batch[:, [2, 1]], batch[:, 0]


class TrainEngine(ABC):
    """Strategy interface: accumulate one mini-batch's loss and gradients."""

    #: Configuration name of the engine (set by subclasses).
    name: str = "train-engine"

    @abstractmethod
    def accumulate_batch(
        self,
        trainer: "Trainer",
        params: ParamDict,
        batch: np.ndarray,
        grads: ParamDict,
    ) -> float:
        """Add both ranking directions' gradients to ``grads``; return the loss.

        The returned value is ``loss_tail + loss_head`` for the batch, the
        quantity the trainer averages into the epoch loss.  Regularization
        and the optimizer step stay with :meth:`train_step`.
        """

    def train_step(self, trainer: "Trainer", params: ParamDict, batch: np.ndarray) -> float:
        """Run one full mini-batch update in place; return the batch loss.

        The default is the dense flow: allocate a full gradient dict, let
        :meth:`accumulate_batch` fill it, add the regularizer gradient and
        hand everything to :meth:`Optimizer.step`.  Engines with their own
        update structure (the sparse engine) override this wholesale.
        """
        grads = trainer.scoring_function.zero_grads(params)
        value = self.accumulate_batch(trainer, params, batch, grads)
        trainer.regularizer.add_gradients(params, grads)
        trainer.optimizer.step(params, grads)
        return value

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return f"{type(self).__name__}()"


class ReferenceTrainEngine(TrainEngine):
    """The original per-direction loop, kept verbatim as the parity oracle."""

    name = "reference"

    def accumulate_batch(
        self,
        trainer: "Trainer",
        params: ParamDict,
        batch: np.ndarray,
        grads: ParamDict,
    ) -> float:
        loss_tail = trainer._direction_loss(params, batch, TAIL, grads)
        loss_head = trainer._direction_loss(params, batch, HEAD, grads)
        return loss_tail + loss_head


class BatchedTrainEngine(TrainEngine):
    """Fused, chunk-aware batch computation for the multi-class loss.

    Parameters
    ----------
    score_chunk_size:
        Candidate-entity chunk size.  ``0`` scores the whole vocabulary in
        one pass (fastest); a positive value streams the softmax over chunks
        in two passes, bounding peak memory at one ``(batch, chunk)`` score
        block at the cost of re-scoring each chunk once for the gradient.
    """

    name = "batched"

    def __init__(self, score_chunk_size: int = 0) -> None:
        if score_chunk_size < 0:
            raise ValueError("score_chunk_size must be non-negative")
        self.score_chunk_size = int(score_chunk_size)
        self._fallback = ReferenceTrainEngine()

    def accumulate_batch(
        self,
        trainer: "Trainer",
        params: ParamDict,
        batch: np.ndarray,
        grads: ParamDict,
    ) -> float:
        if trainer.loss.needs_negative_samples:
            # Pairwise losses only read a handful of sampled score columns;
            # the all-candidate machinery below buys nothing there, so keep
            # the (bitwise-identical) reference path.
            return self._fallback.accumulate_batch(trainer, params, batch, grads)
        value = 0.0
        for direction in (TAIL, HEAD):
            value += self._direction_multiclass(trainer, params, batch, direction, grads)
        return value

    def _direction_multiclass(
        self,
        trainer: "Trainer",
        params: ParamDict,
        batch: np.ndarray,
        direction: str,
        grads: ParamDict,
    ) -> float:
        scoring_function = trainer.scoring_function
        queries, targets = _direction_queries(batch, direction)
        num_entities = params["entities"].shape[0]
        state = scoring_function.begin_candidate_pass(params, queries, direction)

        if self.score_chunk_size <= 0 or self.score_chunk_size >= num_entities:
            # Single pass: score everything once, fold the softmax in place.
            scores = scoring_function.score_candidates_chunk(
                params, queries, direction, 0, num_entities, state=state
            )
            value, dscores = multiclass_inplace(scores, targets)
            scoring_function.grad_candidates_chunk(
                params, queries, dscores, direction, 0, num_entities, grads, state=state
            )
        else:
            # Two-pass streaming softmax over entity chunks (bounded memory).
            streaming = StreamingMulticlass(targets)
            for start, stop in entity_chunks(num_entities, self.score_chunk_size):
                streaming.observe(
                    scoring_function.score_candidates_chunk(
                        params, queries, direction, start, stop, state=state
                    ),
                    start,
                    stop,
                )
            value = streaming.value()
            for start, stop in entity_chunks(num_entities, self.score_chunk_size):
                scores = scoring_function.score_candidates_chunk(
                    params, queries, direction, start, stop, state=state
                )
                scoring_function.grad_candidates_chunk(
                    params,
                    queries,
                    streaming.dscores_chunk(scores, start, stop),
                    direction,
                    start,
                    stop,
                    grads,
                    state=state,
                )
        scoring_function.finish_candidate_pass(params, queries, direction, state, grads)
        return value

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return f"BatchedTrainEngine(score_chunk_size={self.score_chunk_size})"


class SparseTrainEngine(TrainEngine):
    """Touched-rows-only batch computation for pairwise (sampled) losses.

    The reference and batched engines score every query against the *whole*
    entity vocabulary even though a pairwise loss reads just one positive and
    ``negative_samples`` corrupted columns per query — so their per-batch
    cost is O(batch x vocabulary).  This engine instead:

    1. samples both directions' corruptions up front (same RNG draw order as
       the reference loop, so the two engines stay comparable seed-for-seed);
    2. collects the **unique** touched entity/relation indices of the batch
       — query entities, positives and corruptions together — and gathers
       their rows once into compact sub-tables.  Corrupted samples drawn for
       several positives are deduplicated here, so each shared corruption is
       embedded and scored through one column of one pass instead of once
       per positive that drew it;
    3. runs the family's own ``score_candidates`` / ``grad_candidates`` on
       the compact sub-problem (entity/relation indices remapped into the
       sub-tables), which scatter-adds into ``(unique_rows, dim)`` gradient
       blocks instead of dense vocabulary-sized arrays — every scoring
       family works unmodified, because a gathered sub-table is
       indistinguishable from a small vocabulary;
    4. hands ``(indices, block)`` sparse gradients to
       :meth:`repro.kge.optimizers.Optimizer.step_sparse`, so optimizer
       state updates are O(touched rows) as well.

    Globally-shared parameters (e.g. the MLP scorer's network weights) pass
    through densely — they are small and genuinely touched by every batch.

    Semantics vs the reference engine: losses and gradients match at
    ``atol=1e-10``.  Regularization is *lazy* — the penalty gradient is
    applied only to the touched rows, the standard sparse-training
    approximation (exact parity therefore requires ``l2_penalty=0``), and
    Adam updates are the lazy-moment variant.  SGD and Adagrad training runs
    are exactly equivalent to the reference engine when the regularization
    weight is zero.

    Multi-class batches need the full softmax over every entity, so they
    delegate to a :class:`BatchedTrainEngine` (with the configured
    ``score_chunk_size``).
    """

    name = "sparse"

    def __init__(self, score_chunk_size: int = 0) -> None:
        self._fallback = BatchedTrainEngine(score_chunk_size=score_chunk_size)

    @property
    def score_chunk_size(self) -> int:
        """Chunk size used by the multi-class fallback engine."""
        return self._fallback.score_chunk_size

    def accumulate_batch(
        self,
        trainer: "Trainer",
        params: ParamDict,
        batch: np.ndarray,
        grads: ParamDict,
    ) -> float:
        if not trainer.loss.needs_negative_samples:
            return self._fallback.accumulate_batch(trainer, params, batch, grads)
        value, touched_entities, touched_relations, _sub_params, blocks = self._sparse_batch(
            trainer, params, batch
        )
        for key, block in blocks.items():
            if key == "entities":
                grads[key][touched_entities] += block
            elif key == "relations":
                grads[key][touched_relations] += block
            else:
                grads[key] += block
        return value

    def train_step(self, trainer: "Trainer", params: ParamDict, batch: np.ndarray) -> float:
        if not trainer.loss.needs_negative_samples:
            return self._fallback.train_step(trainer, params, batch)
        value, touched_entities, touched_relations, sub_params, blocks = self._sparse_batch(
            trainer, params, batch
        )
        # Lazy regularization: the penalty gradient of exactly the touched
        # rows (the gathered sub-tables *are* those parameter rows).
        trainer.regularizer.add_gradients(sub_params, blocks)
        sparse_grads: Dict[str, object] = {}
        for key, block in blocks.items():
            if key == "entities":
                sparse_grads[key] = (touched_entities, block)
            elif key == "relations":
                sparse_grads[key] = (touched_relations, block)
            else:
                sparse_grads[key] = block
        trainer.optimizer.step_sparse(params, sparse_grads)
        return value

    @staticmethod
    def _ensure_sampler(trainer: "Trainer", params: ParamDict):
        """Mirror the reference loop's lazy sampler creation exactly."""
        if trainer.negative_sampler is None:
            trainer.negative_sampler = UniformNegativeSampler(
                num_entities=params["entities"].shape[0],
                num_negatives=trainer.config.negative_samples,
                rng=trainer.rng,
            )
        return trainer.negative_sampler

    def _sparse_batch(
        self, trainer: "Trainer", params: ParamDict, batch: np.ndarray
    ) -> Tuple[float, np.ndarray, np.ndarray, ParamDict, ParamDict]:
        """Loss and compact gradient blocks of one pairwise-loss batch.

        Returns ``(loss, touched_entities, touched_relations, sub_params,
        blocks)`` where ``blocks["entities"]`` has one row per touched
        entity (aligned with ``touched_entities``, which is sorted/unique),
        ``blocks["relations"]`` likewise, and any other key holds a dense
        full-shape gradient.  Regularization is *not* applied here.
        """
        scoring_function = trainer.scoring_function
        batch = np.asarray(batch, dtype=np.int64)
        heads, relations, tails = batch[:, 0], batch[:, 1], batch[:, 2]
        sampler = self._ensure_sampler(trainer, params)
        # Same RNG draw order as the reference loop: tail direction first.
        negatives = {
            TAIL: sampler.sample(tails, relations=relations),
            HEAD: sampler.sample(heads, relations=relations),
        }

        touched_entities = np.unique(
            np.concatenate(
                [heads, tails, negatives[TAIL].ravel(), negatives[HEAD].ravel()]
            )
        )
        touched_relations = np.unique(relations)

        # Gather the touched rows once; every other parameter key (MLP
        # weights etc.) passes through by reference.  Scoring functions see
        # an ordinary (small) vocabulary.
        sub_params = dict(params)
        sub_params["entities"] = params["entities"][touched_entities]
        sub_params["relations"] = params["relations"][touched_relations]
        heads_c = np.searchsorted(touched_entities, heads)
        tails_c = np.searchsorted(touched_entities, tails)
        relations_c = np.searchsorted(touched_relations, relations)

        value = 0.0
        blocks: Optional[ParamDict] = None
        for direction in (TAIL, HEAD):
            if direction == TAIL:
                queries_c = np.stack([heads_c, relations_c], axis=1)
                targets = tails
            else:
                queries_c = np.stack([tails_c, relations_c], axis=1)
                targets = heads
            direction_negatives = negatives[direction]
            # One deduplicated candidate column per distinct touched entity
            # of this direction: corruptions shared across positives are
            # scored once.
            columns = np.unique(np.concatenate([targets, direction_negatives.ravel()]))
            candidates_c = np.searchsorted(touched_entities, columns)
            scores = scoring_function.score_candidates(
                sub_params, queries_c, direction=direction, candidates=candidates_c
            )
            direction_value, dscores = trainer.loss.compute(
                scores,
                np.searchsorted(columns, targets),
                negatives=np.searchsorted(columns, direction_negatives),
            )
            value += direction_value
            direction_blocks = scoring_function.grad_candidates(
                sub_params, queries_c, dscores, direction=direction, candidates=candidates_c
            )
            if blocks is None:
                blocks = direction_blocks
            else:
                for key, block in direction_blocks.items():
                    blocks[key] += block
        return value, touched_entities, touched_relations, sub_params, blocks

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return f"SparseTrainEngine(score_chunk_size={self.score_chunk_size})"


def get_train_engine(config: "TrainingConfig") -> TrainEngine:
    """Instantiate the engine named by ``config.train_engine``."""
    from repro.utils.config import TRAIN_ENGINES, ConfigError

    if config.train_engine == "reference":
        return ReferenceTrainEngine()
    if config.train_engine == "batched":
        return BatchedTrainEngine(score_chunk_size=config.score_chunk_size)
    if config.train_engine == "sparse":
        return SparseTrainEngine(score_chunk_size=config.score_chunk_size)
    raise ConfigError(
        f"TrainingConfig.train_engine: unknown engine {config.train_engine!r} "
        f"(available: {', '.join(TRAIN_ENGINES)})"
    )
