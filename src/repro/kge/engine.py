"""Training engines: how one mini-batch's loss and gradients are computed.

The trainer (Alg. 1 of the paper) is split into two layers.  The *loop* —
epochs, shuffling, validation, early stopping, checkpoint restore — lives in
:class:`repro.kge.trainer.Trainer`.  The *engine* — turning one mini-batch
into a scalar loss and a gradient dict — lives here, behind a small strategy
interface, because it is the hot path that dominates every candidate
evaluation of the greedy search:

* :class:`ReferenceTrainEngine` is the original per-direction Python loop:
  score all candidates, hand the full matrix to the loss, backpropagate.
  It is deliberately left untouched and serves as the parity oracle, in the
  same spirit as :func:`repro.kge.evaluation.compute_ranks_reference`.
* :class:`BatchedTrainEngine` computes the same quantities through the
  chunk-aware scoring interface (``begin_candidate_pass`` /
  ``score_candidates_chunk`` / ``grad_candidates_chunk`` /
  ``finish_candidate_pass``): per-query work is hoisted out of the
  per-entity loop, block structures collapse into single GEMMs, and with
  ``TrainingConfig.score_chunk_size > 0`` the multi-class loss streams over
  entity chunks (two-pass log-sum-exp) so peak memory stays bounded by
  ``batch_size * score_chunk_size`` scores no matter how large the entity
  vocabulary grows.

Both engines produce the same per-epoch losses and final parameters up to
floating-point round-off (the parity tests pin this at ``atol=1e-10``); the
batched engine is the default (``TrainingConfig.train_engine``).  Pairwise
losses need sampled negatives and touch only a handful of score columns, so
the batched engine delegates those batches to the reference path.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Iterator, Tuple

import numpy as np

from repro.kge.losses import StreamingMulticlass, multiclass_inplace
from repro.kge.scoring.base import HEAD, TAIL, ParamDict

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (trainer imports us)
    from repro.kge.trainer import Trainer
    from repro.utils.config import TrainingConfig


def entity_chunks(num_entities: int, chunk_size: int) -> Iterator[Tuple[int, int]]:
    """Yield contiguous ``(start, stop)`` entity ranges of ``chunk_size``.

    ``chunk_size <= 0`` means "no chunking": one range covering everything.
    """
    if chunk_size <= 0 or chunk_size >= num_entities:
        yield 0, num_entities
        return
    for start in range(0, num_entities, chunk_size):
        yield start, min(start + chunk_size, num_entities)


def _direction_queries(batch: np.ndarray, direction: str) -> Tuple[np.ndarray, np.ndarray]:
    """(queries, targets) of one ranking direction for a (batch, 3) array."""
    if direction == TAIL:
        return batch[:, [0, 1]], batch[:, 2]
    return batch[:, [2, 1]], batch[:, 0]


class TrainEngine(ABC):
    """Strategy interface: accumulate one mini-batch's loss and gradients."""

    #: Configuration name of the engine (set by subclasses).
    name: str = "train-engine"

    @abstractmethod
    def accumulate_batch(
        self,
        trainer: "Trainer",
        params: ParamDict,
        batch: np.ndarray,
        grads: ParamDict,
    ) -> float:
        """Add both ranking directions' gradients to ``grads``; return the loss.

        The returned value is ``loss_tail + loss_head`` for the batch, the
        quantity the trainer averages into the epoch loss.  Regularization
        and the optimizer step stay with the trainer.
        """

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return f"{type(self).__name__}()"


class ReferenceTrainEngine(TrainEngine):
    """The original per-direction loop, kept verbatim as the parity oracle."""

    name = "reference"

    def accumulate_batch(
        self,
        trainer: "Trainer",
        params: ParamDict,
        batch: np.ndarray,
        grads: ParamDict,
    ) -> float:
        loss_tail = trainer._direction_loss(params, batch, TAIL, grads)
        loss_head = trainer._direction_loss(params, batch, HEAD, grads)
        return loss_tail + loss_head


class BatchedTrainEngine(TrainEngine):
    """Fused, chunk-aware batch computation for the multi-class loss.

    Parameters
    ----------
    score_chunk_size:
        Candidate-entity chunk size.  ``0`` scores the whole vocabulary in
        one pass (fastest); a positive value streams the softmax over chunks
        in two passes, bounding peak memory at one ``(batch, chunk)`` score
        block at the cost of re-scoring each chunk once for the gradient.
    """

    name = "batched"

    def __init__(self, score_chunk_size: int = 0) -> None:
        if score_chunk_size < 0:
            raise ValueError("score_chunk_size must be non-negative")
        self.score_chunk_size = int(score_chunk_size)
        self._fallback = ReferenceTrainEngine()

    def accumulate_batch(
        self,
        trainer: "Trainer",
        params: ParamDict,
        batch: np.ndarray,
        grads: ParamDict,
    ) -> float:
        if trainer.loss.needs_negative_samples:
            # Pairwise losses only read a handful of sampled score columns;
            # the all-candidate machinery below buys nothing there, so keep
            # the (bitwise-identical) reference path.
            return self._fallback.accumulate_batch(trainer, params, batch, grads)
        value = 0.0
        for direction in (TAIL, HEAD):
            value += self._direction_multiclass(trainer, params, batch, direction, grads)
        return value

    def _direction_multiclass(
        self,
        trainer: "Trainer",
        params: ParamDict,
        batch: np.ndarray,
        direction: str,
        grads: ParamDict,
    ) -> float:
        scoring_function = trainer.scoring_function
        queries, targets = _direction_queries(batch, direction)
        num_entities = params["entities"].shape[0]
        state = scoring_function.begin_candidate_pass(params, queries, direction)

        if self.score_chunk_size <= 0 or self.score_chunk_size >= num_entities:
            # Single pass: score everything once, fold the softmax in place.
            scores = scoring_function.score_candidates_chunk(
                params, queries, direction, 0, num_entities, state=state
            )
            value, dscores = multiclass_inplace(scores, targets)
            scoring_function.grad_candidates_chunk(
                params, queries, dscores, direction, 0, num_entities, grads, state=state
            )
        else:
            # Two-pass streaming softmax over entity chunks (bounded memory).
            streaming = StreamingMulticlass(targets)
            for start, stop in entity_chunks(num_entities, self.score_chunk_size):
                streaming.observe(
                    scoring_function.score_candidates_chunk(
                        params, queries, direction, start, stop, state=state
                    ),
                    start,
                    stop,
                )
            value = streaming.value()
            for start, stop in entity_chunks(num_entities, self.score_chunk_size):
                scores = scoring_function.score_candidates_chunk(
                    params, queries, direction, start, stop, state=state
                )
                scoring_function.grad_candidates_chunk(
                    params,
                    queries,
                    streaming.dscores_chunk(scores, start, stop),
                    direction,
                    start,
                    stop,
                    grads,
                    state=state,
                )
        scoring_function.finish_candidate_pass(params, queries, direction, state, grads)
        return value

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return f"BatchedTrainEngine(score_chunk_size={self.score_chunk_size})"


def get_train_engine(config: "TrainingConfig") -> TrainEngine:
    """Instantiate the engine named by ``config.train_engine``."""
    from repro.utils.config import TRAIN_ENGINES

    if config.train_engine == "reference":
        return ReferenceTrainEngine()
    if config.train_engine == "batched":
        return BatchedTrainEngine(score_chunk_size=config.score_chunk_size)
    raise ValueError(
        f"unknown train_engine {config.train_engine!r}; "
        f"available: {', '.join(TRAIN_ENGINES)}"
    )
