"""High-level model wrapper: scoring function + trained parameters + metadata.

:class:`KGEModel` is the object most users interact with: it bundles a
scoring function, its trained parameter dict and the training configuration,
and exposes prediction, ranking, evaluation and (de)serialization.  The
:func:`train_model` convenience function covers the common
"train this SF on this graph with this config" call in one line, which is
also the primitive the AutoSF search invokes for every candidate.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.datasets.knowledge_graph import KnowledgeGraph
from repro.kge.evaluation import (
    EvaluationResult,
    evaluate_link_prediction,
    evaluate_triplet_classification,
)
from repro.kge.scoring.base import HEAD, TAIL, ParamDict, ScoringFunction
from repro.kge.scoring.bilinear import BlockScoringFunction
from repro.kge.scoring.blocks import BlockStructure
from repro.kge.scoring.registry import get_scoring_function
from repro.kge.trainer import Trainer, TrainingHistory
from repro.utils.config import TrainingConfig
from repro.utils.serialization import from_json_file, to_json_file

PathLike = Union[str, Path]


class KGEModel:
    """A trained (or trainable) knowledge-graph-embedding model."""

    def __init__(
        self,
        scoring_function: ScoringFunction,
        config: TrainingConfig,
        params: Optional[ParamDict] = None,
    ) -> None:
        self.scoring_function = scoring_function
        self.config = config
        self.params: Optional[ParamDict] = params
        self.history: Optional[TrainingHistory] = None

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(
        self,
        graph: KnowledgeGraph,
        validate: bool = False,
    ) -> TrainingHistory:
        """Train the model on ``graph``; returns the training history.

        When ``validate`` is true the trainer evaluates filtered validation
        MRR every ``config.eval_every`` epochs (enabling early stopping when
        ``config.early_stopping_patience > 0``).
        """
        trainer = Trainer(self.scoring_function, self.config)
        callback = None
        if validate and self.config.eval_every > 0:
            def callback(params: ParamDict) -> float:
                result = evaluate_link_prediction(
                    self.scoring_function, params, graph, split="valid"
                )
                return result.mrr

        self.params, self.history = trainer.fit(graph, validation_callback=callback)
        return self.history

    def _require_params(self) -> ParamDict:
        if self.params is None:
            raise RuntimeError("model has no parameters; call fit() or load() first")
        return self.params

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def score(self, triples: np.ndarray) -> np.ndarray:
        """Plausibility scores of explicit (h, r, t) triples."""
        return self.scoring_function.score_triples(self._require_params(), np.asarray(triples))

    def predict_tails(self, head: int, relation: int, top_k: int = 10) -> Sequence[Tuple[int, float]]:
        """Top-k candidate tails for ``(head, relation, ?)`` as (entity, score)."""
        params = self._require_params()
        queries = np.asarray([[head, relation]], dtype=np.int64)
        scores = self.scoring_function.score_candidates(params, queries, direction=TAIL)[0]
        order = np.argsort(-scores)[:top_k]
        return [(int(index), float(scores[index])) for index in order]

    def predict_heads(self, relation: int, tail: int, top_k: int = 10) -> Sequence[Tuple[int, float]]:
        """Top-k candidate heads for ``(?, relation, tail)`` as (entity, score)."""
        params = self._require_params()
        queries = np.asarray([[tail, relation]], dtype=np.int64)
        scores = self.scoring_function.score_candidates(params, queries, direction=HEAD)[0]
        order = np.argsort(-scores)[:top_k]
        return [(int(index), float(scores[index])) for index in order]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        graph: KnowledgeGraph,
        split: str = "test",
        hits_at: Sequence[int] = (1, 3, 10),
    ) -> EvaluationResult:
        """Filtered link-prediction metrics on the chosen split."""
        return evaluate_link_prediction(
            self.scoring_function, self._require_params(), graph, split=split, hits_at=hits_at
        )

    def classify(self, graph: KnowledgeGraph, rng: Optional[int] = 0) -> float:
        """Triplet-classification accuracy on the test split."""
        return evaluate_triplet_classification(
            self.scoring_function, self._require_params(), graph, rng=rng
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def save(self, directory: PathLike) -> Path:
        """Save parameters + config (+ block structure, if any) to a directory."""
        params = self._require_params()
        base = Path(directory)
        base.mkdir(parents=True, exist_ok=True)
        np.savez(base / "params.npz", **params)
        metadata: Dict[str, object] = {
            "scoring_function": self.scoring_function.name,
            "config": self.config.to_dict(),
        }
        if isinstance(self.scoring_function, BlockScoringFunction):
            metadata["block_structure"] = [list(block) for block in self.scoring_function.structure.blocks]
        to_json_file(metadata, base / "model.json")
        return base

    @classmethod
    def load(cls, directory: PathLike) -> "KGEModel":
        """Load a model previously written by :meth:`save`."""
        base = Path(directory)
        metadata = from_json_file(base / "model.json")
        config = TrainingConfig.from_dict(metadata["config"])
        if "block_structure" in metadata:
            structure = BlockStructure(
                [tuple(block) for block in metadata["block_structure"]],
                name=str(metadata["scoring_function"]),
            )
            scoring_function: ScoringFunction = BlockScoringFunction(
                structure, name=str(metadata["scoring_function"])
            )
        else:
            scoring_function = get_scoring_function(str(metadata["scoring_function"]))
        with np.load(base / "params.npz") as archive:
            params = {key: archive[key] for key in archive.files}
        return cls(scoring_function, config, params=params)


def train_model(
    graph: KnowledgeGraph,
    scoring_function: Union[str, ScoringFunction, BlockStructure],
    config: Optional[TrainingConfig] = None,
    validate: bool = False,
) -> KGEModel:
    """Train a model in one call.

    Parameters
    ----------
    scoring_function:
        A model name (``"complex"`` …), a :class:`ScoringFunction` instance,
        or a raw :class:`BlockStructure` (e.g. one found by the search).
    """
    if config is None:
        config = TrainingConfig()
    if isinstance(scoring_function, str):
        scoring_function = get_scoring_function(scoring_function)
    elif isinstance(scoring_function, BlockStructure):
        scoring_function = BlockScoringFunction(scoring_function)
    model = KGEModel(scoring_function, config)
    model.fit(graph, validate=validate)
    return model
