"""High-level model wrapper: scoring function + trained parameters + metadata.

:class:`KGEModel` is the object most users interact with: it bundles a
scoring function, its trained parameter dict and the training configuration,
and exposes prediction, ranking, evaluation and (de)serialization.  The
:func:`train_model` convenience function covers the common
"train this SF on this graph with this config" call in one line, which is
also the primitive the AutoSF search invokes for every candidate.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.datasets.knowledge_graph import FilterIndex, KnowledgeGraph
from repro.kge.evaluation import (
    EvaluationResult,
    evaluate_link_prediction,
    evaluate_triplet_classification,
)
from repro.kge.scoring.base import HEAD, TAIL, ParamDict, ScoringFunction
from repro.kge.scoring.bilinear import BlockScoringFunction
from repro.kge.scoring.blocks import BlockStructure
from repro.kge.scoring.registry import get_scoring_function
from repro.kge.topk import mask_known_scores, select_predictions
from repro.kge.trainer import Trainer, TrainingHistory
from repro.utils.config import TrainingConfig
from repro.utils.serialization import (
    from_json_file,
    load_params_npz,
    save_params_npz,
    to_json_file,
)

PathLike = Union[str, Path]

#: File names a model directory written by :meth:`KGEModel.save` contains.
MODEL_METADATA_FILENAME = "model.json"
MODEL_PARAMS_FILENAME = "params.npz"
MODEL_VOCAB_FILENAME = "vocab.json"


class ModelLoadError(RuntimeError):
    """A model directory is missing pieces or inconsistent.

    Raised by :meth:`KGEModel.load` instead of the raw ``FileNotFoundError``
    / ``KeyError`` a half-written directory would otherwise produce, always
    naming the offending path.
    """


def scoring_function_from_metadata(metadata: Dict[str, object]) -> ScoringFunction:
    """Rebuild a scoring function from saved metadata.

    Block-structured models are reconstructed from their stored block list;
    anything else resolves through the name registry.  Shared by
    :meth:`KGEModel.load` and the serving artifact loader.
    """
    name = str(metadata["scoring_function"])
    if "block_structure" in metadata:
        structure = BlockStructure(
            [tuple(block) for block in metadata["block_structure"]], name=name
        )
        return BlockScoringFunction(structure, name=name)
    return get_scoring_function(name)


def scoring_function_metadata(scoring_function: ScoringFunction) -> Dict[str, object]:
    """The metadata :func:`scoring_function_from_metadata` needs to rebuild."""
    metadata: Dict[str, object] = {"scoring_function": scoring_function.name}
    if isinstance(scoring_function, BlockScoringFunction):
        metadata["block_structure"] = [
            list(block) for block in scoring_function.structure.blocks
        ]
    return metadata


def require_graph_matches_params(
    params: ParamDict,
    graph: KnowledgeGraph,
    error_cls: type = ValueError,
) -> None:
    """Fail when a graph's vocabulary sizes don't match trained parameters."""
    num_entities = int(params["entities"].shape[0])
    num_relations = int(params["relations"].shape[0])
    if graph.num_entities != num_entities or graph.num_relations != num_relations:
        raise error_cls(
            f"graph vocabulary ({graph.num_entities} entities, "
            f"{graph.num_relations} relations) does not match the trained "
            f"parameters ({num_entities} entities, {num_relations} relations)"
        )


def write_vocab_file(
    entity_names: Optional[Sequence[str]],
    relation_names: Optional[Sequence[str]],
    path: Path,
) -> Optional[Path]:
    """Write entity/relation labels as a vocab JSON (no file when both absent).

    The single definition of the ``vocab.json`` schema — model saving and
    artifact export both write through here, and the artifact loader reads
    files produced by either.
    """
    if entity_names is None and relation_names is None:
        return None
    return to_json_file(
        {
            "entity_names": list(entity_names) if entity_names else None,
            "relation_names": list(relation_names) if relation_names else None,
        },
        path,
    )


def read_model_directory(
    base: Path,
    metadata_filename: str,
    params_filename: str,
    error_cls: type,
    label: str = "model",
    writer_hint: str = "KGEModel.save",
    required_metadata_keys: Sequence[str] = ("scoring_function", "config"),
) -> Tuple[Dict[str, object], ParamDict]:
    """Read and validate the metadata + params pair of a model-like directory.

    Shared by :meth:`KGEModel.load` and the serving artifact loader: checks
    both files exist, parses the metadata JSON, checks the required keys and
    loads the parameter archive — every failure raised as ``error_cls`` with
    a message naming the directory and the broken piece.
    """
    prefix = f"cannot load {label} from {base}"
    metadata_path = base / metadata_filename
    params_path = base / params_filename
    missing_files = [path.name for path in (metadata_path, params_path) if not path.exists()]
    if missing_files:
        raise error_cls(
            f"{prefix}: missing {', '.join(missing_files)} "
            f"(expected a directory written by {writer_hint})"
        )
    try:
        metadata = from_json_file(metadata_path)
    except ValueError as error:
        raise error_cls(
            f"{prefix}: {metadata_path.name} is not valid JSON ({error})"
        ) from error
    missing_keys = [key for key in required_metadata_keys if key not in metadata]
    if missing_keys:
        raise error_cls(
            f"{prefix}: {metadata_path.name} is missing required keys: "
            f"{', '.join(missing_keys)}"
        )
    try:
        params = load_params_npz(params_path, required_keys=("entities", "relations"))
    except (ValueError, OSError) as error:
        raise error_cls(f"{prefix}: {error}") from error
    check_declared_counts(metadata, params, error_cls, prefix, metadata_filename, params_filename)
    return metadata, params


def check_declared_counts(
    metadata: Dict[str, object],
    params: ParamDict,
    error_cls: type,
    prefix: str,
    metadata_filename: str,
    params_filename: str,
) -> None:
    """Check declared entity/relation counts against the loaded arrays."""
    for key, count_key in (("entities", "num_entities"), ("relations", "num_relations")):
        declared = metadata.get(count_key)
        if declared is not None and int(declared) != int(params[key].shape[0]):
            raise error_cls(
                f"{prefix}: {metadata_filename} declares {int(declared)} {key} "
                f"but {params_filename} holds {int(params[key].shape[0])}"
            )


class KGEModel:
    """A trained (or trainable) knowledge-graph-embedding model."""

    def __init__(
        self,
        scoring_function: ScoringFunction,
        config: TrainingConfig,
        params: Optional[ParamDict] = None,
    ) -> None:
        self.scoring_function = scoring_function
        self.config = config
        self.params: Optional[ParamDict] = params
        self.history: Optional[TrainingHistory] = None

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(
        self,
        graph: KnowledgeGraph,
        validate: bool = False,
    ) -> TrainingHistory:
        """Train the model on ``graph``; returns the training history.

        When ``validate`` is true the trainer evaluates filtered validation
        MRR every ``config.eval_every`` epochs (enabling early stopping when
        ``config.early_stopping_patience > 0``).
        """
        trainer = Trainer(self.scoring_function, self.config)
        callback = None
        if validate and self.config.eval_every > 0:
            def callback(params: ParamDict) -> float:
                result = evaluate_link_prediction(
                    self.scoring_function, params, graph, split="valid"
                )
                return result.mrr

        self.params, self.history = trainer.fit(graph, validation_callback=callback)
        return self.history

    def _require_params(self) -> ParamDict:
        if self.params is None:
            raise RuntimeError("model has no parameters; call fit() or load() first")
        return self.params

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def score(self, triples: np.ndarray) -> np.ndarray:
        """Plausibility scores of explicit (h, r, t) triples."""
        return self.scoring_function.score_triples(self._require_params(), np.asarray(triples))

    def _predict(
        self,
        entity: int,
        relation: int,
        direction: str,
        top_k: int,
        exclude_known: Optional[FilterIndex],
    ) -> Sequence[Tuple[int, float]]:
        """One query scored naively, selected through the shared top-k helper.

        This is the serving engine's parity oracle: plain per-query
        ``score_candidates`` (no relation materialization, no caching), with
        selection and known-positive masking going through exactly the same
        helpers as the batched engine.
        """
        params = self._require_params()
        queries = np.asarray([[entity, relation]], dtype=np.int64)
        scores = self.scoring_function.score_candidates(params, queries, direction=direction)
        if exclude_known is not None:
            scores = mask_known_scores(
                scores, exclude_known, queries[:, 0], queries[:, 1], direction
            )
        order, top_scores = select_predictions(scores[0], top_k)
        return [(int(index), float(score)) for index, score in zip(order, top_scores)]

    def predict_tails(
        self,
        head: int,
        relation: int,
        top_k: int = 10,
        exclude_known: Optional[FilterIndex] = None,
    ) -> Sequence[Tuple[int, float]]:
        """Top-k candidate tails for ``(head, relation, ?)`` as (entity, score).

        Candidates are ordered by descending score, ties by lower entity
        index (selected with ``argpartition``, not a full sort).  When
        ``exclude_known`` is given, entities listed as known answers of the
        query in that :class:`FilterIndex` are removed from the candidates —
        a saturated query may therefore return fewer than ``top_k`` results.
        """
        return self._predict(head, relation, TAIL, top_k, exclude_known)

    def predict_heads(
        self,
        relation: int,
        tail: int,
        top_k: int = 10,
        exclude_known: Optional[FilterIndex] = None,
    ) -> Sequence[Tuple[int, float]]:
        """Top-k candidate heads for ``(?, relation, tail)`` as (entity, score).

        Same ordering, tie-breaking and ``exclude_known`` semantics as
        :meth:`predict_tails`.
        """
        return self._predict(tail, relation, HEAD, top_k, exclude_known)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        graph: KnowledgeGraph,
        split: str = "test",
        hits_at: Sequence[int] = (1, 3, 10),
    ) -> EvaluationResult:
        """Filtered link-prediction metrics on the chosen split."""
        return evaluate_link_prediction(
            self.scoring_function, self._require_params(), graph, split=split, hits_at=hits_at
        )

    def classify(self, graph: KnowledgeGraph, rng: Optional[int] = 0) -> float:
        """Triplet-classification accuracy on the test split."""
        return evaluate_triplet_classification(
            self.scoring_function, self._require_params(), graph, rng=rng
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def save(self, directory: PathLike, graph: Optional[KnowledgeGraph] = None) -> Path:
        """Save parameters + config (+ block structure, if any) to a directory.

        Entity/relation counts are persisted in the metadata so the model can
        be reloaded, exported and queried without re-specifying the dataset.
        When ``graph`` is given and carries entity/relation labels, a
        ``vocab.json`` is written alongside so downstream consumers (the
        serving artifact, the query CLI) can resolve symbols.
        """
        params = self._require_params()
        if graph is not None:
            require_graph_matches_params(params, graph)
        base = Path(directory)
        base.mkdir(parents=True, exist_ok=True)
        save_params_npz(params, base / MODEL_PARAMS_FILENAME)
        metadata: Dict[str, object] = scoring_function_metadata(self.scoring_function)
        metadata["config"] = self.config.to_dict()
        metadata["num_entities"] = int(params["entities"].shape[0])
        metadata["num_relations"] = int(params["relations"].shape[0])
        to_json_file(metadata, base / MODEL_METADATA_FILENAME)
        if graph is not None:
            write_vocab_file(graph.entity_names, graph.relation_names, base / MODEL_VOCAB_FILENAME)
        return base

    @classmethod
    def load(cls, directory: PathLike) -> "KGEModel":
        """Load a model previously written by :meth:`save`.

        A missing or half-written directory raises :class:`ModelLoadError`
        naming the path and the missing piece, instead of the raw
        ``FileNotFoundError`` / ``KeyError`` it used to surface.
        """
        base = Path(directory)
        metadata, params = read_model_directory(
            base, MODEL_METADATA_FILENAME, MODEL_PARAMS_FILENAME, ModelLoadError
        )
        try:
            config = TrainingConfig.from_dict(metadata["config"])
            scoring_function = scoring_function_from_metadata(metadata)
        except (KeyError, TypeError, ValueError) as error:
            raise ModelLoadError(f"cannot load model from {base}: {error}") from error
        return cls(scoring_function, config, params=params)


def train_model(
    graph: KnowledgeGraph,
    scoring_function: Union[str, ScoringFunction, BlockStructure],
    config: Optional[TrainingConfig] = None,
    validate: bool = False,
) -> KGEModel:
    """Train a model in one call.

    Parameters
    ----------
    scoring_function:
        A model name (``"complex"`` …), a :class:`ScoringFunction` instance,
        or a raw :class:`BlockStructure` (e.g. one found by the search).
    """
    if config is None:
        config = TrainingConfig()
    if isinstance(scoring_function, str):
        scoring_function = get_scoring_function(scoring_function)
    elif isinstance(scoring_function, BlockStructure):
        scoring_function = BlockScoringFunction(scoring_function)
    model = KGEModel(scoring_function, config)
    model.fit(graph, validate=validate)
    return model
