"""First-order optimizers over parameter dictionaries.

The paper uses Adagrad "since it tends to perform better as indicated in
[19], [39]"; SGD and Adam are provided as alternatives.  Each optimizer
mutates the parameter arrays in place given a gradient dict with matching
keys and shapes, and supports a multiplicative learning-rate decay applied
once per epoch (the paper tunes a decay rate in [0.99, 1.0]).

Two update entry points exist:

* :meth:`Optimizer.step` — the classic dense update: every gradient array
  matches its parameter array's full shape and every state row is touched.
* :meth:`Optimizer.step_sparse` — the sparse-gradient update used by the
  ``"sparse"`` training engine.  Gradients arrive as either a dense array
  (for globally-shared parameters such as MLP weights) or an
  ``(indices, block)`` pair, where ``indices`` is a strictly increasing
  row-index array and ``block`` holds one gradient row per index.  Only the
  addressed rows of the parameters *and of the optimizer state* are read or
  written, so the per-step cost is O(touched rows) instead of O(vocabulary).
  State arrays are still materialized lazily at full shape on first touch
  (all zeros); the rows of never-touched entries simply stay zero, which is
  exactly the state a dense run would have left them in.

Sparse/dense equivalence: for SGD and Adagrad a sparse step is numerically
identical to a dense step whose gradient is zero outside ``indices`` (a zero
gradient row moves neither the parameter nor the accumulator).  Adam is the
standard *lazy* variant (as in ``torch.optim.SparseAdam`` and DGL's sparse
optimizers): moment decay is applied only to touched rows, so it matches the
dense step exactly on the first update of a row but intentionally skips the
pure-decay drift of untouched rows afterwards.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Tuple, Union

import numpy as np

from repro.kge.scoring.base import ParamDict

#: A sparse-gradient dict entry: either a full-shape dense array or an
#: ``(indices, block)`` pair addressing a subset of parameter rows.
SparseGrad = Union[np.ndarray, Tuple[np.ndarray, np.ndarray]]
SparseGradDict = Dict[str, SparseGrad]


def densify_sparse_grads(params: ParamDict, grads: SparseGradDict) -> ParamDict:
    """Scatter ``(indices, block)`` entries into full-shape zero arrays.

    The resulting dict is a valid input to :meth:`Optimizer.step`; it is the
    exact dense gradient the sparse representation stands for (rows outside
    ``indices`` are zero).  Used by the base-class :meth:`Optimizer.step_sparse`
    fallback, and handy in parity tests.
    """
    dense: ParamDict = {}
    for key, grad in grads.items():
        if isinstance(grad, tuple):
            indices, block = grad
            full = np.zeros_like(params[key])
            full[indices] = block
            dense[key] = full
        else:
            dense[key] = grad
    return dense


def _deep_copy_state(value):
    """Recursively copy optimizer state (dicts of arrays/scalars, any depth)."""
    if isinstance(value, dict):
        return {key: _deep_copy_state(item) for key, item in value.items()}
    if isinstance(value, np.ndarray):
        return value.copy()
    return value


class Optimizer(ABC):
    """Base class for in-place parameter-dict optimizers."""

    def __init__(self, learning_rate: float, decay_rate: float = 1.0) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0 < decay_rate <= 1.0:
            raise ValueError("decay_rate must be in (0, 1]")
        self.learning_rate = float(learning_rate)
        self.decay_rate = float(decay_rate)
        self._state: Dict[str, Dict[str, np.ndarray]] = {}

    def decay(self) -> None:
        """Apply one step of learning-rate decay (call once per epoch)."""
        self.learning_rate *= self.decay_rate

    def reset(self) -> None:
        """Forget any accumulated per-parameter state."""
        self._state.clear()

    def snapshot(self) -> dict:
        """Deep-copy of the optimizer state (for best-checkpoint restore).

        The trainer snapshots this together with the parameters at every new
        best validation score, so that restoring the best checkpoint also
        restores the matching accumulator state (Adagrad sums, Adam moments,
        the decayed learning rate) instead of the accumulators of the worse
        trailing epochs.

        The copy is *recursively* deep: every array at every nesting level is
        duplicated, never aliased.  This matters because the sparse update
        path (:meth:`step_sparse`) mutates state rows in place — a snapshot
        that shared storage with the live state would silently drift as
        training continues past the checkpoint.
        """
        return {
            "learning_rate": self.learning_rate,
            "state": _deep_copy_state(self._state),
        }

    def restore(self, snapshot: dict) -> None:
        """Restore state previously captured by :meth:`snapshot`.

        The snapshot itself is deep-copied in, so restoring twice (or
        continuing to train after a restore) can never mutate the caller's
        snapshot dict.
        """
        self.learning_rate = float(snapshot["learning_rate"])
        self._state = _deep_copy_state(snapshot["state"])

    def _state_for(self, key: str, template: np.ndarray, names: tuple) -> Dict[str, np.ndarray]:
        if key not in self._state:
            self._state[key] = {name: np.zeros_like(template) for name in names}
        return self._state[key]

    @abstractmethod
    def step(self, params: ParamDict, grads: ParamDict) -> None:
        """Update ``params`` in place from ``grads``."""

    def step_sparse(self, params: ParamDict, grads: SparseGradDict) -> None:
        """Update ``params`` in place from a sparse-gradient dict.

        The base-class implementation densifies the gradients and delegates
        to :meth:`step` — always correct, but O(vocabulary) per call.
        :class:`SGD`, :class:`Adagrad` and :class:`Adam` override it with
        per-row updates that only touch the addressed rows.
        """
        self._check_sparse(params, grads)
        self.step(params, densify_sparse_grads(params, grads))

    def _check(self, params: ParamDict, grads: ParamDict) -> None:
        for key, value in grads.items():
            if key not in params:
                raise KeyError(f"gradient for unknown parameter {key!r}")
            if value.shape != params[key].shape:
                raise ValueError(
                    f"gradient shape {value.shape} does not match parameter "
                    f"{key!r} shape {params[key].shape}"
                )

    def _check_sparse(self, params: ParamDict, grads: SparseGradDict) -> None:
        for key, value in grads.items():
            if key not in params:
                raise KeyError(f"gradient for unknown parameter {key!r}")
            if not isinstance(value, tuple):
                if value.shape != params[key].shape:
                    raise ValueError(
                        f"dense gradient shape {value.shape} does not match "
                        f"parameter {key!r} shape {params[key].shape}"
                    )
                continue
            indices, block = value
            if indices.ndim != 1:
                raise ValueError(f"sparse indices for {key!r} must be 1-D")
            if indices.size and np.any(np.diff(indices) <= 0):
                # Strictly increasing indices double as a uniqueness guarantee;
                # fancy-indexed in-place updates silently drop duplicate rows.
                raise ValueError(
                    f"sparse indices for {key!r} must be strictly increasing "
                    "(sorted and duplicate-free)"
                )
            expected = (indices.shape[0],) + params[key].shape[1:]
            if block.shape != expected:
                raise ValueError(
                    f"sparse block shape {block.shape} for {key!r} does not "
                    f"match expected {expected}"
                )
            if indices.size and (indices[0] < 0 or indices[-1] >= params[key].shape[0]):
                raise ValueError(f"sparse indices for {key!r} out of range")


class SGD(Optimizer):
    """Plain stochastic gradient descent."""

    def step(self, params: ParamDict, grads: ParamDict) -> None:
        self._check(params, grads)
        for key, grad in grads.items():
            params[key] -= self.learning_rate * grad

    def step_sparse(self, params: ParamDict, grads: SparseGradDict) -> None:
        self._check_sparse(params, grads)
        for key, grad in grads.items():
            if isinstance(grad, tuple):
                indices, block = grad
                params[key][indices] -= self.learning_rate * block
            else:
                params[key] -= self.learning_rate * grad


class Adagrad(Optimizer):
    """Adagrad (Duchi et al., 2011) — the paper's optimizer."""

    def __init__(self, learning_rate: float, decay_rate: float = 1.0, epsilon: float = 1e-8) -> None:
        super().__init__(learning_rate, decay_rate)
        self.epsilon = float(epsilon)

    def step(self, params: ParamDict, grads: ParamDict) -> None:
        self._check(params, grads)
        for key, grad in grads.items():
            state = self._state_for(key, params[key], ("sum_squares",))
            state["sum_squares"] += grad * grad
            params[key] -= self.learning_rate * grad / (np.sqrt(state["sum_squares"]) + self.epsilon)

    def step_sparse(self, params: ParamDict, grads: SparseGradDict) -> None:
        self._check_sparse(params, grads)
        for key, grad in grads.items():
            state = self._state_for(key, params[key], ("sum_squares",))
            if isinstance(grad, tuple):
                indices, block = grad
                sum_squares = state["sum_squares"]
                sum_squares[indices] += block * block
                params[key][indices] -= (
                    self.learning_rate * block / (np.sqrt(sum_squares[indices]) + self.epsilon)
                )
            else:
                state["sum_squares"] += grad * grad
                params[key] -= (
                    self.learning_rate * grad / (np.sqrt(state["sum_squares"]) + self.epsilon)
                )


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015)."""

    def __init__(
        self,
        learning_rate: float,
        decay_rate: float = 1.0,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        super().__init__(learning_rate, decay_rate)
        if not 0 <= beta1 < 1 or not 0 <= beta2 < 1:
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self._step_count = 0

    def reset(self) -> None:
        super().reset()
        self._step_count = 0

    def snapshot(self) -> dict:
        data = super().snapshot()
        data["step_count"] = self._step_count
        return data

    def restore(self, snapshot: dict) -> None:
        super().restore(snapshot)
        self._step_count = int(snapshot["step_count"])

    def step(self, params: ParamDict, grads: ParamDict) -> None:
        self._check(params, grads)
        self._step_count += 1
        correction1 = 1.0 - self.beta1**self._step_count
        correction2 = 1.0 - self.beta2**self._step_count
        for key, grad in grads.items():
            state = self._state_for(key, params[key], ("m", "v"))
            state["m"] = self.beta1 * state["m"] + (1.0 - self.beta1) * grad
            state["v"] = self.beta2 * state["v"] + (1.0 - self.beta2) * grad * grad
            m_hat = state["m"] / correction1
            v_hat = state["v"] / correction2
            params[key] -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

    def step_sparse(self, params: ParamDict, grads: SparseGradDict) -> None:
        """Lazy Adam: decay and update moments only for the touched rows.

        The bias-correction exponent is the shared global step count (as in
        ``torch.optim.SparseAdam``), so a row's very first sparse update
        matches the dense step bit for bit; afterwards untouched rows skip
        the pure-decay drift a dense step would apply.
        """
        self._check_sparse(params, grads)
        self._step_count += 1
        correction1 = 1.0 - self.beta1**self._step_count
        correction2 = 1.0 - self.beta2**self._step_count
        for key, grad in grads.items():
            state = self._state_for(key, params[key], ("m", "v"))
            if isinstance(grad, tuple):
                indices, block = grad
                m, v = state["m"], state["v"]
                m[indices] = self.beta1 * m[indices] + (1.0 - self.beta1) * block
                v[indices] = self.beta2 * v[indices] + (1.0 - self.beta2) * block * block
                m_hat = m[indices] / correction1
                v_hat = v[indices] / correction2
                params[key][indices] -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
            else:
                state["m"] = self.beta1 * state["m"] + (1.0 - self.beta1) * grad
                state["v"] = self.beta2 * state["v"] + (1.0 - self.beta2) * grad * grad
                m_hat = state["m"] / correction1
                v_hat = state["v"] / correction2
                params[key] -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)


def get_optimizer(name: str, learning_rate: float, decay_rate: float = 1.0) -> Optimizer:
    """Instantiate an optimizer by name (``sgd`` / ``adagrad`` / ``adam``)."""
    key = name.lower()
    if key == "sgd":
        return SGD(learning_rate, decay_rate)
    if key == "adagrad":
        return Adagrad(learning_rate, decay_rate)
    if key == "adam":
        return Adam(learning_rate, decay_rate)
    raise KeyError(f"unknown optimizer {name!r}; available: sgd, adagrad, adam")
