"""First-order optimizers over parameter dictionaries.

The paper uses Adagrad "since it tends to perform better as indicated in
[19], [39]"; SGD and Adam are provided as alternatives.  Each optimizer
mutates the parameter arrays in place given a gradient dict with matching
keys and shapes, and supports a multiplicative learning-rate decay applied
once per epoch (the paper tunes a decay rate in [0.99, 1.0]).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict

import numpy as np

from repro.kge.scoring.base import ParamDict


class Optimizer(ABC):
    """Base class for in-place parameter-dict optimizers."""

    def __init__(self, learning_rate: float, decay_rate: float = 1.0) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0 < decay_rate <= 1.0:
            raise ValueError("decay_rate must be in (0, 1]")
        self.learning_rate = float(learning_rate)
        self.decay_rate = float(decay_rate)
        self._state: Dict[str, Dict[str, np.ndarray]] = {}

    def decay(self) -> None:
        """Apply one step of learning-rate decay (call once per epoch)."""
        self.learning_rate *= self.decay_rate

    def reset(self) -> None:
        """Forget any accumulated per-parameter state."""
        self._state.clear()

    def snapshot(self) -> dict:
        """Deep-copy of the optimizer state (for best-checkpoint restore).

        The trainer snapshots this together with the parameters at every new
        best validation score, so that restoring the best checkpoint also
        restores the matching accumulator state (Adagrad sums, Adam moments,
        the decayed learning rate) instead of the accumulators of the worse
        trailing epochs.
        """
        return {
            "learning_rate": self.learning_rate,
            "state": {
                key: {name: array.copy() for name, array in slots.items()}
                for key, slots in self._state.items()
            },
        }

    def restore(self, snapshot: dict) -> None:
        """Restore state previously captured by :meth:`snapshot`."""
        self.learning_rate = float(snapshot["learning_rate"])
        self._state = {
            key: {name: array.copy() for name, array in slots.items()}
            for key, slots in snapshot["state"].items()
        }

    def _state_for(self, key: str, template: np.ndarray, names: tuple) -> Dict[str, np.ndarray]:
        if key not in self._state:
            self._state[key] = {name: np.zeros_like(template) for name in names}
        return self._state[key]

    @abstractmethod
    def step(self, params: ParamDict, grads: ParamDict) -> None:
        """Update ``params`` in place from ``grads``."""

    def _check(self, params: ParamDict, grads: ParamDict) -> None:
        for key, value in grads.items():
            if key not in params:
                raise KeyError(f"gradient for unknown parameter {key!r}")
            if value.shape != params[key].shape:
                raise ValueError(
                    f"gradient shape {value.shape} does not match parameter "
                    f"{key!r} shape {params[key].shape}"
                )


class SGD(Optimizer):
    """Plain stochastic gradient descent."""

    def step(self, params: ParamDict, grads: ParamDict) -> None:
        self._check(params, grads)
        for key, grad in grads.items():
            params[key] -= self.learning_rate * grad


class Adagrad(Optimizer):
    """Adagrad (Duchi et al., 2011) — the paper's optimizer."""

    def __init__(self, learning_rate: float, decay_rate: float = 1.0, epsilon: float = 1e-8) -> None:
        super().__init__(learning_rate, decay_rate)
        self.epsilon = float(epsilon)

    def step(self, params: ParamDict, grads: ParamDict) -> None:
        self._check(params, grads)
        for key, grad in grads.items():
            state = self._state_for(key, params[key], ("sum_squares",))
            state["sum_squares"] += grad * grad
            params[key] -= self.learning_rate * grad / (np.sqrt(state["sum_squares"]) + self.epsilon)


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015)."""

    def __init__(
        self,
        learning_rate: float,
        decay_rate: float = 1.0,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        super().__init__(learning_rate, decay_rate)
        if not 0 <= beta1 < 1 or not 0 <= beta2 < 1:
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self._step_count = 0

    def reset(self) -> None:
        super().reset()
        self._step_count = 0

    def snapshot(self) -> dict:
        data = super().snapshot()
        data["step_count"] = self._step_count
        return data

    def restore(self, snapshot: dict) -> None:
        super().restore(snapshot)
        self._step_count = int(snapshot["step_count"])

    def step(self, params: ParamDict, grads: ParamDict) -> None:
        self._check(params, grads)
        self._step_count += 1
        correction1 = 1.0 - self.beta1**self._step_count
        correction2 = 1.0 - self.beta2**self._step_count
        for key, grad in grads.items():
            state = self._state_for(key, params[key], ("m", "v"))
            state["m"] = self.beta1 * state["m"] + (1.0 - self.beta1) * grad
            state["v"] = self.beta2 * state["v"] + (1.0 - self.beta2) * grad * grad
            m_hat = state["m"] / correction1
            v_hat = state["v"] / correction2
            params[key] -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)


def get_optimizer(name: str, learning_rate: float, decay_rate: float = 1.0) -> Optimizer:
    """Instantiate an optimizer by name (``sgd`` / ``adagrad`` / ``adam``)."""
    key = name.lower()
    if key == "sgd":
        return SGD(learning_rate, decay_rate)
    if key == "adagrad":
        return Adagrad(learning_rate, decay_rate)
    if key == "adam":
        return Adam(learning_rate, decay_rate)
    raise KeyError(f"unknown optimizer {name!r}; available: sgd, adagrad, adam")
