"""Training losses.

The paper trains every candidate with the multi-class (full softmax) loss of
Lacroix et al. (2018) because it "currently achieves the best performance and
has little variance" (Sec. II-A).  Logistic and hinge (margin) losses are
provided as alternatives; they operate on the same all-candidate score matrix
but only look at the positive column and a set of sampled negative columns,
so the scoring-function interface stays identical across losses.

Every loss implements::

    value, dscores = loss.compute(scores, targets, negatives=None)

where ``scores`` is the ``(batch, num_candidates)`` score matrix, ``targets``
gives the column of the true entity for every row, and ``negatives`` (only
used by the pairwise losses) holds ``(batch, num_negatives)`` sampled
negative columns.  ``dscores`` is the gradient of the *mean* per-triple loss
with respect to ``scores``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Tuple

import numpy as np


def _check_inputs(scores: np.ndarray, targets: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    scores = np.asarray(scores, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.int64)
    if scores.ndim != 2:
        raise ValueError("scores must be 2-D (batch, num_candidates)")
    if targets.shape != (scores.shape[0],):
        raise ValueError("targets must be 1-D with one entry per scored row")
    if targets.min(initial=0) < 0 or (targets.size and targets.max() >= scores.shape[1]):
        raise ValueError("target column out of range")
    return scores, targets


def softplus(x: np.ndarray) -> np.ndarray:
    """Numerically stable ``log(1 + exp(x))``."""
    return np.logaddexp(0.0, x)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(x, dtype=np.float64)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


class Loss(ABC):
    """Base class for training losses."""

    #: Whether the trainer must supply sampled negative columns.
    needs_negative_samples: bool = False

    @abstractmethod
    def compute(
        self,
        scores: np.ndarray,
        targets: np.ndarray,
        negatives: Optional[np.ndarray] = None,
    ) -> Tuple[float, np.ndarray]:
        """Return (mean loss, d mean-loss / d scores)."""


class MulticlassLoss(Loss):
    """Softmax cross-entropy over every candidate entity (the paper's loss)."""

    needs_negative_samples = False

    def compute(
        self,
        scores: np.ndarray,
        targets: np.ndarray,
        negatives: Optional[np.ndarray] = None,
    ) -> Tuple[float, np.ndarray]:
        scores, targets = _check_inputs(scores, targets)
        batch = scores.shape[0]
        if batch == 0:
            return 0.0, np.zeros_like(scores)
        shifted = scores - scores.max(axis=1, keepdims=True)
        exp_scores = np.exp(shifted)
        partition = exp_scores.sum(axis=1, keepdims=True)
        log_probs = shifted - np.log(partition)
        rows = np.arange(batch)
        value = float(-log_probs[rows, targets].mean())
        dscores = exp_scores / partition
        dscores[rows, targets] -= 1.0
        dscores /= batch
        return value, dscores


class LogisticLoss(Loss):
    """Logistic (binary cross-entropy) loss with sampled negatives."""

    needs_negative_samples = True

    def compute(
        self,
        scores: np.ndarray,
        targets: np.ndarray,
        negatives: Optional[np.ndarray] = None,
    ) -> Tuple[float, np.ndarray]:
        scores, targets = _check_inputs(scores, targets)
        if negatives is None:
            raise ValueError("LogisticLoss requires sampled negative columns")
        negatives = np.asarray(negatives, dtype=np.int64)
        batch, num_negatives = negatives.shape
        rows = np.arange(batch)
        positive_scores = scores[rows, targets]
        negative_scores = scores[rows[:, None], negatives]

        value = float(
            (softplus(-positive_scores) + softplus(negative_scores).mean(axis=1)).mean()
        )
        dscores = np.zeros_like(scores)
        dscores[rows, targets] -= sigmoid(-positive_scores)
        np.add.at(
            dscores,
            (rows[:, None], negatives),
            sigmoid(negative_scores) / num_negatives,
        )
        dscores /= batch
        return value, dscores


class HingeLoss(Loss):
    """Margin-based ranking loss (the classic TransE objective)."""

    needs_negative_samples = True

    def __init__(self, margin: float = 1.0) -> None:
        if margin <= 0:
            raise ValueError("margin must be positive")
        self.margin = float(margin)

    def compute(
        self,
        scores: np.ndarray,
        targets: np.ndarray,
        negatives: Optional[np.ndarray] = None,
    ) -> Tuple[float, np.ndarray]:
        scores, targets = _check_inputs(scores, targets)
        if negatives is None:
            raise ValueError("HingeLoss requires sampled negative columns")
        negatives = np.asarray(negatives, dtype=np.int64)
        batch, num_negatives = negatives.shape
        rows = np.arange(batch)
        positive_scores = scores[rows, targets]
        negative_scores = scores[rows[:, None], negatives]

        violations = self.margin - positive_scores[:, None] + negative_scores
        active = violations > 0
        value = float(np.where(active, violations, 0.0).mean(axis=1).mean())

        dscores = np.zeros_like(scores)
        per_pair = active.astype(np.float64) / num_negatives
        dscores[rows, targets] -= per_pair.sum(axis=1)
        np.add.at(dscores, (rows[:, None], negatives), per_pair)
        dscores /= batch
        return value, dscores


def get_loss(name: str, margin: float = 1.0) -> Loss:
    """Instantiate a loss by name (``multiclass`` / ``logistic`` / ``hinge``)."""
    key = name.lower()
    if key == "multiclass":
        return MulticlassLoss()
    if key == "logistic":
        return LogisticLoss()
    if key == "hinge":
        return HingeLoss(margin=margin)
    raise KeyError(f"unknown loss {name!r}; available: multiclass, logistic, hinge")
