"""Training losses.

The paper trains every candidate with the multi-class (full softmax) loss of
Lacroix et al. (2018) because it "currently achieves the best performance and
has little variance" (Sec. II-A).  Logistic and hinge (margin) losses are
provided as alternatives; they operate on the same all-candidate score matrix
but only look at the positive column and a set of sampled negative columns,
so the scoring-function interface stays identical across losses.

Every loss implements::

    value, dscores = loss.compute(scores, targets, negatives=None)

where ``scores`` is the ``(batch, num_candidates)`` score matrix, ``targets``
gives the column of the true entity for every row, and ``negatives`` (only
used by the pairwise losses) holds ``(batch, num_negatives)`` sampled
negative columns.  ``dscores`` is the gradient of the *mean* per-triple loss
with respect to ``scores``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Tuple

import numpy as np


def _check_inputs(scores: np.ndarray, targets: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    scores = np.asarray(scores, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.int64)
    if scores.ndim != 2:
        raise ValueError("scores must be 2-D (batch, num_candidates)")
    if targets.shape != (scores.shape[0],):
        raise ValueError("targets must be 1-D with one entry per scored row")
    if targets.min(initial=0) < 0 or (targets.size and targets.max() >= scores.shape[1]):
        raise ValueError("target column out of range")
    return scores, targets


def softplus(x: np.ndarray) -> np.ndarray:
    """Numerically stable ``log(1 + exp(x))``."""
    return np.logaddexp(0.0, x)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(x, dtype=np.float64)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


class Loss(ABC):
    """Base class for training losses."""

    #: Whether the trainer must supply sampled negative columns.
    needs_negative_samples: bool = False

    @abstractmethod
    def compute(
        self,
        scores: np.ndarray,
        targets: np.ndarray,
        negatives: Optional[np.ndarray] = None,
    ) -> Tuple[float, np.ndarray]:
        """Return (mean loss, d mean-loss / d scores)."""


class MulticlassLoss(Loss):
    """Softmax cross-entropy over every candidate entity (the paper's loss)."""

    needs_negative_samples = False

    def compute(
        self,
        scores: np.ndarray,
        targets: np.ndarray,
        negatives: Optional[np.ndarray] = None,
    ) -> Tuple[float, np.ndarray]:
        scores, targets = _check_inputs(scores, targets)
        batch = scores.shape[0]
        if batch == 0:
            return 0.0, np.zeros_like(scores)
        shifted = scores - scores.max(axis=1, keepdims=True)
        exp_scores = np.exp(shifted)
        partition = exp_scores.sum(axis=1, keepdims=True)
        log_probs = shifted - np.log(partition)
        rows = np.arange(batch)
        value = float(-log_probs[rows, targets].mean())
        dscores = exp_scores / partition
        dscores[rows, targets] -= 1.0
        dscores /= batch
        return value, dscores


def multiclass_inplace(scores: np.ndarray, targets: np.ndarray) -> Tuple[float, np.ndarray]:
    """Fused softmax cross-entropy that turns ``scores`` into ``dscores`` in place.

    Computes the same (value, gradient) as :meth:`MulticlassLoss.compute` —
    identical operation order, so the results agree bit for bit — but reuses
    the ``scores`` buffer for every intermediate instead of allocating four
    ``(batch, num_candidates)`` temporaries.  This is the single-pass hot
    path of the batched training engine; the caller must own ``scores``.
    """
    scores, targets = _check_inputs(scores, targets)
    batch = scores.shape[0]
    if batch == 0:
        return 0.0, np.zeros_like(scores)
    rows = np.arange(batch)
    np.subtract(scores, scores.max(axis=1, keepdims=True), out=scores)
    shifted_targets = scores[rows, targets].copy()
    np.exp(scores, out=scores)
    partition = scores.sum(axis=1, keepdims=True)
    value = float(np.mean(np.log(partition[:, 0]) - shifted_targets))
    np.divide(scores, partition, out=scores)
    scores[rows, targets] -= 1.0
    scores /= batch
    return value, scores


class StreamingMulticlass:
    """Two-pass softmax cross-entropy over entity chunks in bounded memory.

    The multi-class loss needs the partition function over *every* candidate
    entity, so chunked scoring cannot evaluate it in one pass.  This helper
    implements the standard streaming log-sum-exp: the first pass feeds each
    score chunk to :meth:`observe` (tracking a running maximum and rescaled
    exponential sum plus the target scores), then :meth:`value` yields the
    mean loss and the second pass turns each re-scored chunk into its slice
    of the gradient via :meth:`dscores_chunk`.  Peak memory never exceeds one
    ``(batch, chunk)`` score block.
    """

    def __init__(self, targets: np.ndarray) -> None:
        self.targets = np.asarray(targets, dtype=np.int64)
        batch = self.targets.shape[0]
        self._rows = np.arange(batch)
        self._running_max = np.full(batch, -np.inf)
        self._sum_exp = np.zeros(batch)
        self._target_scores = np.zeros(batch)
        self._log_partition: Optional[np.ndarray] = None

    def observe(self, scores_chunk: np.ndarray, start: int, stop: int) -> None:
        """First pass: fold the scores of candidate columns [start, stop)."""
        chunk_max = scores_chunk.max(axis=1)
        new_max = np.maximum(self._running_max, chunk_max)
        self._sum_exp = self._sum_exp * np.exp(self._running_max - new_max) + np.exp(
            scores_chunk - new_max[:, None]
        ).sum(axis=1)
        self._running_max = new_max
        in_chunk = (self.targets >= start) & (self.targets < stop)
        if in_chunk.any():
            self._target_scores[in_chunk] = scores_chunk[
                self._rows[in_chunk], self.targets[in_chunk] - start
            ]

    def _finalize(self) -> np.ndarray:
        if self._log_partition is None:
            self._log_partition = self._running_max + np.log(self._sum_exp)
        return self._log_partition

    def value(self) -> float:
        """Mean loss after every chunk has been observed."""
        if self.targets.shape[0] == 0:
            return 0.0
        return float(np.mean(self._finalize() - self._target_scores))

    def dscores_chunk(self, scores_chunk: np.ndarray, start: int, stop: int) -> np.ndarray:
        """Second pass: gradient slice for columns [start, stop), in place."""
        batch = self.targets.shape[0]
        np.subtract(scores_chunk, self._finalize()[:, None], out=scores_chunk)
        np.exp(scores_chunk, out=scores_chunk)
        in_chunk = (self.targets >= start) & (self.targets < stop)
        if in_chunk.any():
            scores_chunk[self._rows[in_chunk], self.targets[in_chunk] - start] -= 1.0
        scores_chunk /= batch
        return scores_chunk


class LogisticLoss(Loss):
    """Logistic (binary cross-entropy) loss with sampled negatives."""

    needs_negative_samples = True

    def compute(
        self,
        scores: np.ndarray,
        targets: np.ndarray,
        negatives: Optional[np.ndarray] = None,
    ) -> Tuple[float, np.ndarray]:
        scores, targets = _check_inputs(scores, targets)
        if negatives is None:
            raise ValueError("LogisticLoss requires sampled negative columns")
        negatives = np.asarray(negatives, dtype=np.int64)
        batch, num_negatives = negatives.shape
        rows = np.arange(batch)
        positive_scores = scores[rows, targets]
        negative_scores = scores[rows[:, None], negatives]

        value = float(
            (softplus(-positive_scores) + softplus(negative_scores).mean(axis=1)).mean()
        )
        dscores = np.zeros_like(scores)
        dscores[rows, targets] -= sigmoid(-positive_scores)
        np.add.at(
            dscores,
            (rows[:, None], negatives),
            sigmoid(negative_scores) / num_negatives,
        )
        dscores /= batch
        return value, dscores


class HingeLoss(Loss):
    """Margin-based ranking loss (the classic TransE objective)."""

    needs_negative_samples = True

    def __init__(self, margin: float = 1.0) -> None:
        if margin <= 0:
            raise ValueError("margin must be positive")
        self.margin = float(margin)

    def compute(
        self,
        scores: np.ndarray,
        targets: np.ndarray,
        negatives: Optional[np.ndarray] = None,
    ) -> Tuple[float, np.ndarray]:
        scores, targets = _check_inputs(scores, targets)
        if negatives is None:
            raise ValueError("HingeLoss requires sampled negative columns")
        negatives = np.asarray(negatives, dtype=np.int64)
        batch, num_negatives = negatives.shape
        rows = np.arange(batch)
        positive_scores = scores[rows, targets]
        negative_scores = scores[rows[:, None], negatives]

        violations = self.margin - positive_scores[:, None] + negative_scores
        active = violations > 0
        value = float(np.where(active, violations, 0.0).mean(axis=1).mean())

        dscores = np.zeros_like(scores)
        per_pair = active.astype(np.float64) / num_negatives
        dscores[rows, targets] -= per_pair.sum(axis=1)
        np.add.at(dscores, (rows[:, None], negatives), per_pair)
        dscores /= batch
        return value, dscores


def get_loss(name: str, margin: float = 1.0) -> Loss:
    """Instantiate a loss by name (``multiclass`` / ``logistic`` / ``hinge``)."""
    key = name.lower()
    if key == "multiclass":
        return MulticlassLoss()
    if key == "logistic":
        return LogisticLoss()
    if key == "hinge":
        return HingeLoss(margin=margin)
    raise KeyError(f"unknown loss {name!r}; available: multiclass, logistic, hinge")
