"""Knowledge-graph-embedding substrate: scoring functions, training, evaluation.

This package is a self-contained, NumPy-only KGE framework implementing the
training and evaluation pipeline of Alg. 1 of the AutoSF paper:

* :mod:`repro.kge.scoring` — scoring functions, including the unified
  block-structured bilinear family that the AutoSF search space is built on,
  the classical bilinear models (DistMult, ComplEx, Analogy, SimplE, RESCAL),
  translational baselines (TransE, TransH, RotatE) and the MLP general
  approximator used as an AutoML baseline.
* :mod:`repro.kge.losses` — multi-class (full softmax) loss, logistic and
  hinge pairwise losses.
* :mod:`repro.kge.optimizers` — Adagrad (the paper's optimizer), Adam, SGD.
* :mod:`repro.kge.trainer` — the stochastic training loop (epochs,
  validation, early stopping with best-checkpoint restore).
* :mod:`repro.kge.engine` — pluggable per-batch training engines: the
  fused, entity-chunked ``"batched"`` fast path, the touched-rows-only
  ``"sparse"`` engine for pairwise losses and the ``"reference"`` loop kept
  as the parity oracle.
* :mod:`repro.kge.evaluation` — filtered link-prediction metrics (MRR,
  Hits@k) and triplet classification.
"""

from repro.kge.engine import (
    BatchedTrainEngine,
    ReferenceTrainEngine,
    SparseTrainEngine,
    TrainEngine,
    get_train_engine,
)
from repro.kge.model import (
    KGEModel,
    ModelLoadError,
    require_graph_matches_params,
    scoring_function_from_metadata,
    train_model,
)
from repro.kge.topk import (
    mask_known_scores,
    select_predictions,
    top_k_indices,
    top_k_reference,
)
from repro.kge.evaluation import (
    EvaluationResult,
    compute_ranks,
    compute_ranks_reference,
    evaluate_link_prediction,
    evaluate_triplet_classification,
    filtered_ranks_batch,
)
from repro.kge.trainer import Trainer, TrainingHistory
from repro.kge.scoring import (
    BlockScoringFunction,
    BlockStructure,
    ScoringFunction,
    get_scoring_function,
)

__all__ = [
    "BatchedTrainEngine",
    "ReferenceTrainEngine",
    "SparseTrainEngine",
    "TrainEngine",
    "get_train_engine",
    "KGEModel",
    "ModelLoadError",
    "require_graph_matches_params",
    "scoring_function_from_metadata",
    "train_model",
    "mask_known_scores",
    "select_predictions",
    "top_k_indices",
    "top_k_reference",
    "EvaluationResult",
    "compute_ranks",
    "compute_ranks_reference",
    "evaluate_link_prediction",
    "evaluate_triplet_classification",
    "filtered_ranks_batch",
    "Trainer",
    "TrainingHistory",
    "BlockScoringFunction",
    "BlockStructure",
    "ScoringFunction",
    "get_scoring_function",
]
