"""Parameter regularizers.

Two regularizers are provided:

* :class:`L2Regularizer` — classic weight decay on every parameter array
  (the ``L2 penalty`` the paper tunes with HyperOpt);
* :class:`N3Regularizer` — the nuclear-3-norm penalty of Lacroix et al.
  (2018), applied to the entity and relation tables only, which is the
  standard companion of the multi-class loss for bilinear models.

A regularizer contributes a scalar penalty and adds its gradient into an
existing gradient dict in place.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.kge.scoring.base import ParamDict


class Regularizer(ABC):
    """Base class for penalties added to the training loss."""

    def __init__(self, weight: float) -> None:
        if weight < 0:
            raise ValueError("regularization weight must be non-negative")
        self.weight = float(weight)

    @abstractmethod
    def penalty(self, params: ParamDict) -> float:
        """The scalar penalty value."""

    @abstractmethod
    def add_gradients(self, params: ParamDict, grads: ParamDict) -> None:
        """Accumulate the penalty gradient into ``grads`` in place."""


class L2Regularizer(Regularizer):
    """``weight * sum ||P||_2^2`` over every parameter array."""

    def penalty(self, params: ParamDict) -> float:
        if self.weight == 0:
            return 0.0
        return self.weight * float(sum(np.sum(value * value) for value in params.values()))

    def add_gradients(self, params: ParamDict, grads: ParamDict) -> None:
        if self.weight == 0:
            return
        for key, value in params.items():
            grads[key] += 2.0 * self.weight * value


class N3Regularizer(Regularizer):
    """``weight * sum |P|^3`` over the entity and relation tables."""

    _targets = ("entities", "relations")

    def penalty(self, params: ParamDict) -> float:
        if self.weight == 0:
            return 0.0
        total = 0.0
        for key in self._targets:
            if key in params:
                total += float(np.sum(np.abs(params[key]) ** 3))
        return self.weight * total

    def add_gradients(self, params: ParamDict, grads: ParamDict) -> None:
        if self.weight == 0:
            return
        for key in self._targets:
            if key in params:
                grads[key] += 3.0 * self.weight * np.sign(params[key]) * params[key] ** 2


class NoRegularizer(Regularizer):
    """A regularizer that does nothing (keeps the trainer code branch-free)."""

    def __init__(self) -> None:
        super().__init__(0.0)

    def penalty(self, params: ParamDict) -> float:
        return 0.0

    def add_gradients(self, params: ParamDict, grads: ParamDict) -> None:
        return None


def get_regularizer(name: str, weight: float) -> Regularizer:
    """Instantiate a regularizer by name (``l2`` / ``n3`` / ``none``)."""
    key = name.lower()
    if key == "l2":
        return L2Regularizer(weight)
    if key == "n3":
        return N3Regularizer(weight)
    if key in ("none", "no", "off"):
        return NoRegularizer()
    raise KeyError(f"unknown regularizer {name!r}; available: l2, n3, none")
