"""Streaming sharded dataset pipeline for million-triple workloads.

The in-memory :class:`~repro.datasets.knowledge_graph.KnowledgeGraph` holds
every split as one array, which is fine for the committed miniatures but a
wall for benchmark-scale dumps (FB15k has ~600k triples, YAGO3-10 over a
million).  This module provides the on-disk counterpart:

* :class:`TripleStore` — a directory of fixed-size ``.npy`` triple shards
  plus a JSON manifest (schema version, per-split shard list with counts,
  vocabulary sizes and hash).  Shards are loaded lazily, optionally
  memory-mapped, so opening a store costs O(1) regardless of its size.
* :func:`ingest_tsv` — a chunked ``bytes``-level TSV→shard converter that
  produces bit-identical vocabularies and triples to the line-by-line
  :func:`repro.datasets.io.load_tsv_dataset` (kept as the parity oracle)
  while reading the input in large binary chunks and writing shards
  incrementally, never holding a full split in memory.
* :class:`TripleStream` — a deterministic shuffled mini-batch iterator over
  a store split.  Shuffling is two-level (shard visiting order, then a
  permutation inside each shard), so peak memory is one shard regardless of
  split size; :func:`stream_epoch_reference` is the independent in-memory
  oracle that must produce bit-identical batches.
* :func:`build_filter_index` / :func:`entities_by_relation` — shard-aware
  construction of the filtered-evaluation index and of the relation→entity
  pools the Bernoulli negative sampler needs, so training, evaluation and
  serving all consume the same store without materializing ``(n, 3)``
  arrays for every split at once.
* :meth:`TripleStore.apply_delta` — append/delete delta shards on top of
  the frozen base shards, with a manifest ``generation`` counter.  Readers
  (:meth:`~TripleStore.load_split`, :func:`build_filter_index`,
  :meth:`~TripleStore.to_graph`) see the merged view; the streaming
  training path refuses stores with pending deltas (compact first with
  :func:`repro.live.compaction.compact_store`, whose output is
  bit-identical to re-ingesting the merged TSV).

All failure modes (missing manifest, schema mismatch, shard/manifest count
disagreement, malformed TSV lines, duplicate triples) raise
:class:`~repro.datasets.errors.DatasetError` naming the offending file.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.datasets.errors import DatasetError
from repro.datasets.knowledge_graph import (
    FilterIndex,
    KnowledgeGraph,
    _DirectionIndex,
)

PathLike = Union[str, Path]

#: Current store layout version; bumped on incompatible changes.
#: v1: base shards only.  v2: optional ``generation`` counter and
#: ``deltas`` list (append/delete delta shards under ``deltas/``); a v1
#: manifest loads as ``generation=0`` with no deltas.
STORE_SCHEMA_VERSION = 2

#: Default triples per shard.  64k rows of int64 ``(h, r, t)`` is ~1.5 MB —
#: small enough that a permuted shard stays cache-friendly, large enough
#: that a million-triple split is only ~16 shards.
DEFAULT_SHARD_SIZE = 65536

MANIFEST_FILENAME = "manifest.json"
VOCAB_FILENAME = "vocab.json"

#: Subdirectory holding append/delete delta shards.
DELTA_DIRNAME = "deltas"

_SPLITS = ("train", "valid", "test")
_DELTA_OPS = ("delete", "append")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise DatasetError(message)


def vocab_hash(
    num_entities: int,
    num_relations: int,
    entity_names: Optional[Sequence[str]] = None,
    relation_names: Optional[Sequence[str]] = None,
) -> str:
    """Stable digest of a vocabulary (sizes + names when available).

    Stored in the manifest so downstream consumers (filter indexes, negative
    samplers, serving artifacts) can check that two stores — or a store and
    a trained model — index the same symbols.
    """
    payload = json.dumps(
        {
            "num_entities": int(num_entities),
            "num_relations": int(num_relations),
            "entity_names": list(entity_names) if entity_names is not None else None,
            "relation_names": list(relation_names) if relation_names is not None else None,
        },
        sort_keys=True,
    )
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=16).hexdigest()


def _shard_filename(split: str, index: int) -> str:
    return f"{split}-{index:05d}.npy"


def _delta_filename(generation: int, op: str, split: str) -> str:
    return f"delta-{generation:05d}-{op}-{split}.npy"


def _triple_keys(
    rows: np.ndarray, num_entities: int, num_relations: int, context: str
) -> np.ndarray:
    """Pack ``(h, r, t)`` rows into one int64 key each: ``(h*R + r)*E + t``.

    Used for delta bookkeeping (delete matching, duplicate checks).  The
    packing is exact whenever ``E*R*E`` fits an int64; beyond that the
    store is far outside this project's scale, so it raises instead of
    silently colliding.
    """
    _require(
        int(num_entities) * int(num_relations) * int(num_entities) < (1 << 62),
        f"{context}: vocabulary too large for packed delta bookkeeping "
        f"({num_entities} entities x {num_relations} relations)",
    )
    rows = np.asarray(rows, dtype=np.int64)
    return (rows[:, 0] * np.int64(num_relations) + rows[:, 1]) * np.int64(
        num_entities
    ) + rows[:, 2]


def _as_delta_rows(rows: Optional[np.ndarray], context: str) -> np.ndarray:
    if rows is None:
        return np.zeros((0, 3), dtype=np.int64)
    array = np.asarray(rows, dtype=np.int64)
    if array.size == 0:
        return np.zeros((0, 3), dtype=np.int64)
    _require(
        array.ndim == 2 and array.shape[1] == 3,
        f"{context} must be an (n, 3) array of triples, got shape {array.shape}",
    )
    _require(int(array.min()) >= 0, f"{context} must not contain negative ids")
    return np.ascontiguousarray(array, dtype=np.int64)


class ShardWriter:
    """Accumulate ``(n, 3)`` row chunks and flush fixed-size ``.npy`` shards.

    Rows are buffered until ``shard_size`` is reached; each flush writes one
    shard file and records ``{"file", "count"}`` for the manifest.  Peak
    memory is one shard regardless of how many rows pass through.
    """

    def __init__(self, directory: Path, split: str, shard_size: int) -> None:
        if shard_size <= 0:
            raise DatasetError(f"shard_size must be positive, got {shard_size}")
        self.directory = Path(directory)
        self.split = split
        self.shard_size = int(shard_size)
        self.shards: List[Dict[str, Any]] = []
        self.count = 0
        self._pending: List[np.ndarray] = []
        self._pending_rows = 0

    def append(self, rows: np.ndarray) -> None:
        """Add a chunk of ``(n, 3)`` int64 rows to the split."""
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return
        if rows.ndim != 2 or rows.shape[1] != 3:
            raise DatasetError(
                f"{self.split} shard writer expects (n, 3) rows, got shape {rows.shape}"
            )
        self._pending.append(rows)
        self._pending_rows += rows.shape[0]
        while self._pending_rows >= self.shard_size:
            self._flush(self.shard_size)

    def _flush(self, size: int) -> None:
        """Write one shard of exactly ``size`` rows from the pending buffer."""
        taken: List[np.ndarray] = []
        remaining = size
        while remaining > 0:
            chunk = self._pending[0]
            if chunk.shape[0] <= remaining:
                taken.append(chunk)
                remaining -= chunk.shape[0]
                self._pending.pop(0)
            else:
                taken.append(chunk[:remaining])
                self._pending[0] = chunk[remaining:]
                remaining = 0
        shard = taken[0] if len(taken) == 1 else np.concatenate(taken, axis=0)
        name = _shard_filename(self.split, len(self.shards))
        np.save(self.directory / name, np.ascontiguousarray(shard, dtype=np.int64))
        self.shards.append({"file": name, "count": int(shard.shape[0])})
        self.count += int(shard.shape[0])
        self._pending_rows -= int(shard.shape[0])

    def close(self) -> List[Dict[str, Any]]:
        """Flush the final partial shard and return the manifest entries."""
        if self._pending_rows:
            self._flush(self._pending_rows)
        return self.shards


class StoreWriter:
    """Create a sharded store incrementally, split by split.

    Usage::

        writer = StoreWriter(directory, name="fb15k", shard_size=65536)
        writer.append("train", rows)      # any number of times, any order
        store = writer.finalize(num_entities, num_relations)
    """

    def __init__(
        self,
        directory: PathLike,
        name: str = "store",
        shard_size: int = DEFAULT_SHARD_SIZE,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        # Overwriting an existing store: drop its manifest first so a crash
        # mid-write leaves an unopenable directory, never a torn store that
        # pairs the old manifest with half-overwritten shards — and clear
        # its shard files so a smaller rewrite leaves no orphans behind.
        (self.directory / MANIFEST_FILENAME).unlink(missing_ok=True)
        for split in _SPLITS:
            for stale in self.directory.glob(f"{split}-*.npy"):
                stale.unlink()
        delta_dir = self.directory / DELTA_DIRNAME
        if delta_dir.is_dir():
            for stale in delta_dir.glob("delta-*.npy"):
                stale.unlink()
            try:
                delta_dir.rmdir()
            except OSError:
                pass
        self.name = name
        self.shard_size = int(shard_size)
        self._writers: Dict[str, ShardWriter] = {
            split: ShardWriter(self.directory, split, self.shard_size) for split in _SPLITS
        }

    def append(self, split: str, rows: np.ndarray) -> None:
        if split not in self._writers:
            raise DatasetError(f"unknown split {split!r} (expected one of {', '.join(_SPLITS)})")
        self._writers[split].append(rows)

    def finalize(
        self,
        num_entities: int,
        num_relations: int,
        entity_names: Optional[Sequence[str]] = None,
        relation_names: Optional[Sequence[str]] = None,
        generation: int = 0,
    ) -> "TripleStore":
        """Write the manifest (and vocab file, when names exist); open the store.

        ``generation`` seeds the manifest's generation counter — 0 for a
        fresh ingest; compaction passes the source store's generation so
        the counter keeps monotonically recording applied deltas.
        """
        _require(num_entities > 0, "num_entities must be positive")
        _require(num_relations > 0, "num_relations must be positive")
        _require(generation >= 0, "generation must be non-negative")
        manifest = {
            "store_schema_version": STORE_SCHEMA_VERSION,
            "name": self.name,
            "num_entities": int(num_entities),
            "num_relations": int(num_relations),
            "shard_size": self.shard_size,
            "generation": int(generation),
            "deltas": [],
            "splits": {split: writer.close() for split, writer in self._writers.items()},
            "vocab_hash": vocab_hash(num_entities, num_relations, entity_names, relation_names),
        }
        (self.directory / MANIFEST_FILENAME).write_text(
            json.dumps(manifest, indent=2, sort_keys=True), encoding="utf-8"
        )
        if entity_names is not None or relation_names is not None:
            (self.directory / VOCAB_FILENAME).write_text(
                json.dumps(
                    {
                        "entity_names": list(entity_names) if entity_names else None,
                        "relation_names": list(relation_names) if relation_names else None,
                    },
                    indent=2,
                ),
                encoding="utf-8",
            )
        else:
            # A nameless store overwriting a named one must not inherit the
            # stale vocab file (wrong labels, or a length-mismatch crash).
            (self.directory / VOCAB_FILENAME).unlink(missing_ok=True)
        return TripleStore.open(self.directory)


@dataclass
class TripleStore:
    """An open sharded triple store (read side).

    Opening only reads the manifest and checks that every declared shard
    file exists; shard arrays are loaded lazily on access, memory-mapped
    when ``mmap`` is true (the default).
    """

    directory: Path
    manifest: Dict[str, Any]
    mmap: bool = True
    _cache: Dict[str, Any] = field(default_factory=dict, repr=False)

    @classmethod
    def open(cls, directory: PathLike, mmap: bool = True) -> "TripleStore":
        base = Path(directory)
        manifest_path = base / MANIFEST_FILENAME
        if not manifest_path.exists():
            raise DatasetError(
                f"{base} is not a triple store: missing {MANIFEST_FILENAME} "
                f"(create one with ingest_tsv / KnowledgeGraph.to_store)"
            )
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except ValueError as error:
            raise DatasetError(f"{manifest_path}: not valid JSON: {error}") from error
        _require(isinstance(manifest, dict), f"{manifest_path}: manifest is not a JSON object")
        version = manifest.get("store_schema_version")
        _require(
            isinstance(version, int),
            f"{manifest_path}: missing store_schema_version",
        )
        if version > STORE_SCHEMA_VERSION:
            raise DatasetError(
                f"{manifest_path}: store_schema_version {version} is newer than this "
                f"release supports ({STORE_SCHEMA_VERSION}); upgrade to load it"
            )
        for key in ("num_entities", "num_relations", "splits"):
            _require(key in manifest, f"{manifest_path}: missing {key!r}")
        splits = manifest["splits"]
        _require(
            isinstance(splits, dict),
            f"{manifest_path}: 'splits' must be an object mapping split names to shard lists",
        )
        for split, shards in splits.items():
            _require(
                isinstance(shards, list),
                f"{manifest_path}: splits[{split!r}] must be a list of shard entries",
            )
            for entry in shards:
                _require(
                    isinstance(entry, dict)
                    and isinstance(entry.get("file"), str)
                    and isinstance(entry.get("count"), int),
                    f"{manifest_path}: splits[{split!r}] entries must carry "
                    f"'file' and 'count' (got {entry!r})",
                )
                path = base / entry["file"]
                _require(
                    path.exists(),
                    f"{base}: incomplete store, shard {entry['file']} "
                    f"({split}) listed in the manifest is missing",
                )
        generation = manifest.get("generation", 0)
        _require(
            isinstance(generation, int) and generation >= 0,
            f"{manifest_path}: 'generation' must be a non-negative integer "
            f"(got {generation!r})",
        )
        deltas = manifest.get("deltas", [])
        _require(
            isinstance(deltas, list),
            f"{manifest_path}: 'deltas' must be a list of delta entries",
        )
        for entry in deltas:
            _require(
                isinstance(entry, dict)
                and isinstance(entry.get("file"), str)
                and isinstance(entry.get("count"), int)
                and entry.get("op") in _DELTA_OPS
                and entry.get("split") in splits
                and isinstance(entry.get("generation"), int),
                f"{manifest_path}: delta entries must carry 'file', 'count', "
                f"'op' ({'/'.join(_DELTA_OPS)}), 'split' and 'generation' "
                f"(got {entry!r})",
            )
            _require(
                (base / entry["file"]).exists(),
                f"{base}: incomplete store, delta shard {entry['file']} "
                f"listed in the manifest is missing",
            )
        return cls(directory=base, manifest=manifest, mmap=mmap)

    # ------------------------------------------------------------------
    # Manifest accessors
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return str(self.manifest.get("name", self.directory.name))

    @property
    def num_entities(self) -> int:
        return int(self.manifest["num_entities"])

    @property
    def num_relations(self) -> int:
        return int(self.manifest["num_relations"])

    @property
    def shard_size(self) -> int:
        return int(self.manifest.get("shard_size", DEFAULT_SHARD_SIZE))

    @property
    def vocab_hash(self) -> Optional[str]:
        value = self.manifest.get("vocab_hash")
        return str(value) if value is not None else None

    @property
    def generation(self) -> int:
        """Delta generation counter (0 for a fresh ingest or v1 manifest)."""
        return int(self.manifest.get("generation", 0))

    @property
    def schema_version(self) -> int:
        return int(self.manifest["store_schema_version"])

    def vocab_names(self) -> Dict[str, Optional[List[str]]]:
        """Entity/relation name lists from ``vocab.json`` (``None`` when nameless)."""
        names: Dict[str, Optional[List[str]]] = {"entity_names": None, "relation_names": None}
        vocab_path = self.directory / VOCAB_FILENAME
        if vocab_path.exists():
            try:
                vocab = json.loads(vocab_path.read_text(encoding="utf-8"))
            except ValueError as error:
                raise DatasetError(f"{vocab_path}: not valid JSON: {error}") from error
            for key in names:
                value = vocab.get(key)
                if value is not None:
                    names[key] = [str(item) for item in value]
        return names

    def _entries(self, split: str) -> List[Dict[str, Any]]:
        splits = self.manifest["splits"]
        if split not in splits:
            raise DatasetError(
                f"{self.directory}: unknown split {split!r} "
                f"(available: {', '.join(sorted(splits))})"
            )
        return splits[split]

    def num_shards(self, split: str) -> int:
        return len(self._entries(split))

    def shard_counts(self, split: str) -> List[int]:
        return [int(entry["count"]) for entry in self._entries(split)]

    def split_count(self, split: str) -> int:
        """Live triple count of a split: base shards plus pending deltas."""
        count = sum(self.shard_counts(split))
        for entry in self.delta_entries(split):
            if entry["op"] == "append":
                count += int(entry["count"])
            else:
                count -= int(entry["count"])
        return count

    # ------------------------------------------------------------------
    # Delta accessors
    # ------------------------------------------------------------------
    def delta_entries(self, split: Optional[str] = None) -> List[Dict[str, Any]]:
        """Manifest delta entries, in application order (oldest first)."""
        entries = self.manifest.get("deltas", [])
        if split is None:
            return list(entries)
        if split not in self.manifest["splits"]:
            raise DatasetError(
                f"{self.directory}: unknown split {split!r} "
                f"(available: {', '.join(sorted(self.manifest['splits']))})"
            )
        return [entry for entry in entries if entry["split"] == split]

    def has_deltas(self, split: Optional[str] = None) -> bool:
        return bool(self.delta_entries(split))

    def delta_array(self, entry: Dict[str, Any]) -> np.ndarray:
        """The ``(count, 3)`` int64 rows of one manifest delta entry."""
        cache_key = ("delta", entry["file"])
        if self.mmap:
            cached = self._cache.get(cache_key)
            if cached is not None:
                return cached
        path = self.directory / entry["file"]
        try:
            array = np.load(path, mmap_mode="r" if self.mmap else None)
        except (OSError, ValueError) as error:
            raise DatasetError(f"{path}: cannot read delta shard: {error}") from error
        if array.ndim != 2 or array.shape[1] != 3 or array.dtype != np.int64:
            raise DatasetError(
                f"{path}: delta shard must be an (n, 3) int64 array, "
                f"got shape {array.shape} dtype {array.dtype}"
            )
        if array.shape[0] != int(entry["count"]):
            raise DatasetError(
                f"{path}: delta shard holds {array.shape[0]} triples but the "
                f"manifest declares {entry['count']}"
            )
        if self.mmap:
            self._cache[cache_key] = array
        return array

    def delta_triples(self, split: str, op: str) -> np.ndarray:
        """All pending rows of one op (``append``/``delete``) for a split."""
        if op not in _DELTA_OPS:
            raise DatasetError(f"unknown delta op {op!r} (expected one of {_DELTA_OPS})")
        parts = [
            np.asarray(self.delta_array(entry))
            for entry in self.delta_entries(split)
            if entry["op"] == op
        ]
        if not parts:
            return np.zeros((0, 3), dtype=np.int64)
        return np.concatenate(parts, axis=0)

    def summary(self) -> Dict[str, int]:
        data = {"entities": self.num_entities, "relations": self.num_relations}
        for split in _SPLITS:
            data[split] = self.split_count(split)
            data[f"{split}_shards"] = self.num_shards(split)
        data["generation"] = self.generation
        data["pending_deltas"] = len(self.delta_entries())
        return data

    # ------------------------------------------------------------------
    # Shard access
    # ------------------------------------------------------------------
    def shard(self, split: str, index: int) -> np.ndarray:
        """The ``(count, 3)`` int64 array of one shard (memmap when enabled).

        Memory-mapped shard handles are cached on the store: a mapping is
        virtual memory, not resident data, and reopening every shard each
        epoch would pay header parsing and mmap setup per visit.  Without
        ``mmap`` the array is re-read on every call instead of pinned.
        """
        cache_key = ("shard", split, index)
        if self.mmap:
            cached = self._cache.get(cache_key)
            if cached is not None:
                return cached
        entry = self._entries(split)[index]
        path = self.directory / entry["file"]
        try:
            array = np.load(path, mmap_mode="r" if self.mmap else None)
        except (OSError, ValueError) as error:
            raise DatasetError(f"{path}: cannot read shard: {error}") from error
        if array.ndim != 2 or array.shape[1] != 3 or array.dtype != np.int64:
            raise DatasetError(
                f"{path}: shard must be an (n, 3) int64 array, "
                f"got shape {array.shape} dtype {array.dtype}"
            )
        if array.shape[0] != int(entry["count"]):
            raise DatasetError(
                f"{path}: shard holds {array.shape[0]} triples but the manifest "
                f"declares {entry['count']}"
            )
        if self.mmap:
            self._cache[cache_key] = array
        return array

    def iter_shards(self, split: str) -> Iterator[np.ndarray]:
        """Yield every shard of ``split`` in manifest order."""
        for index in range(self.num_shards(split)):
            yield self.shard(split, index)

    def load_split(self, split: str) -> np.ndarray:
        """Materialize one split as a single in-memory array (merged view).

        Pending deltas are applied in manifest order on top of the base
        shards: deleted rows are removed in place (original order kept),
        appended rows follow in generation order.  This is the
        parity-oracle path (and what :meth:`to_graph` uses); the
        bounded-memory way to consume a split is :class:`TripleStream` /
        :meth:`iter_shards`, both of which are base-only and therefore
        refuse / ignore pending deltas.
        """
        shards = [np.asarray(shard) for shard in self.iter_shards(split)]
        if not shards:
            merged = np.zeros((0, 3), dtype=np.int64)
        elif len(shards) == 1:
            merged = shards[0]
        else:
            merged = np.concatenate(shards, axis=0)
        deltas = self.delta_entries(split)
        if not deltas:
            return merged
        num_entities = self.num_entities
        num_relations = self.num_relations
        for entry in deltas:
            rows = np.asarray(self.delta_array(entry))
            if entry["op"] == "append":
                merged = np.concatenate([merged, rows], axis=0)
            else:
                keys = _triple_keys(merged, num_entities, num_relations, str(self.directory))
                drop = _triple_keys(rows, num_entities, num_relations, str(self.directory))
                merged = merged[~np.isin(keys, drop)]
        return merged

    def stream(self, split: str = "train", **kwargs: Any) -> "TripleStream":
        """A :class:`TripleStream` over one split (see its docstring)."""
        return TripleStream(self, split=split, **kwargs)

    # ------------------------------------------------------------------
    # Mutation: append/delete deltas
    # ------------------------------------------------------------------
    def apply_delta(
        self,
        split: str = "train",
        appends: Optional[np.ndarray] = None,
        deletes: Optional[np.ndarray] = None,
        new_entity_names: Optional[Sequence[str]] = None,
        new_relation_names: Optional[Sequence[str]] = None,
    ) -> int:
        """Commit one append/delete delta batch; returns the new generation.

        Within a generation, deletes are applied before appends (so a
        delta can atomically replace a triple).  Appended triples may
        introduce new entity/relation ids — ids must be dense (growing the
        vocabulary by exactly the new contiguous range), and a store with
        symbol names requires one new name per new id.  Deleting a triple
        that is not present, or re-appending one that is, raises
        :class:`DatasetError` naming the offending triple.

        The delta rows are written as ``deltas/delta-<gen>-<op>-<split>.npy``
        and the manifest is rewritten atomically (temp file + rename), so a
        crash mid-commit leaves the previous generation intact.
        """
        from repro.obs import get_registry

        entries = self._entries(split)
        del entries  # validates the split name
        append_rows = _as_delta_rows(appends, f"{self.directory}: appends")
        delete_rows = _as_delta_rows(deletes, f"{self.directory}: deletes")
        _require(
            append_rows.shape[0] > 0 or delete_rows.shape[0] > 0,
            f"{self.directory}: delta must carry at least one appended or deleted triple",
        )
        context = str(self.directory)
        merged = self.load_split(split)
        old_entities = self.num_entities
        old_relations = self.num_relations

        new_entities = old_entities
        new_relations = old_relations
        if append_rows.shape[0]:
            new_entities = max(old_entities, int(append_rows[:, [0, 2]].max()) + 1)
            new_relations = max(old_relations, int(append_rows[:, 1].max()) + 1)
        if delete_rows.shape[0]:
            _require(
                int(delete_rows[:, [0, 2]].max()) < old_entities
                and int(delete_rows[:, 1].max()) < old_relations,
                f"{context}: deletes reference ids outside the current vocabulary "
                f"({old_entities} entities, {old_relations} relations)",
            )

        names = self.vocab_names()
        updated_names: Dict[str, Optional[List[str]]] = dict(names)
        for key, grown, old_count, new_count in (
            ("entity_names", new_entity_names, old_entities, new_entities),
            ("relation_names", new_relation_names, old_relations, new_relations),
        ):
            growth = new_count - old_count
            existing = names[key]
            if grown is not None:
                _require(
                    existing is not None,
                    f"{context}: store has no {key}; cannot attach names to a delta",
                )
                _require(
                    len(grown) == growth,
                    f"{context}: delta grows the vocabulary by {growth} "
                    f"{key.split('_')[0]} ids but {len(grown)} names were given",
                )
                clashes = set(grown) & set(existing or ())
                _require(
                    not clashes,
                    f"{context}: new {key} already present: {sorted(clashes)[:3]}",
                )
                updated_names[key] = list(existing or []) + [str(item) for item in grown]
            elif growth and existing is not None:
                raise DatasetError(
                    f"{context}: delta introduces {growth} new "
                    f"{key.split('_')[0]} ids but no names were given "
                    f"(store has {key}; pass new_{key})"
                )

        merged_keys = _triple_keys(merged, new_entities, new_relations, context)
        if delete_rows.shape[0]:
            delete_keys = _triple_keys(delete_rows, new_entities, new_relations, context)
            _require(
                np.unique(delete_keys).size == delete_keys.size,
                f"{context}: delta deletes the same triple twice",
            )
            present = np.isin(delete_keys, merged_keys)
            if not present.all():
                h, r, t = (int(v) for v in delete_rows[int(np.argmin(present))])
                raise DatasetError(
                    f"{context}: cannot delete triple ({h}, {r}, {t}) from "
                    f"{split!r}: not present in the current generation"
                )
        else:
            delete_keys = np.zeros(0, dtype=np.int64)
        if append_rows.shape[0]:
            append_keys = _triple_keys(append_rows, new_entities, new_relations, context)
            _require(
                np.unique(append_keys).size == append_keys.size,
                f"{context}: delta appends the same triple twice",
            )
            duplicate = np.isin(append_keys, merged_keys) & ~np.isin(append_keys, delete_keys)
            if duplicate.any():
                h, r, t = (int(v) for v in append_rows[int(np.argmax(duplicate))])
                raise DatasetError(
                    f"{context}: cannot append triple ({h}, {r}, {t}) to "
                    f"{split!r}: already present in the current generation"
                )

        generation = self.generation + 1
        delta_dir = self.directory / DELTA_DIRNAME
        delta_dir.mkdir(exist_ok=True)
        new_entries: List[Dict[str, Any]] = []
        for op, rows in (("delete", delete_rows), ("append", append_rows)):
            if not rows.shape[0]:
                continue
            filename = _delta_filename(generation, op, split)
            np.save(delta_dir / filename, rows)
            new_entries.append(
                {
                    "file": f"{DELTA_DIRNAME}/{filename}",
                    "count": int(rows.shape[0]),
                    "op": op,
                    "split": split,
                    "generation": generation,
                }
            )

        manifest = dict(self.manifest)
        manifest["store_schema_version"] = STORE_SCHEMA_VERSION
        manifest["generation"] = generation
        manifest["deltas"] = list(manifest.get("deltas", [])) + new_entries
        manifest["num_entities"] = int(new_entities)
        manifest["num_relations"] = int(new_relations)
        manifest["vocab_hash"] = vocab_hash(
            new_entities,
            new_relations,
            updated_names["entity_names"],
            updated_names["relation_names"],
        )
        if updated_names != names:
            (self.directory / VOCAB_FILENAME).write_text(
                json.dumps(updated_names, indent=2), encoding="utf-8"
            )
        manifest_path = self.directory / MANIFEST_FILENAME
        tmp_path = self.directory / (MANIFEST_FILENAME + ".tmp")
        tmp_path.write_text(json.dumps(manifest, indent=2, sort_keys=True), encoding="utf-8")
        os.replace(tmp_path, manifest_path)
        self.manifest = manifest
        self._cache.clear()

        registry = get_registry()
        deltas_counter = registry.counter(
            "repro_live_deltas_applied_total",
            "Triples applied through TripleStore.apply_delta",
            labels={"op": "append"},
        )
        if append_rows.shape[0]:
            deltas_counter.inc(int(append_rows.shape[0]))
        if delete_rows.shape[0]:
            registry.counter(
                "repro_live_deltas_applied_total",
                "Triples applied through TripleStore.apply_delta",
                labels={"op": "delete"},
            ).inc(int(delete_rows.shape[0]))
        registry.gauge(
            "repro_live_generation", "Current TripleStore delta generation"
        ).set(generation)
        return generation

    # ------------------------------------------------------------------
    # Derived structures
    # ------------------------------------------------------------------
    def to_graph(self) -> KnowledgeGraph:
        """Materialize the store (merged view) as an in-memory :class:`KnowledgeGraph`."""
        names = self.vocab_names()
        splits = {}
        for split in _SPLITS:
            array = self.load_split(split)
            # Freeze before handing over: KnowledgeGraph passes read-only
            # int64 arrays through zero-copy instead of re-copying them.
            array.flags.writeable = False
            splits[split] = array
        return KnowledgeGraph(
            num_entities=self.num_entities,
            num_relations=self.num_relations,
            train=splits["train"],
            valid=splits["valid"],
            test=splits["test"],
            entity_names=tuple(names["entity_names"]) if names["entity_names"] else None,
            relation_names=tuple(names["relation_names"]) if names["relation_names"] else None,
            name=self.name,
        )

    def filter_index(self, splits: Sequence[str] = _SPLITS) -> FilterIndex:
        """Shard-aware :class:`FilterIndex` over the chosen splits, memoized."""
        key = ("filter_index", tuple(splits))
        cached = self._cache.get(key)
        if cached is None:
            cached = build_filter_index(self, splits=splits)
            self._cache[key] = cached
        return cached


def write_store(
    graph: KnowledgeGraph,
    directory: PathLike,
    shard_size: int = DEFAULT_SHARD_SIZE,
    name: Optional[str] = None,
) -> TripleStore:
    """Write an in-memory graph out as a sharded store (``KnowledgeGraph.to_store``)."""
    writer = StoreWriter(directory, name=name if name is not None else graph.name,
                         shard_size=shard_size)
    for split in _SPLITS:
        writer.append(split, graph.split(split))
    return writer.finalize(
        graph.num_entities,
        graph.num_relations,
        entity_names=graph.entity_names,
        relation_names=graph.relation_names,
    )


# ----------------------------------------------------------------------
# Streaming mini-batch iteration
# ----------------------------------------------------------------------
#: Bit-reversal swap levels for 16- and 32-bit index widths.
_REVERSE_LEVELS_16 = ((1, 0x5555), (2, 0x3333), (4, 0x0F0F), (8, 0x00FF))
_REVERSE_LEVELS_32 = (
    (1, 0x55555555),
    (2, 0x33333333),
    (4, 0x0F0F0F0F),
    (8, 0x00FF00FF),
    (16, 0x0000FFFF),
)


def _epoch_shard_permutation(count: int, rng: np.random.Generator) -> np.ndarray:
    """One shard's epoch permutation, computed algebraically in vector ops.

    A uniform Fisher-Yates shuffle per shard per epoch would dominate the
    whole epoch's wall time (it is the seed pattern's main cost too), and
    caching per-shard shuffles would retain O(split/3) bytes of indices —
    exactly what a streaming iterator must not do.  Instead the epoch
    permutation is a zero-storage mixing bijection over the next power of
    two ``m >= count``: affine (odd stride, so coprime with ``m``; mod
    ``m`` falls out of the unsigned wrap-around) -> bit reversal -> a
    second affine, cycle-walked down to ``count`` by dropping values
    ``>= count``.  Each stage is a bijection, so the result is a genuine
    permutation covering every index exactly once; the four per-epoch
    draws (stride1, offset1, stride2, offset2 — in that order, the oracle
    replays the same stream) vary batch composition between epochs.  All
    arithmetic runs in-place on width-matched unsigned indices (uint16 for
    the default 64k shards), so the whole permutation costs a handful of
    vector passes.  The mixing is not a uniform random permutation, but
    consecutive indices are torn apart by the bit reversal and both
    affines, which is what mini-batch SGD needs from a shuffle.
    """
    if count <= 1:
        return np.zeros(count, dtype=np.int64)
    if count > (1 << 31):  # pragma: no cover - 48 GiB+ shards
        return rng.permutation(count)
    m = 1 << (count - 1).bit_length()
    bits = m.bit_length() - 1
    stride1 = int(rng.integers(0, 1 << 14)) * 2 + 1
    offset1 = int(rng.integers(0, m))
    stride2 = int(rng.integers(0, 1 << 14)) * 2 + 1
    offset2 = int(rng.integers(0, m))
    if bits <= 16:
        dtype, width, levels = np.uint16, 16, _REVERSE_LEVELS_16
    else:
        dtype, width, levels = np.uint32, 32, _REVERSE_LEVELS_32
    mask = dtype(m - 1)
    v = np.arange(m, dtype=dtype)
    v *= dtype(stride1)  # unsigned wrap-around == mod 2^width; & mask == mod m
    v += dtype(offset1)
    v &= mask
    scratch = np.empty_like(v)
    for shift, level_mask in levels:
        np.right_shift(v, shift, out=scratch)
        scratch &= dtype(level_mask)
        v &= dtype(level_mask)
        v <<= shift
        v |= scratch
    v >>= width - bits
    v *= dtype(stride2)
    v += dtype(offset2)
    v &= mask
    if m != count:
        v = v[v < count]
    return v


class TripleStream:
    """Deterministic shuffled mini-batches over one store split.

    Shuffling is two-level.  Each epoch, ``np.random.default_rng((seed,
    epoch))`` draws a shard visiting order, then a zero-storage mixing
    permutation inside every visited shard (see
    :func:`_epoch_shard_permutation`).  The full split is never
    materialized: peak memory is one permuted shard plus a partial-batch
    carry.  Batches that would straddle a shard boundary are completed
    across it, so every triple appears exactly once per epoch and batch
    boundaries are bit-identical to the in-memory oracle
    :func:`stream_epoch_reference`.

    Compared to the seed in-memory pattern (global permutation + per-batch
    fancy indexing), the shard-local gather (``np.take`` of a ~1.5 MB
    shard) is cache-friendly, the per-epoch permutation is a few vector
    ops instead of a full Fisher-Yates shuffle, and batches are emitted as
    views — the pipeline benchmark measures the resulting epoch-throughput
    speedup.
    """

    def __init__(
        self,
        store: TripleStore,
        split: str = "train",
        batch_size: int = 512,
        seed: int = 0,
        drop_last: bool = False,
    ) -> None:
        if batch_size <= 0:
            raise DatasetError(f"batch_size must be positive, got {batch_size}")
        if store.has_deltas(split):
            raise DatasetError(
                f"{store.directory}: split {split!r} has "
                f"{len(store.delta_entries(split))} pending delta(s); "
                f"streaming only covers base shards — compact first "
                f"(repro.live.compaction.compact_store) or fine-tune on the "
                f"delta batch (repro.live.finetune)"
            )
        self.store = store
        self.split = split
        self.batch_size = int(batch_size)
        self.seed = int(seed)
        self.drop_last = bool(drop_last)
        self._counts = store.shard_counts(split)

    @property
    def num_triples(self) -> int:
        return sum(self._counts)

    @property
    def num_entities(self) -> int:
        return self.store.num_entities

    @property
    def num_relations(self) -> int:
        return self.store.num_relations

    def num_batches(self) -> int:
        full, rest = divmod(self.num_triples, self.batch_size)
        return full + (1 if rest and not self.drop_last else 0)

    def epoch(self, epoch: int = 0) -> Iterator[np.ndarray]:
        """Yield the shuffled mini-batches of one epoch (0-indexed)."""
        rng = np.random.default_rng((self.seed, int(epoch)))
        batch_size = self.batch_size
        carry: Optional[np.ndarray] = None
        for shard_index in rng.permutation(len(self._counts)):
            shard_index = int(shard_index)
            # The base-class view strips the np.memmap subclass: ``take``
            # then returns (and every batch slices) plain ndarrays, instead
            # of paying memmap.__getitem__ bookkeeping per batch.
            shard = np.asarray(self.store.shard(self.split, shard_index))
            permutation = _epoch_shard_permutation(shard.shape[0], rng)
            data = np.take(shard, permutation, axis=0)
            begin = 0
            if carry is not None and carry.shape[0]:
                # Complete the straddling batch without concatenating the
                # carry onto the whole shard (that would double peak memory).
                needed = batch_size - carry.shape[0]
                if data.shape[0] < needed:
                    carry = np.concatenate([carry, data], axis=0)
                    continue
                yield np.concatenate([carry, data[:needed]], axis=0)
                carry = None
                begin = needed
            limit = begin + ((data.shape[0] - begin) // batch_size) * batch_size
            for start in range(begin, limit, batch_size):
                yield data[start : start + batch_size]
            # Copy the sub-batch tail so the carry does not pin the whole
            # permuted shard in memory until the next one arrives.
            carry = data[limit:].copy() if limit < data.shape[0] else None
        if carry is not None and carry.shape[0] and not self.drop_last:
            yield carry

    def __iter__(self) -> Iterator[np.ndarray]:
        return self.epoch(0)

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return (
            f"TripleStream({self.store.name!r}:{self.split}, "
            f"{self.num_triples} triples, batch_size={self.batch_size}, "
            f"seed={self.seed})"
        )


def stream_epoch_reference(
    triples: np.ndarray,
    shard_counts: Sequence[int],
    batch_size: int,
    seed: int,
    epoch: int = 0,
    drop_last: bool = False,
) -> List[np.ndarray]:
    """In-memory oracle for :meth:`TripleStream.epoch` — bit-identical batches.

    Given the materialized split and the manifest's shard counts, replays
    the same RNG stream (the epoch's shard visiting order, then the
    per-shard mixing permutation draws) over global indices and slices the
    concatenated order into batches.  Used by the tests and the pipeline
    benchmark to assert exact batch-level parity between streaming and
    in-memory iteration.
    """
    triples = np.asarray(triples)
    counts = [int(count) for count in shard_counts]
    if sum(counts) != triples.shape[0]:
        raise DatasetError(
            f"shard_counts sum to {sum(counts)} but the split holds {triples.shape[0]} triples"
        )
    offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    rng = np.random.default_rng((int(seed), int(epoch)))
    pieces: List[np.ndarray] = []
    for shard_index in rng.permutation(len(counts)):
        shard_index = int(shard_index)
        pieces.append(
            offsets[shard_index] + _epoch_shard_permutation(counts[shard_index], rng)
        )
    if pieces:
        order = np.concatenate(pieces)
    else:
        order = np.zeros(0, dtype=np.int64)
    batches: List[np.ndarray] = []
    limit = order.shape[0] if not drop_last else (order.shape[0] // batch_size) * batch_size
    for begin in range(0, limit, batch_size):
        batches.append(triples[order[begin : begin + batch_size]])
    return batches


# ----------------------------------------------------------------------
# Shard-aware derived state
# ----------------------------------------------------------------------
def build_filter_index(store: TripleStore, splits: Sequence[str] = _SPLITS) -> FilterIndex:
    """Build a :class:`FilterIndex` from a store without materializing splits.

    Streams every shard once, accumulating only the query codes and answer
    entities (the index's own O(n) state) instead of a concatenated
    ``(n, 3)`` array of all splits.  Produces exactly the same index as
    ``FilterIndex.build(concatenated_triples, num_relations)``.  A split
    with pending deltas is materialized as its merged view instead (the
    deltas must be folded into the pair lists, not streamed shard-wise).
    """
    num_relations = store.num_relations
    tail_codes: List[np.ndarray] = []
    tail_entities: List[np.ndarray] = []
    head_codes: List[np.ndarray] = []
    head_entities: List[np.ndarray] = []
    for split in splits:
        if store.has_deltas(split):
            sources: Any = [store.load_split(split)]
        else:
            sources = store.iter_shards(split)
        for shard in sources:
            heads = np.asarray(shard[:, 0])
            relations = np.asarray(shard[:, 1])
            tails = np.asarray(shard[:, 2])
            tail_codes.append(heads * num_relations + relations)
            tail_entities.append(tails)
            head_codes.append(tails * num_relations + relations)
            head_entities.append(heads)

    def _concat(parts: List[np.ndarray]) -> np.ndarray:
        if not parts:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(parts)

    return FilterIndex(
        num_relations=num_relations,
        tails=_DirectionIndex.build(_concat(tail_codes), _concat(tail_entities)),
        heads=_DirectionIndex.build(_concat(head_codes), _concat(head_entities)),
    )


def entities_by_relation(
    store: TripleStore, splits: Sequence[str] = ("train",)
) -> Dict[int, np.ndarray]:
    """Per-relation observed-entity pools, streamed shard by shard.

    The same pools :class:`repro.kge.negative_sampling.BernoulliNegativeSampler`
    computes from an in-memory graph: for every relation, the sorted unique
    entities observed as head or tail in the chosen splits; relations with
    no triples fall back to the full entity range.  Splits with pending
    deltas contribute their merged view.
    """
    collected: Dict[int, List[np.ndarray]] = {}
    for split in splits:
        if store.has_deltas(split):
            sources: Any = [store.load_split(split)]
        else:
            sources = store.iter_shards(split)
        for shard in sources:
            shard = np.asarray(shard)
            if not shard.shape[0]:
                continue
            # Group the shard's rows by relation in one sort instead of one
            # full-shard mask per relation (FB15k has 1,345 of them).
            order = np.argsort(shard[:, 1], kind="stable")
            sorted_relations = shard[order, 1]
            boundaries = np.flatnonzero(np.diff(sorted_relations)) + 1
            for group in np.split(order, boundaries):
                rows = shard[group]
                collected.setdefault(int(rows[0, 1]), []).append(
                    np.concatenate([rows[:, 0], rows[:, 2]])
                )
    pools: Dict[int, np.ndarray] = {}
    for relation in range(store.num_relations):
        parts = collected.get(relation)
        if parts:
            pools[relation] = np.unique(np.concatenate(parts))
        else:
            pools[relation] = np.arange(store.num_entities)
    return pools


# ----------------------------------------------------------------------
# Chunked TSV ingestion
# ----------------------------------------------------------------------
#: Symbol-id ceiling for the packed duplicate check (three 21-bit fields).
_DUP_CHECK_ID_LIMIT = 1 << 21

#: An empty or whitespace-only line (terminated — the unfinished chunk
#: remainder never matches); its presence routes a chunk to the careful
#: parser, which skips such lines exactly like the in-memory oracle.
_BLANK_LINE_RE = re.compile(rb"(?m)^[ \t\r]*\n")


def _locate_duplicate_line(path: Path, chunk_bytes: int) -> None:
    """Diagnostic rescan after the vectorized pass detected a duplicate.

    The happy path never pays per-line set bookkeeping; only once a
    duplicate is *known* to exist does this slow pass rerun the file to
    name the exact line.  Always raises.
    """
    seen: set = set()
    line_number = 0

    def check(line: bytes) -> None:
        nonlocal line_number
        line_number += 1
        if line[-1:] == b"\r":
            line = line[:-1]
        if not line.strip():
            return
        if line in seen:
            head, relation, tail = line.split(b"\t")
            raise DatasetError(
                f"{path}:{line_number}: duplicate triple "
                f"{head.decode('utf-8', 'replace')!r} "
                f"{relation.decode('utf-8', 'replace')!r} "
                f"{tail.decode('utf-8', 'replace')!r} "
                f"(pass check_duplicates=False / --allow-duplicates to accept "
                f"repeated triples)"
            )
        seen.add(line)

    with path.open("rb") as handle:
        remainder = b""
        while True:
            chunk = handle.read(chunk_bytes)
            if not chunk:
                break
            chunk = remainder + chunk
            lines = chunk.split(b"\n")
            remainder = lines.pop()
            for line in lines:
                check(line)
        if remainder:
            check(remainder)
    raise DatasetError(f"{path}: duplicate triple detected but not located on rescan")


def _parse_tsv_split(
    path: Path,
    entity_to_id: Dict[bytes, int],
    relation_to_id: Dict[bytes, int],
    grow: bool,
    writer: ShardWriter,
    check_duplicates: bool,
    chunk_bytes: int,
) -> int:
    """Parse one split file in binary chunks straight into shard files.

    Vocabulary growth order (head, relation, tail per line) matches
    :func:`repro.datasets.io.load_tsv_dataset` exactly, so the resulting ids
    are bit-identical to the in-memory loader's.  Returns the triple count.

    The hot path is vectorized: a chunk's lines are flat-split into one
    field list (one C-level ``split``), resolved through ``map(dict.get)``
    and checked for integrity with a per-line length equation (field
    lengths + two tabs must reconstruct each line's length exactly — a
    mismatch anywhere proves a malformed line).  Any irregularity (blank
    lines, ``\\r`` endings, wrong field counts) falls back to the careful
    per-line parser for that chunk, which raises the precise
    file-and-line error.  Duplicate detection packs each triple into one
    int64 and runs a single vectorized uniqueness check at the end of the
    file, rescanning slowly only to localize an error that is already
    certain.
    """
    if not path.exists():
        raise DatasetError(f"{path}: split file does not exist")
    from array import array

    line_number = 0
    total = 0
    ids = array("q")
    code_chunks: List[np.ndarray] = []
    entity_get = entity_to_id.get
    relation_get = relation_to_id.get

    def emit(rows: np.ndarray) -> None:
        if check_duplicates:
            code_chunks.append((rows[:, 0] << 42) | (rows[:, 1] << 21) | rows[:, 2])
        writer.append(rows)

    def flush_rows() -> None:
        nonlocal ids
        if ids:
            emit(np.frombuffer(ids, dtype=np.int64).reshape(-1, 3))
            ids = array("q")

    def process_fast(lines: List[bytes]) -> bool:
        """Vectorized chunk parse; returns False when the chunk needs care."""
        nonlocal line_number, total
        count = len(lines)
        joined = b"\t".join(lines)
        if b"\r" in joined:
            return False
        fields = joined.split(b"\t")
        if len(fields) != 3 * count:
            return False
        field_lengths = np.fromiter(map(len, fields), np.int64, len(fields))
        line_lengths = np.fromiter(map(len, lines), np.int64, count)
        reconstructed = field_lengths[0::3] + field_lengths[1::3] + field_lengths[2::3] + 2
        if not np.array_equal(reconstructed, line_lengths):
            return False
        heads = fields[0::3]
        relations = fields[1::3]
        tails = fields[2::3]
        # Grow the vocabularies from the ordered-unique symbol sequences.
        # ``dict.fromkeys`` dedups at C speed preserving first appearance;
        # the interleaved head/tail list reproduces the oracle's
        # line-by-line (head, then tail) entity numbering exactly, and the
        # two tables are independent so their relative order is free.
        interleaved: List[bytes] = [b""] * (2 * count)
        interleaved[0::2] = heads
        interleaved[1::2] = tails
        new_entities = [s for s in dict.fromkeys(interleaved) if s not in entity_to_id]
        new_relations = [s for s in dict.fromkeys(relations) if s not in relation_to_id]
        if (new_entities or new_relations) and not grow:
            return False  # the careful pass raises the exact file:line error
        for symbol in new_entities:
            entity_to_id[symbol] = len(entity_to_id)
        for symbol in new_relations:
            relation_to_id[symbol] = len(relation_to_id)
        rows = np.empty((count, 3), dtype=np.int64)
        rows[:, 0] = list(map(entity_to_id.__getitem__, heads))
        rows[:, 1] = list(map(relation_to_id.__getitem__, relations))
        rows[:, 2] = list(map(entity_to_id.__getitem__, tails))
        emit(rows)
        line_number += count
        total += count
        return True

    def process(lines: List[bytes]) -> None:
        """Careful per-line fallback: exact errors, blank lines, CR endings."""
        nonlocal line_number, total
        append = ids.append
        for line in lines:
            line_number += 1
            if line[-1:] == b"\r":  # text-mode universal newlines would eat this
                line = line[:-1]
            if not line.strip():
                continue
            parts = line.split(b"\t")
            if len(parts) != 3:
                raise DatasetError(
                    f"{path}:{line_number}: expected 3 tab-separated fields, "
                    f"got {len(parts)}"
                )
            head, relation, tail = parts
            head_id = entity_get(head)
            if head_id is None:
                if not grow:
                    _raise_unseen(path, line_number, head)
                head_id = len(entity_to_id)
                entity_to_id[head] = head_id
            relation_id = relation_get(relation)
            if relation_id is None:
                if not grow:
                    _raise_unseen(path, line_number, relation)
                relation_id = len(relation_to_id)
                relation_to_id[relation] = relation_id
            tail_id = entity_get(tail)
            if tail_id is None:
                if not grow:
                    _raise_unseen(path, line_number, tail)
                tail_id = len(entity_to_id)
                entity_to_id[tail] = tail_id
            append(head_id)
            append(relation_id)
            append(tail_id)
            total += 1

    with path.open("rb") as handle:
        remainder = b""
        while True:
            chunk = handle.read(chunk_bytes)
            if not chunk:
                break
            chunk = remainder + chunk
            lines = chunk.split(b"\n")
            remainder = lines.pop()
            # Blank / whitespace-only lines must be *skipped* (the oracle
            # strips them); the flat field parse would read them as
            # whitespace symbols, so such chunks take the careful path.
            body = chunk[: len(chunk) - len(remainder)]
            if lines and not _BLANK_LINE_RE.search(body) and process_fast(lines):
                continue
            if lines:
                process(lines)
                flush_rows()
        if remainder:
            process([remainder])
    flush_rows()

    if check_duplicates and code_chunks:
        if max(len(entity_to_id), len(relation_to_id)) >= _DUP_CHECK_ID_LIMIT:
            raise DatasetError(
                f"{path}: duplicate checking supports up to {_DUP_CHECK_ID_LIMIT} "
                f"symbols; pass check_duplicates=False for larger vocabularies"
            )
        codes = code_chunks[0] if len(code_chunks) == 1 else np.concatenate(code_chunks)
        if np.unique(codes).size != codes.size:
            _locate_duplicate_line(path, chunk_bytes)
    return total


def _raise_unseen(path: Path, line_number: int, symbol: bytes) -> None:
    raise DatasetError(
        f"{path}:{line_number}: symbol {symbol.decode('utf-8', 'replace')!r} "
        f"not present in training vocabulary"
    )


def ingest_tsv(
    directory: PathLike,
    store_dir: PathLike,
    name: Optional[str] = None,
    shard_size: int = DEFAULT_SHARD_SIZE,
    train_file: str = "train.txt",
    valid_file: str = "valid.txt",
    test_file: str = "test.txt",
    allow_unseen_in_eval: bool = True,
    check_duplicates: bool = True,
    chunk_bytes: int = 4 << 20,
) -> TripleStore:
    """Convert a TSV benchmark directory into a sharded store.

    The chunked binary parser produces vocabularies and index triples
    bit-identical to :func:`repro.datasets.io.load_tsv_dataset` (the parity
    oracle) while reading files in ``chunk_bytes`` blocks and writing shards
    as it goes — no split is ever held in memory.  Malformed lines,
    duplicate triples (within a split, when ``check_duplicates``) and
    symbols missing from the training vocabulary (when
    ``allow_unseen_in_eval`` is false) raise
    :class:`~repro.datasets.errors.DatasetError` naming file and line.
    """
    base = Path(directory)
    label = name if name is not None else base.name or "tsv-dataset"
    writer = StoreWriter(store_dir, name=label, shard_size=shard_size)
    entity_to_id: Dict[bytes, int] = {}
    relation_to_id: Dict[bytes, int] = {}
    counts = {}
    for split, file_name, grow in (
        ("train", train_file, True),
        ("valid", valid_file, allow_unseen_in_eval),
        ("test", test_file, allow_unseen_in_eval),
    ):
        counts[split] = _parse_tsv_split(
            base / file_name,
            entity_to_id,
            relation_to_id,
            grow,
            writer._writers[split],
            check_duplicates,
            chunk_bytes,
        )
    if counts["train"] == 0:
        raise DatasetError(f"{base / train_file}: training split is empty")
    entity_names = [symbol.decode("utf-8") for symbol in entity_to_id]
    relation_names = [symbol.decode("utf-8") for symbol in relation_to_id]
    return writer.finalize(
        len(entity_to_id),
        len(relation_to_id),
        entity_names=entity_names,
        relation_names=relation_names,
    )
