"""The :class:`KnowledgeGraph` container.

A knowledge graph here is a set of integer-indexed triplets partitioned into
train / valid / test splits, together with the entity and relation
vocabularies.  The container also exposes the lookup structures needed for
*filtered* link-prediction evaluation: for every (head, relation) pair the set
of all known tails across every split, and symmetrically for (relation, tail).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

Triple = Tuple[int, int, int]


@dataclass(frozen=True)
class _DirectionIndex:
    """CSR-style map from an integer query code to its known entity ids.

    ``codes`` is sorted and unique; the answers of ``codes[i]`` are
    ``entities[indptr[i]:indptr[i + 1]]``.  Built once per graph and reused
    by every filtered evaluation, replacing the per-query set lookups of
    :meth:`KnowledgeGraph.known_tails` / :meth:`KnowledgeGraph.known_heads`.
    """

    codes: np.ndarray
    indptr: np.ndarray
    entities: np.ndarray

    @classmethod
    def build(cls, query_codes: np.ndarray, entities: np.ndarray) -> "_DirectionIndex":
        # Canonical (code, entity) lexicographic order: the entities of one
        # code group are sorted too, so the index built from any input order
        # of the same pairs is array-identical.  That canonical form is what
        # lets repro.live.index_delta apply append/delete deltas by sorted
        # merge and assert exact equality against a from-scratch build.
        # Consumers only ever treat a group as a set (masking known
        # positives), so the within-group order is free to choose.
        order = np.lexsort((entities, query_codes))
        sorted_codes = query_codes[order]
        sorted_entities = entities[order]
        unique_codes, starts = np.unique(sorted_codes, return_index=True)
        indptr = np.concatenate([starts, [sorted_codes.size]]).astype(np.int64)
        return cls(codes=unique_codes, indptr=indptr, entities=sorted_entities)

    def gather(self, query_codes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Flat ``(row, entity)`` pairs listing every known answer per query.

        For a batch of ``n`` query codes, returns two equally long arrays:
        ``rows[k]`` is the batch row the pair belongs to and ``entities[k]``
        one of its known answers.  Queries with no known answers simply
        contribute no pairs.  Fully vectorized: O(n log u + total answers).
        """
        query_codes = np.asarray(query_codes, dtype=np.int64)
        empty = np.zeros(0, dtype=np.int64)
        if self.codes.size == 0 or query_codes.size == 0:
            return empty, empty
        positions = np.searchsorted(self.codes, query_codes)
        clipped = np.minimum(positions, self.codes.size - 1)
        found = (positions < self.codes.size) & (self.codes[clipped] == query_codes)
        starts = np.where(found, self.indptr[clipped], 0)
        counts = np.where(found, self.indptr[clipped + 1] - self.indptr[clipped], 0)
        total = int(counts.sum())
        if total == 0:
            return empty, empty
        rows = np.repeat(np.arange(query_codes.size, dtype=np.int64), counts)
        # Turn per-row (start, count) ranges into one flat gather index.
        offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
        flat = np.arange(total, dtype=np.int64) - np.repeat(offsets, counts) + np.repeat(
            starts, counts
        )
        return rows, self.entities[flat]


@dataclass(frozen=True)
class FilterIndex:
    """Precomputed filter masks for both ranking directions.

    Tail queries are keyed by ``head * num_relations + relation`` and head
    queries by ``tail * num_relations + relation``; both cover all splits,
    exactly like the dict-of-sets accessors they accelerate.
    """

    num_relations: int
    tails: _DirectionIndex
    heads: _DirectionIndex

    @classmethod
    def build(cls, triples: np.ndarray, num_relations: int) -> "FilterIndex":
        heads, relations, tails = triples[:, 0], triples[:, 1], triples[:, 2]
        return cls(
            num_relations=num_relations,
            tails=_DirectionIndex.build(heads * num_relations + relations, tails),
            heads=_DirectionIndex.build(tails * num_relations + relations, heads),
        )

    def known_tail_pairs(
        self, heads: np.ndarray, relations: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Flat (row, tail) pairs of known tails for a (head, relation) batch."""
        return self.tails.gather(
            np.asarray(heads, dtype=np.int64) * self.num_relations
            + np.asarray(relations, dtype=np.int64)
        )

    def known_head_pairs(
        self, tails: np.ndarray, relations: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Flat (row, head) pairs of known heads for a (tail, relation) batch."""
        return self.heads.gather(
            np.asarray(tails, dtype=np.int64) * self.num_relations
            + np.asarray(relations, dtype=np.int64)
        )


def _as_triple_array(triples: Iterable[Sequence[int]]) -> np.ndarray:
    """Normalize any iterable of (h, r, t) into an ``(n, 3) int64`` array.

    A *read-only* int64 ndarray (a memmap from a sharded store, or a split
    the store loader froze) passes through as a zero-copy view —
    listifying a million-row memmap would defeat memory-mapped storage.
    Writable inputs are copied, as they always were: the graph is
    immutable, so it must not alias an array the caller may mutate.
    """
    if isinstance(triples, np.ndarray):
        if triples.dtype == np.int64 and not triples.flags.writeable:
            array = np.asarray(triples)
        else:
            array = np.array(triples, dtype=np.int64)
    else:
        array = np.asarray(list(triples), dtype=np.int64)
    if array.size == 0:
        return array.reshape(0, 3)
    if array.ndim != 2 or array.shape[1] != 3:
        raise ValueError("triples must be an iterable of (head, relation, tail)")
    return array


@dataclass(frozen=True)
class KnowledgeGraph:
    """An immutable, integer-indexed knowledge graph with splits.

    Parameters
    ----------
    num_entities, num_relations:
        Sizes of the entity and relation vocabularies.
    train, valid, test:
        ``(n, 3)`` arrays of (head, relation, tail) indices.
    entity_names, relation_names:
        Optional human-readable labels, index-aligned with the vocabularies.
    name:
        A label for reporting (e.g. ``"wn18-mini"``).
    """

    num_entities: int
    num_relations: int
    train: np.ndarray
    valid: np.ndarray
    test: np.ndarray
    entity_names: Optional[Tuple[str, ...]] = None
    relation_names: Optional[Tuple[str, ...]] = None
    name: str = "kg"

    def __post_init__(self) -> None:
        for split_name in ("train", "valid", "test"):
            array = _as_triple_array(getattr(self, split_name))
            object.__setattr__(self, split_name, array)
            self._validate_split(array, split_name)
        if self.num_entities <= 0:
            raise ValueError("num_entities must be positive")
        if self.num_relations <= 0:
            raise ValueError("num_relations must be positive")
        if self.entity_names is not None and len(self.entity_names) != self.num_entities:
            raise ValueError("entity_names length must equal num_entities")
        if self.relation_names is not None and len(self.relation_names) != self.num_relations:
            raise ValueError("relation_names length must equal num_relations")

    def _validate_split(self, array: np.ndarray, split_name: str) -> None:
        if array.size == 0:
            return
        heads, relations, tails = array[:, 0], array[:, 1], array[:, 2]
        if heads.min() < 0 or heads.max() >= self.num_entities:
            raise ValueError(f"{split_name}: head index out of range")
        if tails.min() < 0 or tails.max() >= self.num_entities:
            raise ValueError(f"{split_name}: tail index out of range")
        if relations.min() < 0 or relations.max() >= self.num_relations:
            raise ValueError(f"{split_name}: relation index out of range")

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_train(self) -> int:
        return int(self.train.shape[0])

    @property
    def num_valid(self) -> int:
        return int(self.valid.shape[0])

    @property
    def num_test(self) -> int:
        return int(self.test.shape[0])

    def split(self, name: str) -> np.ndarray:
        """Return the triples of the named split (``train``/``valid``/``test``)."""
        if name not in ("train", "valid", "test"):
            raise KeyError(f"unknown split: {name!r}")
        return getattr(self, name)

    def all_triples(self) -> np.ndarray:
        """All triples across every split, concatenated."""
        return np.concatenate([self.train, self.valid, self.test], axis=0)

    def triple_set(self, splits: Sequence[str] = ("train", "valid", "test")) -> Set[Triple]:
        """Return the selected splits as a Python set of tuples."""
        result: Set[Triple] = set()
        for split_name in splits:
            for h, r, t in self.split(split_name):
                result.add((int(h), int(r), int(t)))
        return result

    # ------------------------------------------------------------------
    # Filtered-evaluation lookup structures
    # ------------------------------------------------------------------
    def known_tails(self) -> Dict[Tuple[int, int], Set[int]]:
        """Map (head, relation) -> set of all known tails across splits.

        Used by the filtered ranking protocol: when ranking the true tail of
        a test triplet, every *other* known tail is removed from the
        candidate list so the model is not penalised for ranking other true
        answers highly.
        """
        mapping: Dict[Tuple[int, int], Set[int]] = {}
        for h, r, t in self.all_triples():
            mapping.setdefault((int(h), int(r)), set()).add(int(t))
        return mapping

    def known_heads(self) -> Dict[Tuple[int, int], Set[int]]:
        """Map (relation, tail) -> set of all known heads across splits."""
        mapping: Dict[Tuple[int, int], Set[int]] = {}
        for h, r, t in self.all_triples():
            mapping.setdefault((int(r), int(t)), set()).add(int(h))
        return mapping

    def filter_index(self) -> FilterIndex:
        """The CSR-style filtered-evaluation index, built once and memoized.

        The graph is immutable, so the index is computed lazily on first use
        and cached on the instance (bypassing the frozen-dataclass guard).
        """
        cached = self.__dict__.get("_filter_index")
        if cached is None:
            cached = FilterIndex.build(self.all_triples(), self.num_relations)
            object.__setattr__(self, "_filter_index", cached)
        return cached

    def relation_triples(self, relation: int, splits: Sequence[str] = ("train",)) -> np.ndarray:
        """All triples using ``relation`` within the chosen splits."""
        parts: List[np.ndarray] = []
        for split_name in splits:
            array = self.split(split_name)
            if array.size:
                parts.append(array[array[:, 1] == relation])
        if not parts:
            return np.zeros((0, 3), dtype=np.int64)
        return np.concatenate(parts, axis=0)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def with_splits(
        self,
        train: np.ndarray,
        valid: np.ndarray,
        test: np.ndarray,
        name: Optional[str] = None,
    ) -> "KnowledgeGraph":
        """Return a copy of this graph with different splits."""
        return KnowledgeGraph(
            num_entities=self.num_entities,
            num_relations=self.num_relations,
            train=train,
            valid=valid,
            test=test,
            entity_names=self.entity_names,
            relation_names=self.relation_names,
            name=name if name is not None else self.name,
        )

    def subsample(self, fraction: float, seed: Optional[int] = 0) -> "KnowledgeGraph":
        """Return a graph whose training split keeps ``fraction`` of triples.

        Validation and test splits are left untouched; this is a convenience
        for quick experiments and ablations.
        """
        if not 0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        rng = np.random.default_rng(seed)
        keep = max(1, int(round(fraction * self.num_train)))
        index = rng.choice(self.num_train, size=keep, replace=False)
        return self.with_splits(self.train[np.sort(index)], self.valid, self.test)

    @classmethod
    def from_triples(
        cls,
        triples: Iterable[Sequence[int]],
        num_entities: Optional[int] = None,
        num_relations: Optional[int] = None,
        valid_fraction: float = 0.1,
        test_fraction: float = 0.1,
        seed: Optional[int] = 0,
        name: str = "kg",
        entity_names: Optional[Sequence[str]] = None,
        relation_names: Optional[Sequence[str]] = None,
    ) -> "KnowledgeGraph":
        """Build a graph from a flat triple list, splitting randomly.

        The split is *entity-safe*: every entity and relation appearing in
        valid/test also appears in train, otherwise the embedding of an
        unseen entity would be untrained and the evaluation meaningless.
        """
        array = _as_triple_array(triples)
        if array.shape[0] == 0:
            raise ValueError("cannot build a KnowledgeGraph from zero triples")
        if not 0 <= valid_fraction < 1 or not 0 <= test_fraction < 1:
            raise ValueError("split fractions must be in [0, 1)")
        if valid_fraction + test_fraction >= 1:
            raise ValueError("valid_fraction + test_fraction must be < 1")
        inferred_entities = int(max(array[:, 0].max(), array[:, 2].max())) + 1
        inferred_relations = int(array[:, 1].max()) + 1
        num_entities = num_entities or inferred_entities
        num_relations = num_relations or inferred_relations

        rng = np.random.default_rng(seed)
        order = rng.permutation(array.shape[0])
        array = array[order]

        n_valid = int(round(valid_fraction * array.shape[0]))
        n_test = int(round(test_fraction * array.shape[0]))
        train, valid, test = _entity_safe_split(array, n_valid, n_test)

        return cls(
            num_entities=num_entities,
            num_relations=num_relations,
            train=train,
            valid=valid,
            test=test,
            entity_names=tuple(entity_names) if entity_names is not None else None,
            relation_names=tuple(relation_names) if relation_names is not None else None,
            name=name,
        )

    # ------------------------------------------------------------------
    # Sharded-store interop (see repro.datasets.pipeline)
    # ------------------------------------------------------------------
    @classmethod
    def from_store(cls, directory, mmap: bool = True) -> "KnowledgeGraph":
        """Load a graph from a sharded triple store directory.

        Splits are materialized in memory (this is the exact parity path
        next to which the store exists); use
        :class:`~repro.datasets.pipeline.TripleStream` for bounded-memory
        iteration over large splits.  ``mmap`` controls how the shards are
        read while materializing.
        """
        from repro.datasets.pipeline import TripleStore

        return TripleStore.open(directory, mmap=mmap).to_graph()

    def to_store(self, directory, shard_size: Optional[int] = None):
        """Write this graph as a sharded on-disk store; returns the store."""
        from repro.datasets.pipeline import DEFAULT_SHARD_SIZE, write_store

        return write_store(
            self,
            directory,
            shard_size=shard_size if shard_size is not None else DEFAULT_SHARD_SIZE,
        )

    def summary(self) -> Mapping[str, int]:
        """Return the headline counts shown in Table III."""
        return {
            "entities": self.num_entities,
            "relations": self.num_relations,
            "train": self.num_train,
            "valid": self.num_valid,
            "test": self.num_test,
        }

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return (
            f"KnowledgeGraph(name={self.name!r}, entities={self.num_entities}, "
            f"relations={self.num_relations}, train={self.num_train}, "
            f"valid={self.num_valid}, test={self.num_test})"
        )


def _entity_safe_split(
    array: np.ndarray, n_valid: int, n_test: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split shuffled triples so that eval splits only use seen entities/relations.

    Walk the shuffled triples once: a triple may go to valid/test only if its
    head, tail and relation have already been assigned to train at least once.
    This greedy pass keeps the split sizes close to the request while
    guaranteeing coverage.
    """
    seen_entities: Set[int] = set()
    seen_relations: Set[int] = set()
    train_rows: List[np.ndarray] = []
    eval_rows: List[np.ndarray] = []

    # First pass guarantees every entity/relation appears in train.
    for row in array:
        h, r, t = int(row[0]), int(row[1]), int(row[2])
        if h in seen_entities and t in seen_entities and r in seen_relations:
            eval_rows.append(row)
        else:
            train_rows.append(row)
            seen_entities.add(h)
            seen_entities.add(t)
            seen_relations.add(r)

    eval_array = np.asarray(eval_rows, dtype=np.int64).reshape(-1, 3)
    n_valid = min(n_valid, eval_array.shape[0])
    n_test = min(n_test, max(eval_array.shape[0] - n_valid, 0))
    valid = eval_array[:n_valid]
    test = eval_array[n_valid : n_valid + n_test]
    leftover = eval_array[n_valid + n_test :]
    train = np.concatenate(
        [np.asarray(train_rows, dtype=np.int64).reshape(-1, 3), leftover], axis=0
    )
    return train, valid, test
