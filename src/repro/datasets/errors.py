"""Dataset-layer error types.

:class:`DatasetError` is the single descriptive failure type raised by the
TSV loaders (:mod:`repro.datasets.io`), the sharded pipeline
(:mod:`repro.datasets.pipeline`) and the benchmark registry
(:mod:`repro.datasets.registry`).  It subclasses :class:`ValueError` so
pre-existing ``except ValueError`` call sites keep working.
"""

from __future__ import annotations


class DatasetError(ValueError):
    """A dataset input is malformed, inconsistent, or missing.

    Messages always name the offending file (and line, when there is one),
    so a bad TSV dump or a half-written store directory is diagnosable from
    the error alone.
    """


class UnknownBenchmarkError(DatasetError, KeyError):
    """An unregistered benchmark name was requested.

    Subclasses both :class:`DatasetError` and :class:`KeyError`: the
    registry historically raised ``KeyError``, and callers catching either
    still work.  The message lists ``available_benchmarks()``.
    """

    # KeyError.__str__ would repr() the message, double-quoting every
    # user-facing print of this error.
    __str__ = BaseException.__str__


class UnseenSymbolError(DatasetError, KeyError):
    """An eval-split symbol is missing from the training vocabulary.

    Raised by the TSV loaders when ``allow_unseen_in_eval`` is off.  Dual
    inheritance for the same compatibility reason as
    :class:`UnknownBenchmarkError` — this condition historically raised
    ``KeyError``.
    """

    __str__ = BaseException.__str__
