"""Relation-pattern statistics (the counting rule behind Table III).

The paper classifies every relation of a benchmark into one of four pattern
classes using simple counting thresholds (Sec. V-A1):

* **symmetric** — for relation ``r`` with ``n_r`` positive triples, the number
  of reversed triples ``(t, r, h)`` that are also positive exceeds
  ``0.9 * n_r``;
* **anti-symmetric** — no reversed triple is positive *and* the head and tail
  entity sets overlap by at least ``0.1 * n_r`` (so head/tail have the same
  type and reversal would have been possible);
* **inverse** — there exists another relation ``r'`` such that at least
  ``0.9 * n_r`` of the reversed triples ``(t, r', h)`` are positive;
* **general asymmetric** — everything else.

These statistics both characterize the datasets and drive the synthetic
generators: a miniature benchmark is "faithful" if its classified pattern mix
matches the profile of the original benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Mapping, Sequence, Set, Tuple

import numpy as np

from repro.datasets.knowledge_graph import KnowledgeGraph


class RelationPattern(str, Enum):
    """The four relation-pattern classes used throughout the paper."""

    SYMMETRIC = "symmetric"
    ANTI_SYMMETRIC = "anti_symmetric"
    INVERSE = "inverse"
    GENERAL = "general"


@dataclass
class DatasetStatistics:
    """Headline counts plus the per-pattern relation tally (Table III row)."""

    name: str
    num_entities: int
    num_relations: int
    num_train: int
    num_valid: int
    num_test: int
    pattern_counts: Dict[RelationPattern, int] = field(default_factory=dict)
    relation_patterns: Dict[int, RelationPattern] = field(default_factory=dict)
    inverse_pairs: List[Tuple[int, int]] = field(default_factory=list)

    def count(self, pattern: RelationPattern) -> int:
        return self.pattern_counts.get(pattern, 0)

    def as_row(self) -> Dict[str, int]:
        """Return the Table III row for this dataset."""
        return {
            "entities": self.num_entities,
            "relations": self.num_relations,
            "train": self.num_train,
            "valid": self.num_valid,
            "test": self.num_test,
            "symmetric": self.count(RelationPattern.SYMMETRIC),
            "anti_symmetric": self.count(RelationPattern.ANTI_SYMMETRIC),
            "inverse": self.count(RelationPattern.INVERSE),
            "general": self.count(RelationPattern.GENERAL),
        }


def _group_by_relation(triples: np.ndarray) -> Dict[int, Set[Tuple[int, int]]]:
    """Map each relation to its set of (head, tail) pairs."""
    grouped: Dict[int, Set[Tuple[int, int]]] = {}
    for h, r, t in triples:
        grouped.setdefault(int(r), set()).add((int(h), int(t)))
    return grouped


def classify_relations(
    triples: np.ndarray,
    num_relations: int,
    symmetric_threshold: float = 0.9,
    overlap_threshold: float = 0.1,
) -> Tuple[Dict[int, RelationPattern], List[Tuple[int, int]]]:
    """Classify every relation following the Table III counting rule.

    Parameters
    ----------
    triples:
        ``(n, 3)`` array of positive triples (normally the union of splits).
    num_relations:
        Size of the relation vocabulary; relations with no triple are
        classified as ``GENERAL``.
    symmetric_threshold, overlap_threshold:
        The 0.9 / 0.1 thresholds from the paper.

    Returns
    -------
    (patterns, inverse_pairs):
        ``patterns`` maps relation index -> :class:`RelationPattern`;
        ``inverse_pairs`` lists the (r, r') pairs detected as inverses
        (each unordered pair reported once, with r < r').
    """
    grouped = _group_by_relation(np.asarray(triples, dtype=np.int64).reshape(-1, 3))
    patterns: Dict[int, RelationPattern] = {}
    inverse_pairs: List[Tuple[int, int]] = []
    inverse_members: Set[int] = set()

    # Pass 1: detect inverse pairs (needs pairwise comparison).
    relations = sorted(grouped)
    for i, r in enumerate(relations):
        pairs_r = grouped[r]
        reversed_r = {(t, h) for h, t in pairs_r}
        n_r = len(pairs_r)
        for r_other in relations[i + 1 :]:
            pairs_other = grouped[r_other]
            n_other = len(pairs_other)
            overlap_r = len(reversed_r & pairs_other)
            # r' is an inverse of r if most of r's reversed pairs exist under r'.
            if n_r > 0 and overlap_r >= symmetric_threshold * n_r:
                inverse_pairs.append((r, r_other))
                inverse_members.add(r)
                inverse_members.add(r_other)
                continue
            reversed_other = {(t, h) for h, t in pairs_other}
            overlap_other = len(reversed_other & pairs_r)
            if n_other > 0 and overlap_other >= symmetric_threshold * n_other:
                inverse_pairs.append((r, r_other))
                inverse_members.add(r)
                inverse_members.add(r_other)

    # Pass 2: symmetric / anti-symmetric / general.
    for r in range(num_relations):
        pairs_r = grouped.get(r, set())
        if not pairs_r:
            patterns[r] = RelationPattern.GENERAL
            continue
        n_r = len(pairs_r)
        reversed_count = sum(1 for h, t in pairs_r if (t, h) in pairs_r)
        heads = {h for h, _ in pairs_r}
        tails = {t for _, t in pairs_r}
        joint = len(heads & tails)

        if reversed_count >= symmetric_threshold * n_r:
            patterns[r] = RelationPattern.SYMMETRIC
        elif r in inverse_members:
            patterns[r] = RelationPattern.INVERSE
        elif reversed_count == 0 and joint >= overlap_threshold * n_r:
            patterns[r] = RelationPattern.ANTI_SYMMETRIC
        else:
            patterns[r] = RelationPattern.GENERAL
    return patterns, inverse_pairs


def dataset_statistics(
    graph: KnowledgeGraph,
    splits: Sequence[str] = ("train", "valid", "test"),
    symmetric_threshold: float = 0.9,
    overlap_threshold: float = 0.1,
) -> DatasetStatistics:
    """Compute the Table III row for ``graph``."""
    triples = np.concatenate([graph.split(s) for s in splits], axis=0)
    patterns, inverse_pairs = classify_relations(
        triples,
        graph.num_relations,
        symmetric_threshold=symmetric_threshold,
        overlap_threshold=overlap_threshold,
    )
    counts: Dict[RelationPattern, int] = {pattern: 0 for pattern in RelationPattern}
    for pattern in patterns.values():
        counts[pattern] += 1
    return DatasetStatistics(
        name=graph.name,
        num_entities=graph.num_entities,
        num_relations=graph.num_relations,
        num_train=graph.num_train,
        num_valid=graph.num_valid,
        num_test=graph.num_test,
        pattern_counts=counts,
        relation_patterns=patterns,
        inverse_pairs=inverse_pairs,
    )


def pattern_fractions(statistics: DatasetStatistics) -> Mapping[str, float]:
    """Return the fraction of relations in each pattern class."""
    total = max(statistics.num_relations, 1)
    return {
        pattern.value: statistics.count(pattern) / total for pattern in RelationPattern
    }
