"""Knowledge-graph data substrate.

This subpackage provides:

* :class:`~repro.datasets.knowledge_graph.KnowledgeGraph` — an immutable
  container of (head, relation, tail) index triplets with train/valid/test
  splits and fast filtered-ranking lookup structures.
* Synthetic generators that produce miniature knowledge graphs with a
  controlled mix of relation patterns (symmetric, anti-symmetric, inverse,
  general asymmetric), standing in for WN18 / FB15k / WN18RR / FB15k-237 /
  YAGO3-10 whose full dumps cannot be trained on in this environment.
* Relation-pattern statistics reproducing the counting rule of Table III.
* A registry mapping benchmark names to generator profiles.
* TSV loaders/writers compatible with the common ``head\trelation\ttail``
  benchmark format, so real dumps can be substituted in when available.
* A streaming sharded pipeline (:mod:`repro.datasets.pipeline`):
  fixed-size ``.npy`` triple shards + JSON manifest, a chunked TSV→shard
  ingester, and :class:`~repro.datasets.pipeline.TripleStream`
  deterministic shuffled mini-batches for million-triple workloads.
"""

from repro.datasets.errors import DatasetError, UnknownBenchmarkError, UnseenSymbolError
from repro.datasets.knowledge_graph import FilterIndex, KnowledgeGraph, Triple
from repro.datasets.generators import (
    GeneratorProfile,
    generate_knowledge_graph,
    generate_relation_triples,
    generate_streaming_store,
)
from repro.datasets.pipeline import (
    DEFAULT_SHARD_SIZE,
    DELTA_DIRNAME,
    STORE_SCHEMA_VERSION,
    StoreWriter,
    TripleStore,
    TripleStream,
    build_filter_index,
    entities_by_relation,
    ingest_tsv,
    stream_epoch_reference,
    write_store,
)
from repro.datasets.registry import (
    BENCHMARK_PROFILES,
    available_benchmarks,
    load_benchmark,
)
from repro.datasets.statistics import (
    DatasetStatistics,
    RelationPattern,
    classify_relations,
    dataset_statistics,
)
from repro.datasets.io import load_tsv_dataset, write_tsv_dataset

__all__ = [
    "DatasetError",
    "UnknownBenchmarkError",
    "UnseenSymbolError",
    "FilterIndex",
    "KnowledgeGraph",
    "Triple",
    "GeneratorProfile",
    "generate_knowledge_graph",
    "generate_relation_triples",
    "generate_streaming_store",
    "DEFAULT_SHARD_SIZE",
    "DELTA_DIRNAME",
    "STORE_SCHEMA_VERSION",
    "StoreWriter",
    "TripleStore",
    "TripleStream",
    "build_filter_index",
    "entities_by_relation",
    "ingest_tsv",
    "stream_epoch_reference",
    "write_store",
    "BENCHMARK_PROFILES",
    "available_benchmarks",
    "load_benchmark",
    "DatasetStatistics",
    "RelationPattern",
    "classify_relations",
    "dataset_statistics",
    "load_tsv_dataset",
    "write_tsv_dataset",
]
