"""TSV loaders and writers for knowledge-graph benchmark dumps.

The standard benchmark distribution format is three files (``train.txt``,
``valid.txt``, ``test.txt``), each line holding ``head<TAB>relation<TAB>tail``
with string identifiers.  These helpers build the entity/relation vocabularies
from the training split (plus any new symbols in valid/test) and return a
:class:`~repro.datasets.knowledge_graph.KnowledgeGraph`, so a user with the
real WN18/FB15k dumps can drop them in place of the synthetic miniatures.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

import numpy as np

from repro.datasets.errors import DatasetError, UnseenSymbolError
from repro.datasets.knowledge_graph import KnowledgeGraph

PathLike = Union[str, Path]


def _read_string_triples(path: Path, check_duplicates: bool = True) -> List[Tuple[str, str, str]]:
    """Read one split file of string triples, skipping blank lines.

    Malformed lines (not exactly three tab-separated fields) and — when
    ``check_duplicates`` — duplicate triples within the file raise
    :class:`DatasetError` naming file and line, so a broken dump is
    diagnosable from the message alone.
    """
    triples: List[Tuple[str, str, str]] = []
    seen: Set[Tuple[str, str, str]] = set()
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line.strip():
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                raise DatasetError(
                    f"{path}:{line_number}: expected 3 tab-separated fields, got {len(parts)}"
                )
            triple = (parts[0], parts[1], parts[2])
            if check_duplicates:
                if triple in seen:
                    raise DatasetError(
                        f"{path}:{line_number}: duplicate triple "
                        f"{parts[0]!r} {parts[1]!r} {parts[2]!r} "
                        f"(pass check_duplicates=False to accept repeated triples)"
                    )
                seen.add(triple)
            triples.append(triple)
    return triples


def _index_triples(
    triples: Iterable[Tuple[str, str, str]],
    entity_to_id: Dict[str, int],
    relation_to_id: Dict[str, int],
    grow: bool,
    source: Optional[Path] = None,
) -> np.ndarray:
    """Convert string triples to index triples, optionally growing the vocab."""
    rows: List[Tuple[int, int, int]] = []
    for head, relation, tail in triples:
        for symbol, table in ((head, entity_to_id), (relation, relation_to_id), (tail, entity_to_id)):
            if symbol not in table:
                if not grow:
                    where = f" ({source})" if source is not None else ""
                    raise UnseenSymbolError(
                        f"symbol {symbol!r} not present in training vocabulary{where}"
                    )
                table[symbol] = len(table)
        rows.append((entity_to_id[head], relation_to_id[relation], entity_to_id[tail]))
    return np.asarray(rows, dtype=np.int64).reshape(-1, 3)


def load_tsv_dataset(
    directory: PathLike,
    name: str = "tsv-dataset",
    train_file: str = "train.txt",
    valid_file: str = "valid.txt",
    test_file: str = "test.txt",
    allow_unseen_in_eval: bool = True,
    check_duplicates: bool = True,
) -> KnowledgeGraph:
    """Load a benchmark from a directory of TSV split files.

    Parameters
    ----------
    directory:
        Directory holding the three split files.
    allow_unseen_in_eval:
        When ``True`` (default), symbols that only appear in valid/test are
        added to the vocabulary; when ``False`` such symbols raise ``KeyError``.
    check_duplicates:
        When ``True`` (default), a triple repeated within a split file
        raises :class:`~repro.datasets.errors.DatasetError` naming file and
        line; pass ``False`` for dumps that legitimately repeat triples
        (mirrors ``ingest_tsv(check_duplicates=False)``).
    """
    base = Path(directory)
    train_strings = _read_string_triples(base / train_file, check_duplicates)
    valid_strings = _read_string_triples(base / valid_file, check_duplicates)
    test_strings = _read_string_triples(base / test_file, check_duplicates)
    if not train_strings:
        raise DatasetError(f"training split in {base} is empty")

    entity_to_id: Dict[str, int] = {}
    relation_to_id: Dict[str, int] = {}
    train = _index_triples(train_strings, entity_to_id, relation_to_id, grow=True,
                           source=base / train_file)
    valid = _index_triples(valid_strings, entity_to_id, relation_to_id,
                           grow=allow_unseen_in_eval, source=base / valid_file)
    test = _index_triples(test_strings, entity_to_id, relation_to_id,
                          grow=allow_unseen_in_eval, source=base / test_file)

    entity_names = tuple(sorted(entity_to_id, key=entity_to_id.get))
    relation_names = tuple(sorted(relation_to_id, key=relation_to_id.get))
    return KnowledgeGraph(
        num_entities=len(entity_to_id),
        num_relations=len(relation_to_id),
        train=train,
        valid=valid,
        test=test,
        entity_names=entity_names,
        relation_names=relation_names,
        name=name,
    )


def write_tsv_dataset(graph: KnowledgeGraph, directory: PathLike) -> Path:
    """Write ``graph`` out in the standard three-file TSV format.

    Entity/relation labels are used when available, otherwise indices are
    written as ``e<i>`` / ``r<j>``.  Returns the output directory.
    """
    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)

    def entity_label(index: int) -> str:
        if graph.entity_names is not None:
            return graph.entity_names[index]
        return f"e{index}"

    def relation_label(index: int) -> str:
        if graph.relation_names is not None:
            return graph.relation_names[index]
        return f"r{index}"

    for split_name, file_name in (("train", "train.txt"), ("valid", "valid.txt"), ("test", "test.txt")):
        lines = [
            f"{entity_label(int(h))}\t{relation_label(int(r))}\t{entity_label(int(t))}"
            for h, r, t in graph.split(split_name)
        ]
        (base / file_name).write_text("\n".join(lines) + ("\n" if lines else ""), encoding="utf-8")
    return base
