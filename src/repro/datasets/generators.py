"""Synthetic knowledge-graph generators with controlled relation patterns.

The original AutoSF evaluation uses WN18, FB15k, WN18RR, FB15k-237 and
YAGO3-10.  Training on the full dumps is not possible in this CPU-only
environment, so this module generates *miniature* knowledge graphs whose
relation-pattern mix (symmetric / anti-symmetric / inverse / general
asymmetric, the quantity Table III reports) is controlled explicitly.

The generative model is a latent-type (cluster) model:

* entities are partitioned into ``num_clusters`` types;
* a **symmetric** relation links entities inside selected type pairs in both
  directions — every generated edge ``(h, t)`` is accompanied by ``(t, h)``;
* an **anti-symmetric** relation imposes a strict order inside a type and
  only links lower-ranked to higher-ranked entities, so the reverse edge
  never occurs while heads and tails share the same type (the paper's
  "joint set" requirement);
* an **inverse** pair is a general-asymmetric relation plus a second relation
  containing exactly the reversed pairs;
* a **general asymmetric** relation links one type to a *different* type, so
  reverses are absent and head/tail sets are disjoint.

Because entities of a type behave interchangeably, the generated graphs are
learnable by embedding models: a model that can represent the relevant
pattern class (e.g. anti-symmetry) has a measurable advantage, which is
exactly the signal the AutoSF search consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.datasets.knowledge_graph import KnowledgeGraph
from repro.datasets.statistics import RelationPattern
from repro.utils.rng import RngLike, ensure_rng

if TYPE_CHECKING:  # pragma: no cover - import for type checkers only
    from repro.datasets.pipeline import TripleStore


@dataclass
class GeneratorProfile:
    """Full description of one synthetic benchmark.

    Attributes
    ----------
    name:
        Dataset label (e.g. ``"wn18-mini"``).
    num_entities:
        Entity vocabulary size.
    num_clusters:
        Number of latent entity types.
    relation_counts:
        How many relations of each pattern to generate.  Inverse relations
        are counted individually, so a value of 4 yields two inverse pairs;
        odd values are rounded down to the nearest pair.
    triples_per_relation:
        Target number of (directed) triples per relation before the
        symmetric completion doubles symmetric relations.
    valid_fraction / test_fraction:
        Split sizes handed to :meth:`KnowledgeGraph.from_triples`.
    """

    name: str
    num_entities: int = 500
    num_clusters: int = 8
    relation_counts: Dict[RelationPattern, int] = field(
        default_factory=lambda: {
            RelationPattern.SYMMETRIC: 2,
            RelationPattern.ANTI_SYMMETRIC: 2,
            RelationPattern.INVERSE: 2,
            RelationPattern.GENERAL: 4,
        }
    )
    triples_per_relation: int = 300
    valid_fraction: float = 0.1
    test_fraction: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_entities < self.num_clusters:
            raise ValueError("need at least one entity per cluster")
        if self.num_clusters < 2:
            raise ValueError("need at least two clusters")
        if self.triples_per_relation <= 0:
            raise ValueError("triples_per_relation must be positive")
        total_relations = sum(self.relation_counts.values())
        if total_relations <= 0:
            raise ValueError("profile must request at least one relation")

    @property
    def num_relations(self) -> int:
        """Number of relations the profile will generate."""
        counts = dict(self.relation_counts)
        inverse = counts.get(RelationPattern.INVERSE, 0)
        counts[RelationPattern.INVERSE] = (inverse // 2) * 2
        return sum(counts.values())


def _assign_clusters(num_entities: int, num_clusters: int, rng: np.random.Generator) -> List[np.ndarray]:
    """Partition entity indices into roughly equal clusters."""
    order = rng.permutation(num_entities)
    return [np.sort(chunk) for chunk in np.array_split(order, num_clusters)]


def _sample_pairs_between(
    heads: np.ndarray,
    tails: np.ndarray,
    count: int,
    rng: np.random.Generator,
    forbid_self_loops: bool = True,
) -> Set[Tuple[int, int]]:
    """Sample up to ``count`` distinct (h, t) pairs from heads x tails."""
    pairs: Set[Tuple[int, int]] = set()
    max_possible = len(heads) * len(tails)
    target = min(count, max_possible)
    attempts = 0
    while len(pairs) < target and attempts < 50 * target + 100:
        h = int(rng.choice(heads))
        t = int(rng.choice(tails))
        attempts += 1
        if forbid_self_loops and h == t:
            continue
        pairs.add((h, t))
    return pairs


def generate_relation_triples(
    pattern: RelationPattern,
    clusters: Sequence[np.ndarray],
    num_triples: int,
    rng: RngLike = None,
) -> Tuple[List[Tuple[int, int]], Optional[List[Tuple[int, int]]]]:
    """Generate the (head, tail) pairs for one relation of the given pattern.

    Returns
    -------
    (pairs, inverse_pairs):
        ``pairs`` is the pair list of the relation itself; ``inverse_pairs``
        is only populated for :attr:`RelationPattern.INVERSE` and contains
        the reversed pairs intended for the partner relation.
    """
    gen = ensure_rng(rng)
    cluster_ids = list(range(len(clusters)))

    if pattern is RelationPattern.SYMMETRIC:
        cluster = clusters[int(gen.choice(cluster_ids))]
        base = _sample_pairs_between(cluster, cluster, num_triples // 2, gen)
        pairs: Set[Tuple[int, int]] = set()
        for h, t in base:
            pairs.add((h, t))
            pairs.add((t, h))
        return sorted(pairs), None

    if pattern is RelationPattern.ANTI_SYMMETRIC:
        cluster = clusters[int(gen.choice(cluster_ids))]
        # A strict order inside the cluster: only lower rank -> higher rank.
        ranked = gen.permutation(cluster)
        rank_of = {int(e): i for i, e in enumerate(ranked)}
        raw = _sample_pairs_between(cluster, cluster, num_triples, gen)
        pairs = set()
        for h, t in raw:
            if rank_of[h] < rank_of[t]:
                pairs.add((h, t))
            elif rank_of[t] < rank_of[h]:
                pairs.add((t, h))
        return sorted(pairs), None

    if pattern is RelationPattern.GENERAL:
        source, target = gen.choice(cluster_ids, size=2, replace=False)
        pairs = _sample_pairs_between(clusters[int(source)], clusters[int(target)], num_triples, gen)
        return sorted(pairs), None

    if pattern is RelationPattern.INVERSE:
        source, target = gen.choice(cluster_ids, size=2, replace=False)
        pairs = _sample_pairs_between(clusters[int(source)], clusters[int(target)], num_triples, gen)
        forward = sorted(pairs)
        backward = sorted((t, h) for h, t in forward)
        return forward, backward

    raise ValueError(f"unknown relation pattern: {pattern!r}")


def generate_knowledge_graph(profile: GeneratorProfile, seed: Optional[int] = None) -> KnowledgeGraph:
    """Generate a full synthetic :class:`KnowledgeGraph` from ``profile``.

    The relation index order is: symmetric relations first, then
    anti-symmetric, then inverse pairs (forward immediately followed by its
    partner), then general asymmetric relations.
    """
    rng = ensure_rng(profile.seed if seed is None else seed)
    clusters = _assign_clusters(profile.num_entities, profile.num_clusters, rng)

    triples: List[Tuple[int, int, int]] = []
    relation_names: List[str] = []
    relation_index = 0

    def add_relation(pairs: Sequence[Tuple[int, int]], label: str) -> None:
        nonlocal relation_index
        for h, t in pairs:
            triples.append((h, relation_index, t))
        relation_names.append(f"{label}_{relation_index}")
        relation_index += 1

    counts = profile.relation_counts
    for _ in range(counts.get(RelationPattern.SYMMETRIC, 0)):
        pairs, _unused = generate_relation_triples(
            RelationPattern.SYMMETRIC, clusters, profile.triples_per_relation, rng
        )
        add_relation(pairs, "sym")
    for _ in range(counts.get(RelationPattern.ANTI_SYMMETRIC, 0)):
        pairs, _unused = generate_relation_triples(
            RelationPattern.ANTI_SYMMETRIC, clusters, profile.triples_per_relation, rng
        )
        add_relation(pairs, "antisym")
    for _ in range(counts.get(RelationPattern.INVERSE, 0) // 2):
        forward, backward = generate_relation_triples(
            RelationPattern.INVERSE, clusters, profile.triples_per_relation, rng
        )
        add_relation(forward, "inv_fwd")
        add_relation(backward or [], "inv_bwd")
    for _ in range(counts.get(RelationPattern.GENERAL, 0)):
        pairs, _unused = generate_relation_triples(
            RelationPattern.GENERAL, clusters, profile.triples_per_relation, rng
        )
        add_relation(pairs, "gen")

    if not triples:
        raise ValueError("profile generated no triples")

    return KnowledgeGraph.from_triples(
        triples,
        num_entities=profile.num_entities,
        num_relations=relation_index,
        valid_fraction=profile.valid_fraction,
        test_fraction=profile.test_fraction,
        seed=int(rng.integers(0, 2**31 - 1)),
        name=profile.name,
        relation_names=relation_names,
    )


def generate_streaming_store(
    directory,
    num_entities: int = 10_000,
    num_relations: int = 32,
    num_triples: int = 1_000_000,
    shard_size: Optional[int] = None,
    valid_fraction: float = 0.01,
    test_fraction: float = 0.01,
    seed: int = 0,
    name: str = "synthetic-stream",
    chunk_size: int = 1 << 18,
) -> "TripleStore":
    """Generate a large synthetic store directly on disk, in bounded memory.

    The miniature generators above build pattern-controlled graphs entirely
    in memory — right for search-quality experiments, a wall for
    million-triple stress workloads.  This generator draws uniform random
    triples in ``chunk_size`` blocks, assigns each row to train/valid/test
    with the requested fractions, and appends straight into a sharded
    :class:`~repro.datasets.pipeline.TripleStore`; peak memory is one chunk
    plus one shard buffer regardless of ``num_triples``.  Fully
    deterministic given ``seed``.
    """
    from repro.datasets.errors import DatasetError
    from repro.datasets.pipeline import DEFAULT_SHARD_SIZE, StoreWriter

    if num_entities < 2 or num_relations < 1:
        raise DatasetError("need at least two entities and one relation")
    if num_triples <= 0:
        raise DatasetError("num_triples must be positive")
    if not 0 <= valid_fraction < 1 or not 0 <= test_fraction < 1:
        raise DatasetError("split fractions must be in [0, 1)")
    if valid_fraction + test_fraction >= 1:
        raise DatasetError("valid_fraction + test_fraction must be < 1")

    rng = np.random.default_rng(seed)
    writer = StoreWriter(
        directory,
        name=name,
        shard_size=shard_size if shard_size is not None else DEFAULT_SHARD_SIZE,
    )
    remaining = int(num_triples)
    while remaining > 0:
        block = min(int(chunk_size), remaining)
        rows = np.empty((block, 3), dtype=np.int64)
        rows[:, 0] = rng.integers(0, num_entities, size=block)
        rows[:, 1] = rng.integers(0, num_relations, size=block)
        rows[:, 2] = rng.integers(0, num_entities, size=block)
        draw = rng.random(block)
        valid_mask = draw < valid_fraction
        test_mask = (~valid_mask) & (draw < valid_fraction + test_fraction)
        train_mask = ~(valid_mask | test_mask)
        writer.append("train", rows[train_mask])
        writer.append("valid", rows[valid_mask])
        writer.append("test", rows[test_mask])
        remaining -= block
    return writer.finalize(num_entities, num_relations)
