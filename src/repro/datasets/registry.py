"""Benchmark registry: miniature profiles of the five AutoSF benchmarks.

Each profile mirrors the relation-pattern mix of the original benchmark as
reported in Table III of the paper, scaled down so that many candidate
scoring functions can be trained on CPU during the search:

===========  ========  =========  =====  =========  ========  ========
benchmark    entities  relations  #sym   #anti-sym  #inverse  #general
===========  ========  =========  =====  =========  ========  ========
WN18          40,943      18        4        7          7        0
FB15k         14,951    1,345      66       38        556      685
WN18RR        40,943      11        4        3          1        3
FB15k-237     14,541      237      33        5         20      179
YAGO3-10     123,188      37        8        0          1       28
===========  ========  =========  =====  =========  ========  ========

The miniatures keep the *relative* pattern mix (e.g. WN18 is dominated by
symmetric/anti-symmetric/inverse relations and has no general ones, FB15k-237
is dominated by general asymmetric relations) while shrinking entity and
triple counts by two to three orders of magnitude.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.datasets.errors import UnknownBenchmarkError
from repro.datasets.generators import GeneratorProfile, generate_knowledge_graph
from repro.datasets.knowledge_graph import KnowledgeGraph
from repro.datasets.statistics import RelationPattern

#: Miniature generator profiles keyed by canonical benchmark name.
BENCHMARK_PROFILES: Dict[str, GeneratorProfile] = {
    "wn18": GeneratorProfile(
        name="wn18-mini",
        num_entities=400,
        num_clusters=8,
        relation_counts={
            RelationPattern.SYMMETRIC: 4,
            RelationPattern.ANTI_SYMMETRIC: 7,
            RelationPattern.INVERSE: 6,
            RelationPattern.GENERAL: 0,
        },
        triples_per_relation=220,
        seed=18,
    ),
    "fb15k": GeneratorProfile(
        name="fb15k-mini",
        num_entities=500,
        num_clusters=10,
        relation_counts={
            RelationPattern.SYMMETRIC: 3,
            RelationPattern.ANTI_SYMMETRIC: 2,
            RelationPattern.INVERSE: 12,
            RelationPattern.GENERAL: 14,
        },
        triples_per_relation=180,
        seed=15,
    ),
    "wn18rr": GeneratorProfile(
        name="wn18rr-mini",
        num_entities=400,
        num_clusters=8,
        relation_counts={
            RelationPattern.SYMMETRIC: 4,
            RelationPattern.ANTI_SYMMETRIC: 3,
            RelationPattern.INVERSE: 0,
            RelationPattern.GENERAL: 4,
        },
        triples_per_relation=220,
        seed=118,
    ),
    "fb15k237": GeneratorProfile(
        name="fb15k237-mini",
        num_entities=500,
        num_clusters=10,
        relation_counts={
            RelationPattern.SYMMETRIC: 3,
            RelationPattern.ANTI_SYMMETRIC: 1,
            RelationPattern.INVERSE: 0,
            RelationPattern.GENERAL: 18,
        },
        triples_per_relation=160,
        seed=237,
    ),
    "yago310": GeneratorProfile(
        name="yago310-mini",
        num_entities=600,
        num_clusters=12,
        relation_counts={
            RelationPattern.SYMMETRIC: 4,
            RelationPattern.ANTI_SYMMETRIC: 0,
            RelationPattern.INVERSE: 0,
            RelationPattern.GENERAL: 14,
        },
        triples_per_relation=200,
        seed=310,
    ),
}

#: Table III rows as reported in the paper, used by EXPERIMENTS.md and the
#: Table III bench to print paper-vs-miniature side by side.
PAPER_TABLE3: Dict[str, Dict[str, int]] = {
    "wn18": {
        "entities": 40943, "relations": 18, "train": 141442, "valid": 5000,
        "test": 5000, "symmetric": 4, "anti_symmetric": 7, "inverse": 7, "general": 0,
    },
    "fb15k": {
        "entities": 14951, "relations": 1345, "train": 484142, "valid": 50000,
        "test": 59071, "symmetric": 66, "anti_symmetric": 38, "inverse": 556, "general": 685,
    },
    "wn18rr": {
        "entities": 40943, "relations": 11, "train": 86835, "valid": 3034,
        "test": 3134, "symmetric": 4, "anti_symmetric": 3, "inverse": 1, "general": 3,
    },
    "fb15k237": {
        "entities": 14541, "relations": 237, "train": 272115, "valid": 17535,
        "test": 20466, "symmetric": 33, "anti_symmetric": 5, "inverse": 20, "general": 179,
    },
    "yago310": {
        "entities": 123188, "relations": 37, "train": 1079040, "valid": 5000,
        "test": 5000, "symmetric": 8, "anti_symmetric": 0, "inverse": 1, "general": 28,
    },
}


def available_benchmarks() -> List[str]:
    """Return the canonical names of all registered benchmark profiles."""
    return sorted(BENCHMARK_PROFILES)


def load_benchmark(
    name: str,
    seed: Optional[int] = None,
    scale: float = 1.0,
) -> KnowledgeGraph:
    """Generate the miniature version of a named benchmark.

    Parameters
    ----------
    name:
        One of :func:`available_benchmarks` (case-insensitive; dashes and
        underscores are ignored, so ``"FB15k-237"`` works).
    seed:
        Overrides the profile's default seed when given.
    scale:
        Multiplies the entity count and triples-per-relation of the profile
        (useful for quick smoke tests with ``scale < 1``).
    """
    key = name.lower().replace("-", "").replace("_", "")
    if key not in BENCHMARK_PROFILES:
        raise UnknownBenchmarkError(
            f"unknown benchmark {name!r}; available: {', '.join(available_benchmarks())}"
        )
    profile = BENCHMARK_PROFILES[key]
    if scale != 1.0:
        if scale <= 0:
            raise ValueError("scale must be positive")
        profile = GeneratorProfile(
            name=profile.name,
            num_entities=max(profile.num_clusters, int(profile.num_entities * scale)),
            num_clusters=profile.num_clusters,
            relation_counts=dict(profile.relation_counts),
            triples_per_relation=max(10, int(profile.triples_per_relation * scale)),
            valid_fraction=profile.valid_fraction,
            test_fraction=profile.test_fraction,
            seed=profile.seed,
        )
    return generate_knowledge_graph(profile, seed=seed)
