"""Live-index subsystem: mutation support for the frozen batch pipeline.

The batch stack (ingest → train → export → serve) assumes immutable
splits.  This package adds the online-update path beside it, keeping the
batch path as the parity oracle at every layer:

- :mod:`repro.live.compaction` — fold a store's append/delete delta
  shards (:meth:`repro.datasets.TripleStore.apply_delta`) into fresh base
  shards; the output is bit-identical to re-ingesting the merged TSV.
- :mod:`repro.live.index_delta` — apply a delta batch to an existing
  :class:`~repro.datasets.FilterIndex` by sorted merge, array-identical
  to rebuilding the index from scratch.
- :mod:`repro.live.finetune` — warm-start fine-tuning on a delta batch:
  new-entity embeddings initialized from relation-neighborhood means,
  then sparse updates that leave every untouched row bitwise unchanged.

Serving-side hot swap (artifact generations, ``/reload``, fleet SIGHUP
coordination) lives in :mod:`repro.serving`.
"""

from repro.live.compaction import compact_store
from repro.live.finetune import (
    FinetuneReport,
    PooledNegativeSampler,
    delta_touched,
    finetune_delta,
    warm_start_entities,
)
from repro.live.index_delta import apply_index_delta

__all__ = [
    "compact_store",
    "apply_index_delta",
    "FinetuneReport",
    "PooledNegativeSampler",
    "delta_touched",
    "finetune_delta",
    "warm_start_entities",
]
