"""Warm-start fine-tuning on a delta batch: touch only what changed.

After :meth:`~repro.datasets.TripleStore.apply_delta` commits new
triples, a full retrain is wasteful — the delta touches a handful of
entity and relation rows.  :func:`finetune_delta` instead:

1. grows the entity table, initializing each new entity from its
   **relation-neighborhood means** (:func:`warm_start_entities`): for
   every relation the delta connects it through, the mean embedding of
   its already-trained neighbors under that relation, averaged across
   relations; entities with no trained neighbor fall back to the column
   mean of the old table;
2. trains only on the delta triples with a pairwise loss, drawing
   negatives from the delta-touched entity pool
   (:class:`PooledNegativeSampler`) and routing updates through
   :class:`~repro.kge.engine.SparseTrainEngine` +
   :meth:`~repro.kge.optimizers.Optimizer.step_sparse`.

Because every gradient row (positives, corruptions, lazy regularization)
stays inside the touched set, **untouched rows are bitwise unchanged** —
the tier-1 suite asserts this, not just approximate stability.  The
multi-class loss needs the full softmax over every entity (its gradient
touches every row), so it is rejected; use ``logistic`` or ``hinge``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

import numpy as np

from repro.kge.engine import SparseTrainEngine
from repro.kge.losses import get_loss
from repro.kge.negative_sampling import NegativeSampler
from repro.kge.scoring import ScoringFunction
from repro.kge.trainer import Trainer, TrainingHistory
from repro.utils.config import ConfigError, TrainingConfig
from repro.utils.rng import RngLike

ParamDict = dict


@dataclass(frozen=True)
class FinetuneReport:
    """What a fine-tune run touched (for logs, /stats and the bench)."""

    delta_triples: int
    new_entities: int
    touched_entities: int
    touched_relations: int
    epochs: int
    final_loss: float


class PooledNegativeSampler(NegativeSampler):
    """Uniform corruption restricted to a fixed entity pool.

    Restricting draws (and collision redraws) to the delta-touched pool
    is what keeps the sparse fine-tune's gradient support inside the
    touched rows — a stray corruption outside the pool would receive a
    gradient and break the untouched-rows-bitwise-unchanged guarantee.
    """

    def __init__(self, pool: np.ndarray, num_negatives: int, rng: RngLike = None) -> None:
        pool = np.unique(np.asarray(pool, dtype=np.int64))
        if pool.size < 2:
            raise ValueError(
                f"need at least two entities in the negative pool, got {pool.size}"
            )
        super().__init__(
            num_entities=int(pool[-1]) + 1, num_negatives=num_negatives, rng=rng
        )
        self.pool = pool

    def sample(
        self, positives: np.ndarray, relations: Optional[np.ndarray] = None
    ) -> np.ndarray:
        positives = np.asarray(positives, dtype=np.int64)
        draws = self.rng.integers(
            0, self.pool.size, size=(positives.shape[0], self.num_negatives)
        )
        negatives = self.pool[draws]
        collisions = negatives == positives[:, None]
        if collisions.any():
            # A collision proves the positive is in the pool; redraw from
            # the pool minus it (rank shift), exactly collision-free.
            rows, cols = np.nonzero(collisions)
            ranks = np.searchsorted(self.pool, positives[rows])
            redraws = self.rng.integers(0, self.pool.size - 1, size=rows.size)
            redraws += redraws >= ranks
            negatives[rows, cols] = self.pool[redraws]
        return negatives


def delta_touched(delta_triples: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Sorted unique (entities, relations) referenced by a delta batch."""
    rows = np.asarray(delta_triples, dtype=np.int64)
    if rows.ndim != 2 or rows.shape[1] != 3:
        raise ValueError(f"delta triples must be (n, 3), got shape {rows.shape}")
    entities = np.unique(np.concatenate([rows[:, 0], rows[:, 2]]))
    relations = np.unique(rows[:, 1])
    return entities, relations


def warm_start_entities(
    params: ParamDict, delta_triples: np.ndarray, num_entities: int
) -> ParamDict:
    """Writable copy of ``params`` with the entity table grown to ``num_entities``.

    Rows below the old entity count are byte-for-byte copies; each new
    row is the mean over its delta relations of the mean embedding of its
    already-trained neighbors under that relation (column mean of the old
    table when the delta gives it no trained neighbor).
    """
    old_count = int(params["entities"].shape[0])
    if num_entities < old_count:
        raise ValueError(
            f"num_entities ({num_entities}) below the current entity table "
            f"({old_count} rows)"
        )
    out = {key: np.array(value) for key, value in params.items()}
    if num_entities == old_count:
        return out
    table = out["entities"]
    grown = np.zeros((num_entities, table.shape[1]), dtype=table.dtype)
    grown[:old_count] = table
    fallback = table.mean(axis=0)
    rows = np.asarray(delta_triples, dtype=np.int64)
    for entity in range(old_count, num_entities):
        incident = rows[(rows[:, 0] == entity) | (rows[:, 2] == entity)]
        vectors = []
        if incident.shape[0]:
            others = np.where(incident[:, 0] == entity, incident[:, 2], incident[:, 0])
            relations = incident[:, 1]
            trained = others < old_count
            others, relations = others[trained], relations[trained]
            for relation in np.unique(relations):
                vectors.append(grown[others[relations == relation]].mean(axis=0))
        grown[entity] = np.mean(vectors, axis=0) if vectors else fallback
    out["entities"] = grown
    return out


class _DeltaStream:
    """Minimal stream over the delta batch for :meth:`Trainer.fit`.

    Same duck-type contract as :class:`~repro.datasets.TripleStream`
    (``epoch(i)``, ``num_triples``, ``num_entities``, ``num_relations``)
    with a deterministic per-epoch permutation seeded like the sharded
    stream (``default_rng((seed, epoch))``).
    """

    def __init__(
        self,
        triples: np.ndarray,
        num_entities: int,
        num_relations: int,
        batch_size: int,
        seed: int,
    ) -> None:
        self.triples = np.ascontiguousarray(triples, dtype=np.int64)
        self.num_entities = int(num_entities)
        self.num_relations = int(num_relations)
        self.batch_size = int(batch_size)
        self.seed = int(seed)

    @property
    def num_triples(self) -> int:
        return int(self.triples.shape[0])

    def epoch(self, epoch: int = 0):
        rng = np.random.default_rng((self.seed, int(epoch)))
        order = rng.permutation(self.num_triples)
        for begin in range(0, self.num_triples, self.batch_size):
            yield self.triples[order[begin : begin + self.batch_size]]


def finetune_delta(
    scoring_function: ScoringFunction,
    params: ParamDict,
    config: TrainingConfig,
    delta_triples: np.ndarray,
    num_entities: Optional[int] = None,
) -> Tuple[ParamDict, TrainingHistory, FinetuneReport]:
    """Fine-tune ``params`` on a delta batch; returns ``(params, history, report)``.

    ``num_entities`` is the post-delta entity count (defaults to growing
    just enough to cover the delta's ids).  The returned parameter dict
    is a fresh writable copy — rows outside the delta-touched set are
    bitwise identical to the input.
    """
    rows = np.asarray(delta_triples, dtype=np.int64)
    if rows.ndim != 2 or rows.shape[1] != 3 or rows.shape[0] == 0:
        raise ValueError(
            f"delta triples must be a non-empty (n, 3) array, got shape {rows.shape}"
        )
    loss = get_loss(config.loss, margin=config.margin)
    if not loss.needs_negative_samples:
        raise ConfigError(
            f"finetune_delta cannot use the {config.loss!r} loss: its full "
            f"softmax touches every entity row; use 'logistic' or 'hinge'"
        )
    old_entities = int(params["entities"].shape[0])
    num_relations = int(params["relations"].shape[0])
    if int(rows[:, 1].max()) >= num_relations:
        raise ValueError(
            f"delta references relation id {int(rows[:, 1].max())} >= "
            f"num_relations ({num_relations}); relation growth requires a retrain"
        )
    if num_entities is None:
        num_entities = max(old_entities, int(rows[:, [0, 2]].max()) + 1)
    params = warm_start_entities(params, rows, num_entities)
    touched_entities, touched_relations = delta_touched(rows)

    engine_config = replace(config, train_engine="sparse", eval_every=0)
    trainer = Trainer(
        scoring_function,
        engine_config,
        loss=loss,
        engine=SparseTrainEngine(score_chunk_size=config.score_chunk_size),
    )
    trainer.negative_sampler = PooledNegativeSampler(
        touched_entities, engine_config.negative_samples, rng=trainer.rng
    )
    stream = _DeltaStream(
        rows,
        num_entities=num_entities,
        num_relations=num_relations,
        batch_size=engine_config.batch_size,
        seed=engine_config.seed if engine_config.seed is not None else 0,
    )
    params, history = trainer.fit(None, params=params, stream=stream)
    report = FinetuneReport(
        delta_triples=int(rows.shape[0]),
        new_entities=int(num_entities - old_entities),
        touched_entities=int(touched_entities.size),
        touched_relations=int(touched_relations.size),
        epochs=len(history.epochs),
        final_loss=float(history.final_loss) if history.final_loss is not None else float("nan"),
    )
    return params, history, report
