"""Deterministic compaction: fold delta shards back into base shards.

Compaction materializes each split's merged view (base shards with
deletes removed in place and appends following in generation order) and
rewrites it through the same :class:`~repro.datasets.pipeline.ShardWriter`
path a fresh ingest uses.  Because the merged row order equals the row
order :func:`~repro.datasets.pipeline.ingest_tsv` would produce for the
merged TSV — provided deletions never remove a symbol's first appearance
and appends introduce new symbols in first-appearance order — the
resulting shard files are **bit-identical** to a re-ingest (the parity
oracle asserted in the tier-1 suite and ``bench_live_ingest.py``).  The
compacted manifest keeps the source store's ``generation`` so the
counter stays a monotone audit trail; a re-ingested store restarts at 0,
which is the one intended manifest difference.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.datasets.pipeline import _SPLITS, PathLike, StoreWriter, TripleStore
from repro.obs import get_registry, span


def compact_store(
    store: Union[TripleStore, PathLike],
    output_dir: Optional[PathLike] = None,
) -> TripleStore:
    """Fold pending deltas into base shards; returns the compacted store.

    With ``output_dir`` the source store is left untouched and the
    compacted copy is written there.  Without it, compaction happens in
    place: the merged splits are materialized in memory first, then the
    directory is rewritten through :class:`StoreWriter` (which drops the
    old manifest before touching shards, so a crash mid-write leaves an
    unopenable directory rather than a torn store).  A store with no
    pending deltas compacts to a no-op in place, or to a plain copy when
    ``output_dir`` is given.
    """
    if not isinstance(store, TripleStore):
        store = TripleStore.open(store)
    in_place = output_dir is None
    if in_place and not store.has_deltas():
        return store
    target = store.directory if in_place else Path(output_dir)
    with span("live.compact") as handle:
        merged: Dict[str, np.ndarray] = {
            # np.array copies: the merged view may alias shard memmaps
            # that the in-place rewrite is about to unlink.
            split: np.array(store.load_split(split))
            for split in _SPLITS
        }
        names = store.vocab_names()
        generation = store.generation
        folded = sum(int(entry["count"]) for entry in store.delta_entries())
        writer = StoreWriter(target, name=store.name, shard_size=store.shard_size)
        for split in _SPLITS:
            writer.append(split, merged[split])
        compacted = writer.finalize(
            store.num_entities,
            store.num_relations,
            entity_names=names["entity_names"],
            relation_names=names["relation_names"],
            generation=generation,
        )
        handle.attrs["generation"] = generation
        handle.attrs["deltas_folded"] = folded
        handle.attrs["triples"] = int(sum(part.shape[0] for part in merged.values()))
        handle.attrs["in_place"] = in_place
    if in_place:
        # Refresh the caller's handle: same directory, new manifest.
        store.manifest = compacted.manifest
        store._cache.clear()
    get_registry().counter(
        "repro_live_compactions_total", "Completed compact_store runs"
    ).inc()
    return compacted
