"""Incremental FilterIndex maintenance: apply a delta without a rebuild.

A :class:`~repro.datasets.FilterIndex` holds, per query direction, the
``(query_code, entity)`` pairs of every observed triple in canonical
lexicographic order (``_DirectionIndex.build`` sorts by code then
entity).  That canonical form makes delta application a pair of O(n)
sorted-merge passes — delete by ranked ``searchsorted`` lookup, insert
by ``np.insert`` at the merge positions — instead of re-sorting the full
pair lists, and it makes the result **array-identical** to
:func:`~repro.datasets.pipeline.build_filter_index` on the mutated
store, which is the parity oracle the tier-1 suite asserts.

Relation-vocabulary growth is out of scope: query codes are packed with
the index's ``num_relations``, so a delta introducing a new relation id
requires a from-scratch rebuild (the error says so).  New *entity* ids
are fine — codes do not depend on the entity count.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.datasets.errors import DatasetError
from repro.datasets.knowledge_graph import FilterIndex, _DirectionIndex


def _as_rows(rows: Optional[np.ndarray]) -> np.ndarray:
    if rows is None:
        return np.zeros((0, 3), dtype=np.int64)
    array = np.asarray(rows, dtype=np.int64)
    if array.size == 0:
        return np.zeros((0, 3), dtype=np.int64)
    if array.ndim != 2 or array.shape[1] != 3:
        raise DatasetError(
            f"index delta expects (n, 3) triple arrays, got shape {array.shape}"
        )
    return array


def _pair_keys(
    codes: np.ndarray, entities: np.ndarray, num_entities: int, num_relations: int
) -> np.ndarray:
    """Pack ``(code, entity)`` into one int64 key preserving lex order."""
    if int(num_entities) * int(num_relations) * int(num_entities) >= (1 << 62):
        raise DatasetError(
            f"vocabulary too large for packed index-delta keys "
            f"({num_entities} entities x {num_relations} relations)"
        )
    return np.asarray(codes, dtype=np.int64) * np.int64(num_entities) + np.asarray(
        entities, dtype=np.int64
    )


def _apply_direction(
    direction: _DirectionIndex,
    add: Tuple[np.ndarray, np.ndarray],
    drop: Tuple[np.ndarray, np.ndarray],
    num_entities: int,
    num_relations: int,
    label: str,
) -> _DirectionIndex:
    counts = np.diff(np.asarray(direction.indptr))
    codes = np.repeat(np.asarray(direction.codes), counts)
    entities = np.asarray(direction.entities)
    keys = _pair_keys(codes, entities, num_entities, num_relations)

    drop_codes, drop_entities = drop
    if drop_codes.size:
        drop_keys = _pair_keys(drop_codes, drop_entities, num_entities, num_relations)
        order = np.argsort(drop_keys, kind="stable")
        sorted_drop = drop_keys[order]
        # The i-th occurrence of an equal drop key removes the i-th entry
        # of that key's run, so duplicate pairs (the same triple observed
        # in two splits) are removed one occurrence per delete.
        positions = np.searchsorted(keys, sorted_drop, side="left")
        ranks = np.arange(sorted_drop.size) - np.searchsorted(
            sorted_drop, sorted_drop, side="left"
        )
        remove = positions + ranks
        in_bounds = remove < keys.size
        valid = in_bounds & (keys[np.minimum(remove, keys.size - 1)] == sorted_drop)
        if not valid.all():
            bad = int(np.argmin(valid))
            raise DatasetError(
                f"cannot delete ({int(sorted_drop[bad]) // num_entities}, "
                f"{int(sorted_drop[bad]) % num_entities}) from the {label} "
                f"index: (code, entity) pair not present"
            )
        keep = np.ones(keys.size, dtype=bool)
        keep[remove] = False
        codes, entities, keys = codes[keep], entities[keep], keys[keep]

    add_codes, add_entities = add
    if add_codes.size:
        add_keys = _pair_keys(add_codes, add_entities, num_entities, num_relations)
        order = np.argsort(add_keys, kind="stable")
        positions = np.searchsorted(keys, add_keys[order], side="left")
        codes = np.insert(codes, positions, add_codes[order])
        entities = np.insert(entities, positions, add_entities[order])

    unique_codes, starts = np.unique(codes, return_index=True)
    indptr = np.concatenate([starts, [codes.size]]).astype(np.int64)
    return _DirectionIndex(codes=unique_codes, indptr=indptr, entities=entities)


def apply_index_delta(
    index: FilterIndex,
    num_entities: int,
    appends: Optional[np.ndarray] = None,
    deletes: Optional[np.ndarray] = None,
) -> FilterIndex:
    """A new :class:`FilterIndex` with the delta batch applied.

    ``num_entities`` is the entity count *after* the delta (it bounds the
    packed merge keys; appends may reference new entity ids).  Both
    directions are updated by sorted merge; the result equals a
    from-scratch build over the mutated triples exactly, array for array.
    Deleting a pair that is not present raises :class:`DatasetError`.
    """
    append_rows = _as_rows(appends)
    delete_rows = _as_rows(deletes)
    num_relations = index.num_relations
    for name, rows in (("appends", append_rows), ("deletes", delete_rows)):
        if rows.size and int(rows[:, 1].max()) >= num_relations:
            raise DatasetError(
                f"index delta {name} reference relation id "
                f"{int(rows[:, 1].max())} >= num_relations ({num_relations}); "
                f"relation growth requires rebuilding the index from scratch"
            )
        if rows.size and int(rows[:, [0, 2]].max()) >= num_entities:
            raise DatasetError(
                f"index delta {name} reference entity id "
                f"{int(rows[:, [0, 2]].max())} >= num_entities ({num_entities})"
            )

    def pairs(rows: np.ndarray, direction: str) -> Tuple[np.ndarray, np.ndarray]:
        if direction == "tails":
            return rows[:, 0] * num_relations + rows[:, 1], rows[:, 2]
        return rows[:, 2] * num_relations + rows[:, 1], rows[:, 0]

    return FilterIndex(
        num_relations=num_relations,
        tails=_apply_direction(
            index.tails,
            pairs(append_rows, "tails"),
            pairs(delete_rows, "tails"),
            num_entities,
            num_relations,
            "tails",
        ),
        heads=_apply_direction(
            index.heads,
            pairs(append_rows, "heads"),
            pairs(delete_rows, "heads"),
            num_entities,
            num_relations,
            "heads",
        ),
    )
