"""Process-local metrics registry with Prometheus text exposition.

Three metric kinds — :class:`Counter`, :class:`Gauge` and
:class:`Histogram` — are created and owned by a :class:`MetricsRegistry`.
Instrumented code asks the registry for a handle once (``registry.counter
("repro_train_batches_total")``) and then updates it on the hot path;
handles are cheap, thread-safe, and keyed by ``(name, labels)`` so two
call sites asking for the same series share one time series.

Disabled instrumentation must cost ~nothing: :class:`NullRegistry` hands
out shared no-op metric objects, so code written against the registry API
degrades to one attribute lookup plus an empty method call per update.
The process-global default registry (:func:`get_registry`) is a
``NullRegistry`` until something — the CLI's ``--obs`` flag, a serving
worker, a test — installs a real one with :func:`set_registry`.

:func:`render_prometheus` serializes a registry in the Prometheus text
exposition format (version 0.0.4: ``# HELP`` / ``# TYPE`` lines, escaped
label values, cumulative histogram ``_bucket``/``_sum``/``_count``
series); :func:`parse_prometheus` is the matching reader used by tests
and the CI scrape smoke to round-trip what a ``GET /metrics`` returns.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "render_prometheus",
    "parse_prometheus",
    "get_registry",
    "set_registry",
]

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Fixed log-spaced latency buckets (seconds): two per decade from 100 µs
#: to 10 s.  Serving phases sit near the bottom, candidate training near
#: the top; one shared layout keeps every latency histogram comparable.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    round(10.0 ** (exponent / 2.0), 10) for exponent in range(-8, 3)
)

LabelsArg = Optional[Mapping[str, str]]
LabelItems = Tuple[Tuple[str, str], ...]


def _normalize_labels(labels: LabelsArg) -> LabelItems:
    if not labels:
        return ()
    items = tuple(sorted((str(k), str(v)) for k, v in labels.items()))
    for key, _ in items:
        if not _LABEL_NAME_RE.match(key):
            raise ValueError(f"invalid label name: {key!r}")
    return items


def _format_value(value: float) -> str:
    """Prometheus sample-value formatting: shortest float round-trip."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape_label_value(value: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt in ("\\", '"'):
                out.append(nxt)
            else:
                out.append(ch)
                out.append(nxt)
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _render_label_items(items: Iterable[Tuple[str, str]]) -> str:
    rendered = ",".join(
        f'{key}="{escape_label_value(value)}"' for key, value in items
    )
    return "{" + rendered + "}" if rendered else ""


class Counter:
    """Monotonically increasing counter."""

    __slots__ = ("name", "help", "labels", "_value", "_lock")

    def __init__(self, name: str, help: str = "", labels: LabelItems = ()) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Value that can go up and down."""

    __slots__ = ("name", "help", "labels", "_value", "_lock")

    def __init__(self, name: str, help: str = "", labels: LabelItems = ()) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Cumulative histogram over fixed bucket upper bounds.

    Buckets are inclusive upper bounds (Prometheus ``le`` semantics); an
    implicit ``+Inf`` bucket catches everything above the last bound.
    """

    __slots__ = ("name", "help", "labels", "buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: LabelItems = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram bucket bounds must be strictly increasing")
        if math.isinf(bounds[-1]):
            bounds = bounds[:-1]  # +Inf is implicit
        self.name = name
        self.help = help
        self.labels = labels
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    def cumulative_counts(self) -> List[int]:
        """Per-bound cumulative counts, ending with the ``+Inf`` total."""
        with self._lock:
            counts = list(self._counts)
        out: List[int] = []
        running = 0
        for c in counts:
            running += c
            out.append(running)
        return out


Metric = Union[Counter, Gauge, Histogram]

_TYPE_NAMES = {Counter: "counter", Gauge: "gauge", Histogram: "histogram"}


class MetricsRegistry:
    """Thread-safe owner of all metric series in one process."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelItems], Metric] = {}
        self._types: Dict[str, type] = {}
        self._lock = threading.Lock()

    # -- handle factories ------------------------------------------------
    def counter(self, name: str, help: str = "", labels: LabelsArg = None) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: LabelsArg = None) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: LabelsArg = None,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels, buckets=buckets)

    def _get_or_create(
        self,
        cls: type,
        name: str,
        help: str,
        labels: LabelsArg,
        **kwargs,
    ) -> Metric:
        if not _METRIC_NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        items = _normalize_labels(labels)
        key = (name, items)
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{_TYPE_NAMES[type(existing)]}, not {_TYPE_NAMES[cls]}"
                    )
                return existing
            registered = self._types.get(name)
            if registered is not None and registered is not cls:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{_TYPE_NAMES[registered]}, not {_TYPE_NAMES[cls]}"
                )
            metric = cls(name, help=help, labels=items, **kwargs)
            self._metrics[key] = metric
            self._types[name] = cls
            return metric

    # -- introspection ---------------------------------------------------
    def collect(self) -> List[Metric]:
        """All metrics, grouped by family name, labels sorted within."""
        with self._lock:
            metrics = list(self._metrics.values())
        return sorted(metrics, key=lambda m: (m.name, m.labels))

    def as_dict(self) -> dict:
        """JSON-serializable snapshot (written to ``metrics.json``)."""
        out: List[dict] = []
        for metric in self.collect():
            entry: dict = {
                "name": metric.name,
                "type": _TYPE_NAMES[type(metric)],
                "labels": dict(metric.labels),
            }
            if isinstance(metric, Histogram):
                entry["sum"] = metric.sum
                entry["count"] = metric.count
                entry["buckets"] = {
                    _format_value(bound): cumulative
                    for bound, cumulative in zip(
                        list(metric.buckets) + [math.inf],
                        metric.cumulative_counts(),
                    )
                }
            else:
                entry["value"] = metric.value
            out.append(entry)
        return {"metrics": out}


class _NullCounter:
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass

    @property
    def sum(self) -> float:
        return 0.0

    @property
    def count(self) -> int:
        return 0


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullRegistry:
    """No-op registry: every factory returns a shared inert handle.

    This is the process default, so instrumented hot paths pay one method
    call per update and allocate nothing when observability is off.
    """

    def counter(self, name: str, help: str = "", labels: LabelsArg = None) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, help: str = "", labels: LabelsArg = None) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: LabelsArg = None,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def collect(self) -> List[Metric]:
        return []

    def as_dict(self) -> dict:
        return {"metrics": []}


NULL_REGISTRY = NullRegistry()

AnyRegistry = Union[MetricsRegistry, NullRegistry]


# ---------------------------------------------------------------------------
# Prometheus text exposition (version 0.0.4)
# ---------------------------------------------------------------------------

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def render_prometheus(registry: AnyRegistry) -> str:
    """Serialize a registry in the Prometheus text exposition format."""
    lines: List[str] = []
    seen_header = set()
    for metric in registry.collect():
        if metric.name not in seen_header:
            seen_header.add(metric.name)
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {_TYPE_NAMES[type(metric)]}")
        if isinstance(metric, Histogram):
            bounds = list(metric.buckets) + [math.inf]
            for bound, cumulative in zip(bounds, metric.cumulative_counts()):
                items = metric.labels + (("le", _format_value(bound)),)
                lines.append(
                    f"{metric.name}_bucket{_render_label_items(items)} {cumulative}"
                )
            suffix = _render_label_items(metric.labels)
            lines.append(f"{metric.name}_sum{suffix} {_format_value(metric.sum)}")
            lines.append(f"{metric.name}_count{suffix} {metric.count}")
        else:
            lines.append(
                f"{metric.name}{_render_label_items(metric.labels)} "
                f"{_format_value(metric.value)}"
            )
    return "\n".join(lines) + "\n" if lines else ""


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _parse_sample_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def parse_prometheus(text: str) -> dict:
    """Parse Prometheus text exposition into families and samples.

    Returns ``{"types": {family: type}, "helps": {family: help},
    "samples": {(name, labels_items): value}}``.  Used by the exposition
    round-trip tests and the CI ``/metrics`` scrape; raises ``ValueError``
    on lines that don't parse.
    """
    types: Dict[str, str] = {}
    helps: Dict[str, str] = {}
    samples: Dict[Tuple[str, LabelItems], float] = {}
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            helps[name] = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, type_text = rest.partition(" ")
            types[name] = type_text
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"unparseable exposition line: {raw_line!r}")
        label_text = match.group("labels")
        items: LabelItems = ()
        if label_text:
            consumed = 0
            parsed: List[Tuple[str, str]] = []
            for label_match in _LABEL_RE.finditer(label_text):
                parsed.append(
                    (label_match.group(1), _unescape_label_value(label_match.group(2)))
                )
                consumed = label_match.end()
            remainder = label_text[consumed:].strip().strip(",")
            if remainder:
                raise ValueError(f"unparseable label set: {label_text!r}")
            items = tuple(sorted(parsed))
        key = (match.group("name"), items)
        samples[key] = _parse_sample_value(match.group("value"))
    return {"types": types, "helps": helps, "samples": samples}


# ---------------------------------------------------------------------------
# Process-global registry
# ---------------------------------------------------------------------------

_global_lock = threading.Lock()
_global_registry: AnyRegistry = NULL_REGISTRY


def get_registry() -> AnyRegistry:
    """The process-global registry (a ``NullRegistry`` until enabled)."""
    return _global_registry


def set_registry(registry: Optional[AnyRegistry]) -> AnyRegistry:
    """Install ``registry`` as the process-global sink; returns the old one.

    Passing ``None`` restores the inert :data:`NULL_REGISTRY`.
    """
    global _global_registry
    with _global_lock:
        previous = _global_registry
        _global_registry = registry if registry is not None else NULL_REGISTRY
    return previous
