"""Structured trace spans: per-process JSONL files, cross-process merge.

A :class:`TraceRecorder` writes one JSON object per *completed* span to a
per-process file ``trace-<pid>-<n>.jsonl`` inside its directory.  Spans
carry ``trace_id`` / ``span_id`` / ``parent_id``, the span ``name``, a
``start`` taken from ``time.monotonic()`` (``CLOCK_MONOTONIC`` — shared
by every process on the host, so starts are directly comparable across
pids), the ``duration`` in seconds, the writing ``pid`` and free-form
``attrs``.

Fork-awareness is the load-bearing property: the recorder checks
``os.getpid()`` before every write and transparently opens a fresh file
(and id namespace) in a forked child, so ``ProcessPoolBackend`` workers
and ``ServingFleet`` workers inherit the parent's recorder via ``fork``
and still produce their own clean per-process timelines.
:func:`merge_trace_dir` then orders every file's events into one timeline
by monotonic start, and :func:`summarize_spans` folds that timeline into
the per-phase breakdown printed by ``repro trace summarize``.

Like the metrics registry, tracing has a process-global default — an
inert :data:`NULL_TRACER` — so instrumentation sites call the module
level :func:`span` / :func:`record_span` unconditionally and pay ~nothing
until :func:`configure_tracing` installs a real recorder.
"""

from __future__ import annotations

import io
import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

__all__ = [
    "Span",
    "TraceRecorder",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "configure_tracing",
    "span",
    "record_span",
    "merge_trace_dir",
    "summarize_spans",
    "write_merged_trace",
    "TRACE_FILE_GLOB",
    "MERGED_TRACE_FILENAME",
]

TRACE_FILE_GLOB = "trace-*.jsonl"
MERGED_TRACE_FILENAME = "trace.jsonl"


class Span:
    """Mutable handle yielded by :meth:`TraceRecorder.span`.

    ``attrs`` may be extended inside the ``with`` block for values only
    known at the end of the phase (e.g. the epoch's mean loss).
    """

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "start", "duration", "attrs")

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        start: float,
        attrs: Dict[str, Any],
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.duration = 0.0
        self.attrs = attrs

    def to_event(self, pid: int) -> Dict[str, Any]:
        event: Dict[str, Any] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "pid": pid,
        }
        if self.attrs:
            event["attrs"] = self.attrs
        return event


class _NullSpan:
    """Inert span handle: accepts attr writes, records nothing."""

    __slots__ = ("attrs",)

    def __init__(self) -> None:
        self.attrs: Dict[str, Any] = {}


class TraceRecorder:
    """Writes completed spans as JSONL, one file per contributing process."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._handle: Optional[io.TextIOBase] = None
        self._pid: Optional[int] = None
        self._sequence = 0

    # -- per-process file management ------------------------------------
    def _ensure_handle(self, pid: int) -> io.TextIOBase:
        """Open (or re-open after a fork) this process's trace file."""
        if self._handle is None or self._pid != pid:
            if self._handle is not None:
                # Forked child inherited the parent's handle: drop it
                # without closing (closing would flush parent buffers).
                self._handle = None
            self.directory.mkdir(parents=True, exist_ok=True)
            # A pid can recycle across fleet generations; the monotonic
            # suffix keeps files distinct without any cross-process state.
            suffix = 0
            while True:
                path = self.directory / f"trace-{pid}-{suffix}.jsonl"
                try:
                    handle = open(path, "x", encoding="utf-8")
                    break
                except FileExistsError:
                    suffix += 1
            self._handle = handle
            self._pid = pid
            self._sequence = 0
        return self._handle

    def _next_id(self, pid: int) -> str:
        self._sequence += 1
        return f"{pid:x}-{self._sequence:x}"

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _write(self, event: Dict[str, Any]) -> None:
        pid = os.getpid()
        line = json.dumps(event, sort_keys=True)
        with self._lock:
            handle = self._ensure_handle(pid)
            handle.write(line + "\n")
            handle.flush()

    # -- recording API ---------------------------------------------------
    @contextmanager
    def span(
        self, name: str, attrs: Optional[Dict[str, Any]] = None
    ) -> Iterator[Span]:
        """Record a span covering the ``with`` block; yields the handle."""
        pid = os.getpid()
        with self._lock:
            self._ensure_handle(pid)  # reset id namespace after a fork
            span_id = self._next_id(pid)
        stack = self._stack()
        parent = stack[-1] if stack else None
        handle = Span(
            name=name,
            trace_id=parent.trace_id if parent else span_id,
            span_id=span_id,
            parent_id=parent.span_id if parent else None,
            start=time.monotonic(),
            attrs=dict(attrs) if attrs else {},
        )
        stack.append(handle)
        try:
            yield handle
        finally:
            handle.duration = time.monotonic() - handle.start
            if stack and stack[-1] is handle:
                stack.pop()
            self._write(handle.to_event(pid))

    def record(
        self,
        name: str,
        start: float,
        duration: float,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record an already-measured leaf span (no stack push).

        Used by :class:`~repro.utils.timing.TimingRecorder` so a phase's
        trace event and its Table VII sample come from the *same* clock
        reading and therefore agree exactly.
        """
        pid = os.getpid()
        with self._lock:
            self._ensure_handle(pid)
            span_id = self._next_id(pid)
        stack = self._stack()
        parent = stack[-1] if stack else None
        handle = Span(
            name=name,
            trace_id=parent.trace_id if parent else span_id,
            span_id=span_id,
            parent_id=parent.span_id if parent else None,
            start=start,
            attrs=dict(attrs) if attrs else {},
        )
        handle.duration = duration
        self._write(handle.to_event(pid))

    def close(self) -> None:
        with self._lock:
            if self._handle is not None and self._pid == os.getpid():
                self._handle.close()
            self._handle = None
            self._pid = None


class NullTracer:
    """No-op tracer: the process default until tracing is configured."""

    _SPAN = _NullSpan()

    @contextmanager
    def span(
        self, name: str, attrs: Optional[Dict[str, Any]] = None
    ) -> Iterator[_NullSpan]:
        yield self._SPAN

    def record(
        self,
        name: str,
        start: float,
        duration: float,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        pass

    def close(self) -> None:
        pass


NULL_TRACER = NullTracer()

AnyTracer = Union[TraceRecorder, NullTracer]

_global_lock = threading.Lock()
_global_tracer: AnyTracer = NULL_TRACER


def get_tracer() -> AnyTracer:
    return _global_tracer


def set_tracer(tracer: Optional[AnyTracer]) -> AnyTracer:
    """Install ``tracer`` globally; returns the previous one.

    Passing ``None`` restores the inert :data:`NULL_TRACER`.
    """
    global _global_tracer
    with _global_lock:
        previous = _global_tracer
        _global_tracer = tracer if tracer is not None else NULL_TRACER
    return previous


def configure_tracing(directory: Union[str, Path]) -> TraceRecorder:
    """Create a :class:`TraceRecorder` on ``directory`` and install it."""
    recorder = TraceRecorder(directory)
    set_tracer(recorder)
    return recorder


def span(name: str, attrs: Optional[Dict[str, Any]] = None):
    """Record a span on the process-global tracer (no-op when disabled)."""
    return get_tracer().span(name, attrs)


def record_span(
    name: str,
    start: float,
    duration: float,
    attrs: Optional[Dict[str, Any]] = None,
) -> None:
    get_tracer().record(name, start, duration, attrs)


# ---------------------------------------------------------------------------
# Merge + summarize
# ---------------------------------------------------------------------------


def _read_trace_file(path: Path) -> List[Dict[str, Any]]:
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_number}: invalid trace event ({error})"
                ) from None
            events.append(event)
    return events


def merge_trace_dir(directory: Union[str, Path]) -> List[Dict[str, Any]]:
    """All spans from every per-process file, ordered by monotonic start.

    ``time.monotonic`` is ``CLOCK_MONOTONIC``, which all processes on a
    host share, so sorting by ``start`` interleaves spans from different
    pids into one consistent timeline.  Ties break by (pid, span_id) for
    determinism.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(f"no trace directory at {directory}")
    events: List[Dict[str, Any]] = []
    for path in sorted(directory.glob(TRACE_FILE_GLOB)):
        events.extend(_read_trace_file(path))
    events.sort(
        key=lambda e: (e.get("start", 0.0), e.get("pid", 0), e.get("span_id", ""))
    )
    return events


def write_merged_trace(
    directory: Union[str, Path], output: Optional[Union[str, Path]] = None
) -> Path:
    """Merge per-process files into one ordered ``trace.jsonl``."""
    directory = Path(directory)
    events = merge_trace_dir(directory)
    output_path = Path(output) if output is not None else directory / MERGED_TRACE_FILENAME
    with open(output_path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True) + "\n")
    return output_path


def summarize_spans(events: List[Dict[str, Any]]) -> Dict[str, Dict[str, Any]]:
    """Per-phase breakdown: span name -> count / total / mean / pids."""
    summary: Dict[str, Dict[str, Any]] = {}
    for event in events:
        name = event.get("name", "<unnamed>")
        entry = summary.setdefault(
            name, {"count": 0, "total": 0.0, "mean": 0.0, "pids": set()}
        )
        entry["count"] += 1
        entry["total"] += float(event.get("duration", 0.0))
        entry["pids"].add(event.get("pid", 0))
    for entry in summary.values():
        entry["mean"] = entry["total"] / entry["count"] if entry["count"] else 0.0
        entry["pids"] = sorted(entry["pids"])
    return summary
