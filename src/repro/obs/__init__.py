"""Unified telemetry: metrics registry, Prometheus exposition, trace spans.

Two process-global sinks with inert defaults:

- :func:`get_registry` / :func:`set_registry` — the metrics registry
  (:class:`MetricsRegistry`, rendered by :func:`render_prometheus` at the
  serving ``GET /metrics`` endpoint and dumped to ``metrics.json`` by
  :class:`~repro.experiments.ExperimentRunner`).
- :func:`get_tracer` / :func:`configure_tracing` — the structured trace
  recorder whose per-process JSONL files are merged into one timeline by
  ``repro trace merge`` / ``repro trace summarize``.

Both default to no-op implementations, so instrumentation scattered
through the training, search and serving hot paths costs ~nothing until a
caller (``run --obs``, a serving worker, a test) turns it on.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    PROMETHEUS_CONTENT_TYPE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    parse_prometheus,
    render_prometheus,
    set_registry,
)
from repro.obs.trace import (
    MERGED_TRACE_FILENAME,
    NULL_TRACER,
    NullTracer,
    Span,
    TraceRecorder,
    configure_tracing,
    get_tracer,
    merge_trace_dir,
    record_span,
    set_tracer,
    span,
    summarize_spans,
    write_merged_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "PROMETHEUS_CONTENT_TYPE",
    "render_prometheus",
    "parse_prometheus",
    "get_registry",
    "set_registry",
    "Span",
    "TraceRecorder",
    "NullTracer",
    "NULL_TRACER",
    "MERGED_TRACE_FILENAME",
    "configure_tracing",
    "get_tracer",
    "set_tracer",
    "span",
    "record_span",
    "merge_trace_dir",
    "summarize_spans",
    "write_merged_trace",
]
