"""Analysis utilities: case studies, transfer experiments, report formatting."""

from repro.analysis.case_study import CaseStudy, describe_structure
from repro.analysis.transfer import TransferResult, transfer_matrix
from repro.analysis.reporting import format_run_comparison, format_series, format_table

__all__ = [
    "CaseStudy",
    "describe_structure",
    "TransferResult",
    "transfer_matrix",
    "format_table",
    "format_series",
    "format_run_comparison",
]
