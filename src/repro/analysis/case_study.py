"""Case study of searched scoring functions (Sec. V-B2, Fig. 5).

Given a searched block structure and the dataset it was searched on, the
case study reports:

* the rendered block matrix (the Fig. 5 picture, as text);
* its SRF summary — which symmetry cases it can realize — linking the
  structure back to the relation-pattern mix of the dataset (Table III);
* whether it is equivalent (under the invariance group) to any classical
  bilinear model, i.e. whether the search actually found something *new*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.invariance import are_equivalent
from repro.core.srf import can_be_skew_symmetric, can_be_symmetric, srf_summary
from repro.datasets.statistics import DatasetStatistics, RelationPattern
from repro.kge.scoring.blocks import CLASSICAL_STRUCTURES, BlockStructure, render_structure


def equivalent_classical_model(structure: BlockStructure) -> Optional[str]:
    """Name of the classical model this structure is equivalent to, if any."""
    for name, classical in CLASSICAL_STRUCTURES.items():
        if name == "cp":  # alias of simple
            continue
        if are_equivalent(structure, classical):
            return name
    return None


def describe_structure(structure: BlockStructure) -> str:
    """Multi-line human-readable description of one structure."""
    lines: List[str] = [render_structure(structure)]
    lines.append(f"blocks: {structure.num_blocks}")
    lines.append(f"can be symmetric: {can_be_symmetric(structure)}")
    lines.append(f"can be skew-symmetric: {can_be_skew_symmetric(structure)}")
    classical = equivalent_classical_model(structure)
    if classical is None:
        lines.append("equivalent classical model: none (novel structure)")
    else:
        lines.append(f"equivalent classical model: {classical}")
    active = [name for name, value in srf_summary(structure).items() if value]
    lines.append("active SRF cases: " + (", ".join(active) if active else "none"))
    return "\n".join(lines)


@dataclass
class CaseStudy:
    """Links a searched structure to the dataset it was searched on."""

    dataset_name: str
    structure: BlockStructure
    validation_mrr: float
    statistics: Optional[DatasetStatistics] = None

    def is_novel(self) -> bool:
        """True when the structure is not equivalent to any classical model."""
        return equivalent_classical_model(self.structure) is None

    def srf(self) -> Dict[str, int]:
        return srf_summary(self.structure)

    def relation_pattern_alignment(self) -> Dict[str, object]:
        """Pair the dataset's pattern counts with the structure's capabilities.

        The paper's qualitative argument: datasets rich in anti-symmetric /
        inverse relations need a structure that can be skew-symmetric, while
        a dataset like FB15k-237 (almost no anti-symmetric relations) is
        served well by structures that cannot (e.g. DistMult-like ones).
        """
        alignment: Dict[str, object] = {
            "can_model_symmetric": can_be_symmetric(self.structure),
            "can_model_anti_symmetric": can_be_skew_symmetric(self.structure),
        }
        if self.statistics is not None:
            alignment["dataset_symmetric_relations"] = self.statistics.count(RelationPattern.SYMMETRIC)
            alignment["dataset_anti_symmetric_relations"] = self.statistics.count(
                RelationPattern.ANTI_SYMMETRIC
            )
            alignment["dataset_inverse_relations"] = self.statistics.count(RelationPattern.INVERSE)
            alignment["dataset_general_relations"] = self.statistics.count(RelationPattern.GENERAL)
        return alignment

    def report(self) -> str:
        """Full text report for this case study."""
        lines = [
            f"=== searched scoring function on {self.dataset_name} "
            f"(validation MRR {self.validation_mrr:.3f}) ===",
            describe_structure(self.structure),
        ]
        if self.statistics is not None:
            lines.append("dataset relation patterns: " + str(self.statistics.as_row()))
        return "\n".join(lines)
