"""Cross-dataset transfer of searched scoring functions (Table V).

The paper's distinctiveness argument: the SF searched on dataset A performs
best *on A* — applying it to dataset B loses against B's own searched SF.
This module trains a given set of (dataset, structure) pairs in every
combination and returns the full MRR matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.datasets.knowledge_graph import KnowledgeGraph
from repro.kge.model import train_model
from repro.kge.scoring.blocks import BlockStructure
from repro.utils.config import TrainingConfig


@dataclass
class TransferResult:
    """MRR of every searched structure evaluated on every dataset."""

    dataset_names: List[str]
    #: matrix[source][target] = test MRR of the SF searched on ``source``
    #: when trained and evaluated on ``target``.
    matrix: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def mrr(self, source: str, target: str) -> float:
        return self.matrix[source][target]

    def diagonal_wins(self) -> Dict[str, bool]:
        """For every target dataset, does its own searched SF win the column?"""
        wins: Dict[str, bool] = {}
        for target in self.dataset_names:
            column = {source: self.matrix[source][target] for source in self.dataset_names}
            best_source = max(column, key=column.get)
            wins[target] = best_source == target
        return wins

    def as_rows(self) -> List[Dict[str, object]]:
        """Rows suitable for tabular printing (one per source dataset)."""
        rows: List[Dict[str, object]] = []
        for source in self.dataset_names:
            row: Dict[str, object] = {"searched_on": source}
            for target in self.dataset_names:
                row[target] = round(self.matrix[source][target], 3)
            rows.append(row)
        return rows


def transfer_matrix(
    graphs: Mapping[str, KnowledgeGraph],
    structures: Mapping[str, BlockStructure],
    config: Optional[TrainingConfig] = None,
    split: str = "test",
) -> TransferResult:
    """Train every searched structure on every dataset and evaluate it.

    Parameters
    ----------
    graphs:
        ``{dataset name: graph}`` — the evaluation targets (columns).
    structures:
        ``{dataset name: structure searched on that dataset}`` (rows).
    """
    names = [name for name in structures if name in graphs]
    if not names:
        raise ValueError("structures and graphs share no dataset names")
    result = TransferResult(dataset_names=names)
    for source in names:
        result.matrix[source] = {}
        for target in names:
            model = train_model(graphs[target], structures[source], config)
            evaluation = model.evaluate(graphs[target], split=split)
            result.matrix[source][target] = evaluation.mrr
    return result
