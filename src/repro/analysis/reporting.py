"""Plain-text table and series formatting for the benchmark harness.

The benchmark scripts print every reproduced table/figure as aligned text so
the output can be diffed against EXPERIMENTS.md; no plotting dependency is
required.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

Number = Union[int, float]
Cell = Union[str, Number, None]


def _format_cell(value: Cell, precision: int) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, Cell]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Render a list of row dicts as an aligned text table."""
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    header = list(columns)
    body: List[List[str]] = [
        [_format_cell(row.get(column), precision) for column in columns] for row in rows
    ]
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
        for i in range(len(header))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(header[i].ljust(widths[i]) for i in range(len(header))))
    lines.append("  ".join("-" * widths[i] for i in range(len(header))))
    for line in body:
        lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(header))))
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Iterable[Number]],
    title: Optional[str] = None,
    precision: int = 3,
    index_label: str = "step",
) -> str:
    """Render named numeric series (e.g. any-time curves) as a text table.

    Shorter series are padded with the last observed value, which matches
    how any-time-best curves are compared at a common budget.
    """
    materialized: Dict[str, List[Number]] = {name: list(values) for name, values in series.items()}
    if not materialized:
        return title or ""
    length = max(len(values) for values in materialized.values())
    rows: List[Dict[str, Cell]] = []
    for step in range(length):
        row: Dict[str, Cell] = {index_label: step + 1}
        for name, values in materialized.items():
            if not values:
                row[name] = None
            elif step < len(values):
                row[name] = values[step]
            else:
                row[name] = values[-1]
        rows.append(row)
    return format_table(rows, title=title, precision=precision)


def format_run_comparison(runs: Sequence, precision: int = 3) -> str:
    """Render a comparison of experiment run directories (``compare`` CLI).

    ``runs`` are :class:`repro.experiments.runner.RunRecord` objects (or any
    duck-typed equivalent exposing ``name``/``strategy``/``best_mrr``/
    ``anytime_curve()`` and a ``report`` mapping).  The output is a summary
    table — one row per run — followed by the overlaid any-time best curves
    at a common budget, the comparison the paper's Fig. 6 makes.
    """
    rows: List[Dict[str, Cell]] = []
    curves: Dict[str, List[Number]] = {}
    for run in runs:
        report = getattr(run, "report", {})
        rows.append(
            {
                "run": run.name,
                "strategy": run.strategy,
                "dataset": report.get("dataset"),
                "evaluations": report.get("num_evaluations"),
                "trained": report.get("num_trained"),
                "best_mrr": run.best_mrr,
            }
        )
        label = run.name if run.name not in curves else f"{run.name}#{len(curves)}"
        curves[label] = run.anytime_curve()
    summary = format_table(rows, title="Experiment comparison", precision=precision)
    series = format_series(
        curves,
        title="Any-time best validation MRR vs. #models trained",
        precision=precision,
        index_label="model#",
    )
    return summary + "\n\n" + series


def format_paper_comparison(
    rows: Sequence[Mapping[str, Cell]],
    metric_columns: Sequence[str],
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Render a "paper vs. measured" comparison table.

    Each row should contain ``<metric>`` and ``<metric>_paper`` entries; the
    output interleaves them so qualitative agreement is easy to scan.
    """
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns and key not in metric_columns and not key.endswith("_paper"):
                columns.append(key)
    for metric in metric_columns:
        columns.append(metric)
        columns.append(f"{metric}_paper")
    return format_table(rows, columns=columns, title=title, precision=precision)
