"""Successive-halving / ASHA fidelity scheduling for the search loop.

Training every proposed candidate to full convergence dominates search
cost.  :class:`FidelityScheduler` cuts that cost with the successive-halving
idea: evaluate the whole candidate front cheaply (few epochs), promote only
the top fraction to the next *rung* (more epochs), and train just the
survivors at full fidelity.  Integrated with the paper's predictor-guided
filtering, the proposed front stays full — the predictor prunes the
combinatorial space, the scheduler prunes the training budget.

The epoch ladder is geometric: ``min_epochs, min_epochs * reduction, ...``
capped by the training config's full ``epochs`` (which always forms the
final rung, so the surviving candidates' results are *exactly* the
full-fidelity results — the serial full-fidelity path remains the parity
oracle for them).  Promotion keeps ``ceil(n / reduction)`` candidates per
rung, ranked by validation MRR with a deterministic canonical-key
tie-break, so scheduling is reproducible across backends and worker
counts.

Only final-rung evaluations count toward the search budget and are fed to
``strategy.observe``; lower-rung evaluations are recorded in the search
history with ``full_fidelity=False`` and rung metadata for analysis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

__all__ = ["FidelityScheduler"]


@dataclass(frozen=True)
class FidelityScheduler:
    """Geometric epoch ladder + top-fraction promotion policy.

    Parameters
    ----------
    reduction:
        Halving rate ``eta``: each rung multiplies the epoch budget by this
        factor and keeps ``ceil(n / reduction)`` of ``n`` candidates.
    min_epochs:
        Epoch budget of the cheapest rung.
    max_rungs:
        Optional cap on ladder length; the *lowest* rungs are dropped first
        (the full-fidelity rung is never dropped).
    """

    reduction: int = 3
    min_epochs: int = 1
    max_rungs: Optional[int] = None

    def __post_init__(self) -> None:
        if self.reduction < 2:
            raise ValueError(
                f"FidelityScheduler: reduction must be >= 2, got {self.reduction}"
            )
        if self.min_epochs < 1:
            raise ValueError(
                f"FidelityScheduler: min_epochs must be >= 1, got {self.min_epochs}"
            )
        if self.max_rungs is not None and self.max_rungs < 2:
            raise ValueError(
                f"FidelityScheduler: max_rungs must be >= 2 (one cheap rung "
                f"plus the full-fidelity rung), got {self.max_rungs}"
            )

    def ladder(self, full_epochs: int) -> List[int]:
        """Ascending epoch budgets, always ending at ``full_epochs``.

        A ``[full_epochs]`` ladder (single rung) means scheduling is a
        no-op for this config — e.g. when ``full_epochs <= min_epochs``.
        """
        if full_epochs <= self.min_epochs:
            return [full_epochs]
        rungs: List[int] = []
        epochs = self.min_epochs
        while epochs < full_epochs:
            rungs.append(epochs)
            epochs *= self.reduction
        # A top rung within one reduction step of full fidelity saves almost
        # nothing relative to just running the final rung; drop it (but keep
        # at least one cheap rung).
        if len(rungs) > 1 and rungs[-1] * self.reduction > full_epochs:
            rungs.pop()
        ladder = rungs + [full_epochs]
        if self.max_rungs is not None and len(ladder) > self.max_rungs:
            ladder = ladder[-self.max_rungs :]
        return ladder

    def promote_count(self, num_candidates: int) -> int:
        """How many of ``num_candidates`` survive a rung."""
        return max(1, math.ceil(num_candidates / self.reduction))
