"""Search strategies behind the unified :class:`~repro.experiments.loop.SearchLoop`.

A strategy is the *policy* of a search — which candidates to try next —
separated from the *mechanics* (seeding, execution backend, evaluation
store, budget accounting, timing), which live in the loop.  The protocol is
three methods:

* ``propose(state)`` — the next batch of candidate structures to train (an
  empty list means the strategy has nothing left to try);
* ``observe(state, evaluations)`` — incorporate the finished evaluations
  (update surrogate models, filters, histories);
* ``finished(state)`` — whether the strategy is done regardless of budget.

The three policies of the paper's Sec. V comparison are registered under
``greedy`` (the progressive search of Alg. 2), ``random`` and ``bayes``;
:func:`register_strategy` makes new policies (evolutionary, portfolio, ...)
a one-file plug-in selected by the spec's ``search.strategy`` field.

The ported strategies draw from the shared ``state.rng`` in exactly the
same sequence as the legacy ``AutoSFSearch`` / ``RandomSearch`` /
``BayesSearch`` implementations, so a fixed seed produces the identical
trajectory through either API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple, runtime_checkable

import numpy as np

from repro.core.evaluator import CandidateEvaluation
from repro.core.filters import CandidateFilter
from repro.core.predictor import PerformancePredictor, get_feature_extractor
from repro.core.search_space import enumerate_f4_structures, extend_structure, random_structure
from repro.experiments.spec import ExperimentSpec
from repro.kge.scoring.blocks import BlockStructure
from repro.utils.config import ConfigError, PredictorConfig
from repro.utils.timing import TimingRecorder


@dataclass
class SearchState:
    """Shared, loop-owned state every strategy reads (and draws RNG from)."""

    rng: np.random.Generator
    budget: Optional[int] = None
    evaluations: List[CandidateEvaluation] = field(default_factory=list)
    timing: TimingRecorder = field(default_factory=TimingRecorder)
    #: ASHA rung executions performed by the loop (one dict per rung per
    #: round: rung index, epoch budget, candidates in/out, trained count).
    #: Empty for full-fidelity-only searches; ``evaluations`` / the budget
    #: always count only full-fidelity results.
    rung_history: List[Dict[str, int]] = field(default_factory=list)

    @property
    def num_evaluations(self) -> int:
        return len(self.evaluations)

    def remaining_budget(self) -> Optional[int]:
        """Evaluations left under the budget (``None`` when unbounded)."""
        if self.budget is None:
            return None
        return max(self.budget - self.num_evaluations, 0)

    def evaluations_with_blocks(self, num_blocks: int) -> List[CandidateEvaluation]:
        return [item for item in self.evaluations if item.structure.num_blocks == num_blocks]

    def top_structures(self, num_blocks: int, count: int) -> List[BlockStructure]:
        """Best ``count`` structures with ``num_blocks`` blocks, by valid MRR."""
        stage = self.evaluations_with_blocks(num_blocks)
        stage.sort(key=lambda item: -item.validation_mrr)
        return [item.structure for item in stage[:count]]


@runtime_checkable
class SearchStrategy(Protocol):
    """Candidate-selection policy driven by the unified search loop."""

    name: str

    def propose(self, state: SearchState) -> List[BlockStructure]:
        """Next batch of candidates to train (empty list: nothing left)."""
        ...  # pragma: no cover - protocol body

    def observe(self, state: SearchState, evaluations: Sequence[CandidateEvaluation]) -> None:
        """Incorporate finished evaluations into the strategy's state."""
        ...  # pragma: no cover - protocol body

    def finished(self, state: SearchState) -> bool:
        """Whether the strategy is exhausted (independent of the budget)."""
        ...  # pragma: no cover - protocol body

    def statistics(self) -> Dict[str, int]:
        """Filter/bookkeeping counters for the final report."""
        ...  # pragma: no cover - protocol body


class GreedyStrategy:
    """The progressive greedy search of Alg. 2 as a pluggable strategy.

    Stage ``b = 4`` proposes the deduplicated seed structures; every later
    stage ``b = 6, 8, ... B`` extends the top-``K1`` parents of stage
    ``b - 2`` by two random blocks, filters the pool (constraint C2 +
    invariance dedup), ranks it with the performance predictor and proposes
    the top ``K2``.
    """

    name = "greedy"

    def __init__(
        self,
        max_blocks: int = 6,
        candidates_per_step: int = 64,
        top_parents: int = 8,
        train_per_step: int = 8,
        use_filter: bool = True,
        use_predictor: bool = True,
        predictor_config: Optional[PredictorConfig] = None,
    ) -> None:
        self.max_blocks = max_blocks
        self.candidates_per_step = candidates_per_step
        self.top_parents = top_parents
        self.train_per_step = train_per_step
        self.use_filter = use_filter
        self.use_predictor = use_predictor
        self.candidate_filter = CandidateFilter(
            enforce_constraints=use_filter, deduplicate=use_filter
        )
        self.predictor: Optional[PerformancePredictor] = (
            PerformancePredictor(predictor_config or PredictorConfig())
            if use_predictor
            else None
        )
        self._stage = 4
        self._exhausted = False

    # ------------------------------------------------------------------
    # Stage logic (verbatim port of AutoSFSearch's RNG sequence)
    # ------------------------------------------------------------------
    def _seed_candidates(self, state: SearchState) -> List[BlockStructure]:
        """Stage b = 4: every distinct seed structure."""
        with state.timing.measure("filter"):
            seeds = enumerate_f4_structures(deduplicate=True)
            accepted = [seed for seed in seeds if self.candidate_filter.accept(seed)]
        if not accepted:
            # With the filter disabled the seeds are still the deduplicated
            # f4 structures; acceptance can only fail on duplicates.
            accepted = seeds
        return accepted

    def _generate_pool(self, state: SearchState, stage: int) -> List[BlockStructure]:
        """Steps 2–6 of Alg. 2: collect up to N filtered candidates."""
        parents = state.top_structures(stage - 2, self.top_parents)
        if not parents:
            return []
        pool: List[BlockStructure] = []
        pool_keys = set()
        max_attempts = 200 * self.candidates_per_step
        attempts = 0
        with state.timing.measure("filter"):
            while len(pool) < self.candidates_per_step and attempts < max_attempts:
                attempts += 1
                parent = parents[int(state.rng.integers(0, len(parents)))]
                candidate = extend_structure(parent, num_new_blocks=2, rng=state.rng)
                if candidate is None:
                    continue
                if self.use_filter:
                    if not self.candidate_filter.accept(candidate):
                        continue
                else:
                    # Without the filter only exact duplicates inside the pool
                    # are skipped, mirroring the "no filter" ablation.
                    if candidate.key() in pool_keys:
                        continue
                pool_keys.add(candidate.key())
                pool.append(candidate)
        return pool

    def _select_candidates(
        self, state: SearchState, pool: List[BlockStructure]
    ) -> List[BlockStructure]:
        """Step 7 of Alg. 2: keep the K2 most promising candidates."""
        if len(pool) <= self.train_per_step:
            return pool
        if self.predictor is not None and self.predictor.is_trained:
            with state.timing.measure("predictor"):
                return self.predictor.select_top(pool, self.train_per_step)
        selection = state.rng.choice(len(pool), size=self.train_per_step, replace=False)
        return [pool[int(index)] for index in selection]

    # ------------------------------------------------------------------
    # Strategy protocol
    # ------------------------------------------------------------------
    def propose(self, state: SearchState) -> List[BlockStructure]:
        if self._stage == 4:
            return self._seed_candidates(state)
        pool = self._generate_pool(state, self._stage)
        if not pool:
            self._exhausted = True
            return []
        return self._select_candidates(state, pool)

    def observe(self, state: SearchState, evaluations: Sequence[CandidateEvaluation]) -> None:
        for evaluation in evaluations:
            self.candidate_filter.record_history(evaluation.structure)
        self._stage += 2
        self._refit_predictor(state)

    def _refit_predictor(self, state: SearchState) -> None:
        """Steps 10–11 of Alg. 2: refit the predictor on the full history."""
        if self.predictor is None or not state.evaluations:
            return
        with state.timing.measure("predictor"):
            structures = [item.structure for item in state.evaluations]
            scores = [item.validation_mrr for item in state.evaluations]
            self.predictor.fit(structures, scores)

    def finished(self, state: SearchState) -> bool:
        return self._exhausted or self._stage > self.max_blocks

    def statistics(self) -> Dict[str, int]:
        return self.candidate_filter.statistics.as_dict()


class RandomStrategy:
    """Random structures with a fixed block count (the paper's "Random")."""

    name = "random"

    def __init__(self, num_blocks: int = 6, require_c2: bool = True) -> None:
        self.num_blocks = num_blocks
        self.require_c2 = require_c2
        self.dedup = CandidateFilter(enforce_constraints=require_c2, deduplicate=True)
        self._exhausted = False

    def propose(self, state: SearchState) -> List[BlockStructure]:
        for _attempt in range(200):
            candidate = random_structure(self.num_blocks, state.rng, require_c2=self.require_c2)
            if candidate is None:
                break
            if self.dedup.accept(candidate):
                return [candidate]
        self._exhausted = True
        return []

    def observe(self, state: SearchState, evaluations: Sequence[CandidateEvaluation]) -> None:
        return None  # dedup bookkeeping already happened during sampling

    def finished(self, state: SearchState) -> bool:
        return self._exhausted

    def statistics(self) -> Dict[str, int]:
        return self.dedup.statistics.as_dict()


class BayesStrategy:
    """Sequential model-based search with a Bayesian linear surrogate.

    A Bayesian-linear-regression surrogate over structure features ranks a
    pool of random candidates by an upper-confidence-bound acquisition, so
    promising regions are sampled more densely (the paper's "Bayes"
    baseline without requiring HyperOpt).
    """

    name = "bayes"

    def __init__(
        self,
        num_blocks: int = 6,
        feature_type: str = "srf",
        pool_size: int = 64,
        exploration_weight: float = 1.0,
        prior_precision: float = 1.0,
        noise_precision: float = 25.0,
    ) -> None:
        self.num_blocks = num_blocks
        self.extractor, self.feature_dimension = get_feature_extractor(feature_type)
        self.pool_size = pool_size
        self.exploration_weight = float(exploration_weight)
        self.prior_precision = float(prior_precision)
        self.noise_precision = float(noise_precision)
        self.dedup = CandidateFilter(enforce_constraints=True, deduplicate=True)
        self._observed_features: List[np.ndarray] = []
        self._observed_targets: List[float] = []
        self._exhausted = False

    # ------------------------------------------------------------------
    # Surrogate
    # ------------------------------------------------------------------
    def _posterior(self, features: np.ndarray, targets: np.ndarray):
        """Bayesian linear regression posterior (mean weights, covariance)."""
        dimension = features.shape[1]
        precision = self.prior_precision * np.eye(dimension)
        precision += self.noise_precision * features.T @ features
        covariance = np.linalg.inv(precision)
        mean = self.noise_precision * covariance @ features.T @ targets
        return mean, covariance

    def _acquisition(
        self, state: SearchState, candidates: List[BlockStructure]
    ) -> np.ndarray:
        """Upper-confidence-bound acquisition over the candidate pool."""
        candidate_features = np.stack([self.extractor(candidate) for candidate in candidates])
        if len(self._observed_features) < 2:
            return state.rng.random(len(candidates))
        features = np.stack(self._observed_features)
        targets = np.asarray(self._observed_targets, dtype=np.float64)
        mean, covariance = self._posterior(features, targets)
        predicted = candidate_features @ mean
        variance = np.einsum("ij,jk,ik->i", candidate_features, covariance, candidate_features)
        variance = np.maximum(variance, 0.0) + 1.0 / self.noise_precision
        return predicted + self.exploration_weight * np.sqrt(variance)

    # ------------------------------------------------------------------
    # Strategy protocol
    # ------------------------------------------------------------------
    def propose(self, state: SearchState) -> List[BlockStructure]:
        pool: List[BlockStructure] = []
        for _attempt in range(20 * self.pool_size):
            if len(pool) >= self.pool_size:
                break
            candidate = random_structure(self.num_blocks, state.rng, require_c2=True)
            if candidate is None:
                continue
            if self.dedup.explain(candidate) is None and all(
                candidate.key() != member.key() for member in pool
            ):
                pool.append(candidate)
        if not pool:
            self._exhausted = True
            return []
        scores = self._acquisition(state, pool)
        chosen = pool[int(np.argmax(scores))]
        self.dedup.accept(chosen)
        return [chosen]

    def observe(self, state: SearchState, evaluations: Sequence[CandidateEvaluation]) -> None:
        for evaluation in evaluations:
            self._observed_features.append(self.extractor(evaluation.structure))
            self._observed_targets.append(evaluation.validation_mrr)

    def finished(self, state: SearchState) -> bool:
        return self._exhausted

    def statistics(self) -> Dict[str, int]:
        return self.dedup.statistics.as_dict()


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
StrategyBuilder = Callable[[ExperimentSpec], SearchStrategy]

_STRATEGIES: Dict[str, StrategyBuilder] = {}


def register_strategy(name: str) -> Callable[[StrategyBuilder], StrategyBuilder]:
    """Register a builder ``ExperimentSpec -> SearchStrategy`` under ``name``.

    Usage::

        @register_strategy("evolutionary")
        def _build(spec: ExperimentSpec) -> SearchStrategy:
            return EvolutionaryStrategy(population=spec.search.pool_size)

    After registration, any spec with ``"search": {"strategy":
    "evolutionary"}`` runs the new policy through the same loop, run
    directory and CLI as the built-ins.
    """

    def decorator(builder: StrategyBuilder) -> StrategyBuilder:
        _STRATEGIES[name] = builder
        return builder

    return decorator


def available_strategies() -> Tuple[str, ...]:
    """Registered strategy names, sorted."""
    return tuple(sorted(_STRATEGIES))


def create_strategy(spec: ExperimentSpec) -> SearchStrategy:
    """Instantiate the strategy selected by ``spec.search.strategy``."""
    name = spec.search.strategy
    builder = _STRATEGIES.get(name)
    if builder is None:
        raise ConfigError(
            f"SearchSpec.strategy: unknown strategy {name!r} "
            f"(available: {', '.join(available_strategies())})"
        )
    return builder(spec)


@register_strategy("greedy")
def _build_greedy(spec: ExperimentSpec) -> SearchStrategy:
    search = spec.search
    return GreedyStrategy(
        max_blocks=search.max_blocks,
        candidates_per_step=search.candidates_per_step,
        top_parents=search.top_parents,
        train_per_step=search.train_per_step,
        use_filter=search.use_filter,
        use_predictor=search.use_predictor,
        predictor_config=spec.predictor,
    )


@register_strategy("random")
def _build_random(spec: ExperimentSpec) -> SearchStrategy:
    search = spec.search
    return RandomStrategy(num_blocks=search.num_blocks, require_c2=search.require_c2)


@register_strategy("bayes")
def _build_bayes(spec: ExperimentSpec) -> SearchStrategy:
    search = spec.search
    return BayesStrategy(
        num_blocks=search.num_blocks,
        feature_type=search.feature_type,
        pool_size=search.pool_size,
        exploration_weight=search.exploration_weight,
        prior_precision=search.prior_precision,
        noise_precision=search.noise_precision,
    )
