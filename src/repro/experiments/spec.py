"""The declarative experiment specification.

One :class:`ExperimentSpec` fully determines a run: which dataset to load,
how each candidate is trained, which search strategy spends the budget and
with what meta hyper-parameters, whether training hyper-parameters are tuned
first (HPO), where candidate training executes, and whether the best model
is exported as a serving artifact afterwards.  The spec is a plain nested
dict on disk (``spec.json`` inside every run directory) and a tree of small
dataclasses in memory:

========== =====================================================
section     contents
========== =====================================================
dataset     benchmark name *or* TSV directory, scale, seed
training    :class:`~repro.utils.config.TrainingConfig`
search      strategy name + budget + meta hyper-parameters
predictor   :class:`~repro.utils.config.PredictorConfig`
hpo         optional hyper-parameter tuning before the search
backend     execution backend for candidate training
scheduler   optional ASHA fidelity rungs for the search loop
export      serving-artifact export of the best model
obs         observability: metrics registry + trace spans
========== =====================================================

Every section supports ``to_dict``/``from_dict`` with defaulting (a missing
section means "use the defaults") and tolerant loading: unknown keys warn
and are skipped (so an old release can load a forward-versioned spec), while
type and range violations raise a descriptive
:class:`~repro.utils.config.ConfigError` naming the offending field.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.datasets import available_benchmarks, load_benchmark, load_tsv_dataset
from repro.datasets.knowledge_graph import KnowledgeGraph
from repro.datasets.pipeline import DEFAULT_SHARD_SIZE
from repro.utils.config import (
    EXECUTION_BACKENDS,
    ConfigError,
    PredictorConfig,
    SearchConfig,
    TrainingConfig,
    config_from_dict,
)
from repro.utils.serialization import from_json_file, to_json_file

PathLike = Union[str, Path]

#: Current spec schema version; bumped on incompatible layout changes.
SPEC_SCHEMA_VERSION = 1

#: HPO methods the runner knows how to execute.
HPO_METHODS = ("random", "tpe")


@dataclass
class StoreSpec:
    """A sharded on-disk triple store as the experiment's dataset source.

    ``path`` names a store directory written by ``repro-autosf ingest`` /
    :meth:`~repro.datasets.knowledge_graph.KnowledgeGraph.to_store`;
    ``mmap`` controls whether shards are memory-mapped while reading and
    ``shard_size`` is the shard granularity used when the spec *writes* a
    store (e.g. materializing a benchmark into one).
    """

    path: str = ""
    shard_size: int = DEFAULT_SHARD_SIZE
    mmap: bool = True

    def __post_init__(self) -> None:
        if not self.path or not isinstance(self.path, str):
            raise ConfigError("StoreSpec.path: must be a non-empty string")
        if self.shard_size <= 0:
            raise ConfigError("StoreSpec.shard_size: must be positive")

    def to_dict(self) -> Dict[str, Any]:
        return {"path": self.path, "shard_size": self.shard_size, "mmap": self.mmap}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StoreSpec":
        return config_from_dict(cls, data)


@dataclass
class DatasetSpec:
    """Which knowledge graph the experiment runs on.

    One of: a built-in miniature ``benchmark`` (scaled by ``scale`` and
    sub-sampled with ``seed``), a ``data`` directory holding
    ``train.txt``/``valid.txt``/``test.txt`` in the standard TSV format, or
    a sharded on-disk ``store`` section (see :class:`StoreSpec`).  When
    ``store`` is given it wins over the other two sources.
    """

    benchmark: str = "wn18rr"
    data: Optional[str] = None
    scale: float = 0.5
    seed: int = 0
    store: Optional[StoreSpec] = None

    def __post_init__(self) -> None:
        if isinstance(self.store, dict):
            self.store = StoreSpec.from_dict(self.store)
        elif self.store is not None and not isinstance(self.store, StoreSpec):
            raise ConfigError(
                f"DatasetSpec.store: expected a mapping or StoreSpec, "
                f"got {type(self.store).__name__} ({self.store!r})"
            )
        if (
            self.store is None
            and self.data is None
            and self.benchmark not in available_benchmarks()
        ):
            raise ConfigError(
                f"DatasetSpec.benchmark: unknown benchmark {self.benchmark!r} "
                f"(available: {', '.join(available_benchmarks())})"
            )
        if not 0 < self.scale <= 1.0:
            raise ConfigError("DatasetSpec.scale: must be in (0, 1]")

    def load(self) -> KnowledgeGraph:
        """Materialize the graph this section describes."""
        if self.store is not None:
            return KnowledgeGraph.from_store(self.store.path, mmap=self.store.mmap)
        if self.data:
            return load_tsv_dataset(self.data, name=str(self.data))
        return load_benchmark(self.benchmark, scale=self.scale, seed=self.seed)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "benchmark": self.benchmark,
            "data": self.data,
            "scale": self.scale,
            "seed": self.seed,
            "store": self.store.to_dict() if self.store is not None else None,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DatasetSpec":
        # __post_init__ coerces a plain-dict store section via
        # StoreSpec.from_dict, so no pre-conversion is needed here.
        return config_from_dict(cls, data)


@dataclass
class SearchSpec:
    """Which strategy spends the evaluation budget, and its hyper-parameters.

    ``strategy`` selects from the registry in
    :mod:`repro.experiments.strategies` (``greedy``, ``random``, ``bayes``,
    or any plug-in registered at runtime).  The meta hyper-parameters cover
    all built-in strategies; each strategy reads the subset it needs:

    * greedy — ``max_blocks``/``candidates_per_step``/``top_parents``/
      ``train_per_step``/``use_filter``/``use_predictor`` (Alg. 2);
    * random — ``num_blocks``/``require_c2``;
    * bayes  — ``num_blocks``/``pool_size``/``exploration_weight``/
      ``prior_precision``/``noise_precision``/``feature_type``.
    """

    strategy: str = "greedy"
    budget: Optional[int] = None
    # Greedy (Alg. 2) meta hyper-parameters.
    max_blocks: int = 6
    candidates_per_step: int = 64
    top_parents: int = 8
    train_per_step: int = 8
    use_filter: bool = True
    use_predictor: bool = True
    # Baseline (random / Bayes) hyper-parameters.
    num_blocks: int = 6
    require_c2: bool = True
    pool_size: int = 64
    exploration_weight: float = 1.0
    prior_precision: float = 1.0
    noise_precision: float = 25.0
    feature_type: str = "srf"

    def __post_init__(self) -> None:
        if not self.strategy or not isinstance(self.strategy, str):
            raise ConfigError("SearchSpec.strategy: must be a non-empty string")
        if self.budget is not None and self.budget <= 0:
            raise ConfigError("SearchSpec.budget: must be positive (or null for unbounded)")
        if self.num_blocks < 4 or self.num_blocks % 2 != 0:
            raise ConfigError("SearchSpec.num_blocks: must be an even number >= 4")
        if self.pool_size <= 0:
            raise ConfigError("SearchSpec.pool_size: must be positive")
        # The greedy meta-parameters share SearchConfig's validation; build
        # one to reuse its range checks.
        try:
            self.to_search_config()
        except ValueError as error:
            raise ConfigError(f"SearchSpec: {error}") from error

    def to_search_config(
        self,
        predictor: Optional[PredictorConfig] = None,
        seed: Optional[int] = 0,
        backend: str = "serial",
        num_workers: int = 1,
        cache_dir: Optional[str] = None,
    ) -> SearchConfig:
        """The legacy :class:`SearchConfig` view of this section."""
        return SearchConfig(
            max_blocks=self.max_blocks,
            candidates_per_step=self.candidates_per_step,
            top_parents=self.top_parents,
            train_per_step=self.train_per_step,
            use_filter=self.use_filter,
            use_predictor=self.use_predictor,
            predictor=predictor if predictor is not None else PredictorConfig(),
            seed=seed,
            backend=backend,
            num_workers=num_workers,
            cache_dir=cache_dir,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "strategy": self.strategy,
            "budget": self.budget,
            "max_blocks": self.max_blocks,
            "candidates_per_step": self.candidates_per_step,
            "top_parents": self.top_parents,
            "train_per_step": self.train_per_step,
            "use_filter": self.use_filter,
            "use_predictor": self.use_predictor,
            "num_blocks": self.num_blocks,
            "require_c2": self.require_c2,
            "pool_size": self.pool_size,
            "exploration_weight": self.exploration_weight,
            "prior_precision": self.prior_precision,
            "noise_precision": self.noise_precision,
            "feature_type": self.feature_type,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SearchSpec":
        return config_from_dict(cls, data)


@dataclass
class HPOSpec:
    """Optional training-hyper-parameter tuning run before the search.

    Mirrors Sec. V-A2 of the paper: tune learning rate / L2 / decay / batch
    size of a fixed benchmark model, then freeze them for the search.
    ``method`` is ``null`` (disabled, the default), ``"random"`` or
    ``"tpe"``.
    """

    method: Optional[str] = None
    model: str = "simple"
    num_trials: int = 8
    warmup_trials: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.method is not None and self.method not in HPO_METHODS:
            raise ConfigError(
                f"HPOSpec.method: unknown method {self.method!r} "
                f"(available: {', '.join(HPO_METHODS)}, or null to disable)"
            )
        if self.num_trials <= 0:
            raise ConfigError("HPOSpec.num_trials: must be positive")
        if self.warmup_trials < 2:
            raise ConfigError("HPOSpec.warmup_trials: must be at least 2")

    @property
    def enabled(self) -> bool:
        return self.method is not None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "method": self.method,
            "model": self.model,
            "num_trials": self.num_trials,
            "warmup_trials": self.warmup_trials,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "HPOSpec":
        return config_from_dict(cls, data)


@dataclass
class BackendSpec:
    """Where candidate training executes (see :mod:`repro.core.execution`).

    The ``host`` / ``port`` / timeout / retry fields only apply to (and are
    only serialized for) the ``"queue"`` backend — the socket-RPC work
    queue of :mod:`repro.core.distributed`.  For the queue backend,
    ``num_workers`` may be ``0``: rely entirely on external
    ``repro-autosf worker --connect host:port`` processes.
    """

    backend: str = "serial"
    num_workers: int = 1
    host: str = "127.0.0.1"
    port: int = 0
    heartbeat_timeout: float = 15.0
    worker_timeout: float = 60.0
    max_retries: int = 2

    def __post_init__(self) -> None:
        if self.backend not in EXECUTION_BACKENDS:
            raise ConfigError(
                f"BackendSpec.backend: unknown execution backend {self.backend!r} "
                f"(available: {', '.join(EXECUTION_BACKENDS)})"
            )
        if self.backend == "queue":
            if self.num_workers < 0:
                raise ConfigError(
                    "BackendSpec.num_workers: must be >= 0 for the queue "
                    "backend (0 means external workers only)"
                )
            if not 0 <= self.port <= 65535:
                raise ConfigError("BackendSpec.port: must be in [0, 65535]")
            if self.heartbeat_timeout <= 0:
                raise ConfigError("BackendSpec.heartbeat_timeout: must be positive")
            if self.worker_timeout <= 0:
                raise ConfigError("BackendSpec.worker_timeout: must be positive")
            if self.max_retries < 0:
                raise ConfigError("BackendSpec.max_retries: must be >= 0")
        elif self.num_workers <= 0:
            raise ConfigError("BackendSpec.num_workers: must be positive")

    def create(self):
        """Instantiate the configured execution backend."""
        from repro.core.execution import create_backend

        if self.backend == "queue":
            return create_backend(
                "queue",
                self.num_workers,
                host=self.host,
                port=self.port,
                heartbeat_timeout=self.heartbeat_timeout,
                worker_timeout=self.worker_timeout,
                max_retries=self.max_retries,
            )
        return create_backend(self.backend, self.num_workers)

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"backend": self.backend, "num_workers": self.num_workers}
        # Queue-only fields are serialized only for the queue backend, so
        # serial/process spec dumps (and their digests) stay byte-identical
        # to pre-queue releases.
        if self.backend == "queue":
            data.update(
                host=self.host,
                port=self.port,
                heartbeat_timeout=self.heartbeat_timeout,
                worker_timeout=self.worker_timeout,
                max_retries=self.max_retries,
            )
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BackendSpec":
        return config_from_dict(cls, data)


@dataclass
class SchedulerSpec:
    """ASHA successive-halving fidelity scheduling for the search loop.

    Disabled by default (every candidate trains at full fidelity).  When
    ``enabled``, the loop runs each proposed candidate front through a
    geometric epoch ladder and trains only promoted survivors at the full
    epoch budget — see :class:`repro.experiments.scheduler.FidelityScheduler`.
    """

    enabled: bool = False
    reduction: int = 3
    min_epochs: int = 1
    max_rungs: Optional[int] = None

    def __post_init__(self) -> None:
        from repro.experiments.scheduler import FidelityScheduler

        try:
            FidelityScheduler(
                reduction=self.reduction,
                min_epochs=self.min_epochs,
                max_rungs=self.max_rungs,
            )
        except ValueError as error:
            raise ConfigError(f"SchedulerSpec: {error}") from error

    def create(self):
        """The :class:`FidelityScheduler` this section describes (or ``None``)."""
        from repro.experiments.scheduler import FidelityScheduler

        if not self.enabled:
            return None
        return FidelityScheduler(
            reduction=self.reduction,
            min_epochs=self.min_epochs,
            max_rungs=self.max_rungs,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "enabled": self.enabled,
            "reduction": self.reduction,
            "min_epochs": self.min_epochs,
            "max_rungs": self.max_rungs,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SchedulerSpec":
        return config_from_dict(cls, data)


@dataclass
class ExportSpec:
    """Whether (and how) the best model is exported as a serving artifact."""

    enabled: bool = False
    with_metrics: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {"enabled": self.enabled, "with_metrics": self.with_metrics}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExportSpec":
        return config_from_dict(cls, data)


@dataclass
class ObsSpec:
    """Observability wiring for the run (see :mod:`repro.obs`).

    When ``enabled``, the runner installs a real metrics registry (dumped
    as ``metrics.json`` at the end of the run when ``metrics`` is true)
    and a trace recorder writing per-process span files under the run
    directory's ``trace/`` (when ``trace`` is true).  Disabled — the
    default — both sinks stay the process-global no-ops, so runs are
    bit-identical to un-instrumented ones.
    """

    enabled: bool = False
    trace: bool = True
    metrics: bool = True

    def to_dict(self) -> Dict[str, Any]:
        return {"enabled": self.enabled, "trace": self.trace, "metrics": self.metrics}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ObsSpec":
        return config_from_dict(cls, data)


@dataclass
class ExperimentSpec:
    """A fully declarative experiment: one spec, one reproducible run."""

    name: str = "experiment"
    seed: int = 0
    dataset: DatasetSpec = field(default_factory=DatasetSpec)
    training: TrainingConfig = field(default_factory=TrainingConfig)
    search: SearchSpec = field(default_factory=SearchSpec)
    predictor: PredictorConfig = field(default_factory=PredictorConfig)
    hpo: HPOSpec = field(default_factory=HPOSpec)
    backend: BackendSpec = field(default_factory=BackendSpec)
    scheduler: SchedulerSpec = field(default_factory=SchedulerSpec)
    export: ExportSpec = field(default_factory=ExportSpec)
    obs: ObsSpec = field(default_factory=ObsSpec)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigError("ExperimentSpec.name: must be a non-empty string")
        # Coerce plain-dict sections so ExperimentSpec(**json_dict) also works.
        coercers = {
            "dataset": DatasetSpec,
            "training": TrainingConfig,
            "search": SearchSpec,
            "predictor": PredictorConfig,
            "hpo": HPOSpec,
            "backend": BackendSpec,
            "scheduler": SchedulerSpec,
            "export": ExportSpec,
            "obs": ObsSpec,
        }
        for section, cls in coercers.items():
            value = getattr(self, section)
            if isinstance(value, dict):
                setattr(self, section, cls.from_dict(value))
            elif not isinstance(value, cls):
                raise ConfigError(
                    f"ExperimentSpec.{section}: expected a mapping or {cls.__name__}, "
                    f"got {type(value).__name__} ({value!r})"
                )

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def search_config(self, cache_dir: Optional[str] = None) -> SearchConfig:
        """The assembled legacy :class:`SearchConfig` for this spec."""
        return self.search.to_search_config(
            predictor=self.predictor,
            seed=self.seed,
            backend=self.backend.backend,
            num_workers=self.backend.num_workers,
            cache_dir=cache_dir,
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data = {
            "schema_version": SPEC_SCHEMA_VERSION,
            "name": self.name,
            "seed": self.seed,
            "dataset": self.dataset.to_dict(),
            "training": self.training.to_dict(),
            "search": self.search.to_dict(),
            "predictor": self.predictor.to_dict(),
            "hpo": self.hpo.to_dict(),
            "backend": self.backend.to_dict(),
            "export": self.export.to_dict(),
        }
        # Serialized only when customized: pre-obs/pre-scheduler specs (and
        # their digests, e.g. the golden run's manifest) keep byte-identical
        # spec dumps.
        if self.scheduler != SchedulerSpec():
            data["scheduler"] = self.scheduler.to_dict()
        if self.obs != ObsSpec():
            data["obs"] = self.obs.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentSpec":
        if not isinstance(data, dict):
            raise ConfigError(f"ExperimentSpec: expected a mapping, got {type(data).__name__}")
        data = dict(data)
        data.pop("schema_version", None)  # informational; layout changes bump it
        sections = {
            "dataset": DatasetSpec,
            "training": TrainingConfig,
            "search": SearchSpec,
            "predictor": PredictorConfig,
            "hpo": HPOSpec,
            "backend": BackendSpec,
            "scheduler": SchedulerSpec,
            "export": ExportSpec,
            "obs": ObsSpec,
        }
        for section, section_cls in sections.items():
            value = data.get(section)
            if isinstance(value, dict):
                data[section] = section_cls.from_dict(value)
            elif section in data and not isinstance(value, section_cls):
                raise ConfigError(
                    f"ExperimentSpec.{section}: expected a mapping, "
                    f"got {type(value).__name__} ({value!r})"
                )
        return config_from_dict(cls, data)

    def save(self, path: PathLike) -> Path:
        """Write the spec as JSON and return the resolved path."""
        return to_json_file(self.to_dict(), path)

    @classmethod
    def load(cls, path: PathLike) -> "ExperimentSpec":
        """Load a spec from a JSON file (raising :class:`ConfigError` on junk)."""
        try:
            data = from_json_file(path)
        except OSError as error:
            raise ConfigError(f"cannot read experiment spec {path}: {error}") from error
        except ValueError as error:
            raise ConfigError(f"experiment spec {path} is not valid JSON: {error}") from error
        return cls.from_dict(data)


def load_spec(path: PathLike) -> ExperimentSpec:
    """Module-level alias for :meth:`ExperimentSpec.load`."""
    return ExperimentSpec.load(path)
