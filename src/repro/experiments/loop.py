"""The single search driver behind every strategy.

:class:`SearchLoop` owns the mechanics that used to be re-implemented (or
forgotten) by each searcher: deterministic seeding, the execution backend,
the shared in-memory/persistent evaluation cache, budget accounting and
timing.  A strategy only decides *which* structures to train next; the loop
decides how they are trained, cached and recorded:

.. code-block:: text

    while budget remains and not strategy.finished(state):
        candidates = strategy.propose(state)        # policy
        evaluations = evaluator.evaluate_many(...)  # backend + cache
        record(evaluations)                         # history / anytime curve
        strategy.observe(state, evaluations)        # policy update

Because the loop routes *every* strategy through one
:class:`~repro.core.evaluator.CandidateEvaluator` (and, when given, one
:class:`~repro.core.store.EvaluationStore`), baseline runs now reuse
evaluations the greedy search already paid for — the legacy ``RandomSearch``
/ ``BayesSearch`` bypassed the store entirely and re-trained warm
candidates from scratch.  Re-running an interrupted loop against the same
store fast-forwards through completed evaluations (resume).
"""

from __future__ import annotations

import time
from typing import List, Optional, Union

import numpy as np

from repro.core.evaluator import CandidateEvaluation, CandidateEvaluator
from repro.core.execution import ExecutionBackend, create_backend
from repro.core.greedy_search import SearchRecord, SearchResult
from repro.core.invariance import canonical_key
from repro.core.store import EvaluationStore
from repro.datasets.knowledge_graph import KnowledgeGraph
from repro.experiments.scheduler import FidelityScheduler
from repro.experiments.strategies import SearchState, SearchStrategy
from repro.obs import trace as obs_trace
from repro.utils.config import TrainingConfig
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.timing import TimingRecorder


class SearchLoop:
    """Drive one :class:`SearchStrategy` under one evaluation protocol.

    Parameters
    ----------
    graph / training_config:
        The dataset and the per-candidate training recipe (shared by every
        strategy so budgets are directly comparable).
    strategy:
        The candidate-selection policy (see
        :mod:`repro.experiments.strategies`).
    seed:
        Master seed: seeds the strategy's RNG and (when an integer) derives
        a deterministic per-candidate training seed, making results
        independent of evaluation order and backend.
    backend / num_workers:
        Where candidate training runs; a backend instance wins over a name.
    store / cache_dir:
        Optional persistent evaluation cache shared across strategies and
        runs; ``cache_dir`` builds a store when none is passed.
    evaluator:
        Injectable for sharing one cache across several loops in-process;
        when given, ``store`` is ignored in favour of the evaluator's own.
    scheduler:
        Optional :class:`~repro.experiments.scheduler.FidelityScheduler`.
        When set, each proposed candidate front first runs through reduced-
        epoch rungs and only promoted survivors are trained at full
        fidelity; only those full-fidelity evaluations count toward the
        budget and reach ``strategy.observe``.
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        strategy: SearchStrategy,
        training_config: Optional[TrainingConfig] = None,
        *,
        seed: RngLike = 0,
        backend: Union[ExecutionBackend, str, None] = None,
        num_workers: int = 1,
        store: Optional[EvaluationStore] = None,
        cache_dir: Optional[str] = None,
        evaluator: Optional[CandidateEvaluator] = None,
        scheduler: Optional[FidelityScheduler] = None,
        timing: Optional[TimingRecorder] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.graph = graph
        self.strategy = strategy
        self.training_config = training_config or TrainingConfig()
        self.seed = seed
        self._rng = rng
        self.timing = timing if timing is not None else TimingRecorder()
        if isinstance(backend, str):
            backend = create_backend(backend, num_workers)
        self.backend = backend
        if store is None and cache_dir:
            store = EvaluationStore(cache_dir)
        if evaluator is not None:
            self.evaluator = evaluator
            self.store = evaluator.store
        else:
            self.store = store
            self.evaluator = CandidateEvaluator(
                graph,
                self.training_config,
                timing=self.timing,
                store=store,
                # Per-candidate seeding keeps a structure's training identical
                # across strategies, backends and evaluation order.
                base_seed=seed if isinstance(seed, (int, np.integer)) else None,
            )
        self.scheduler = scheduler
        self._rung_evaluators: dict = {}
        #: Total epochs actually trained (Σ candidates trained × their epoch
        #: budget) — the compute currency the ASHA bench target is stated in.
        self.total_training_epochs = 0
        #: Per-epoch-budget aggregates: {"evaluated", "trained", "promoted"}.
        self.rung_stats: dict = {}
        self._records: List[SearchRecord] = []
        # Candidate-lifecycle counters share the timing recorder's registry —
        # one sink for Table VII attribution and telemetry (no-op when off).
        registry = self.timing.registry
        strategy_label = {"strategy": getattr(strategy, "name", type(strategy).__name__)}
        self._m_proposed = registry.counter(
            "repro_search_candidates_proposed_total",
            help="Candidate structures proposed by the strategy.",
            labels=strategy_label,
        )
        self._m_evaluated = registry.counter(
            "repro_search_candidates_evaluated_total",
            help="Candidate evaluations recorded (trained or replayed).",
            labels=strategy_label,
        )
        self._m_trained = registry.counter(
            "repro_search_candidates_trained_total",
            help="Candidates actually trained (cache and store misses).",
            labels=strategy_label,
        )
        self._m_store_hits = registry.counter(
            "repro_search_store_hits_total",
            help="Candidate evaluations replayed from cache or store.",
            labels=strategy_label,
        )
        self._m_rounds = registry.counter(
            "repro_search_rounds_total",
            help="Propose/evaluate/observe rounds completed.",
            labels=strategy_label,
        )

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------
    def run(self, max_evaluations: Optional[int] = None) -> SearchResult:
        """Run the strategy to completion (or budget) and return the result.

        ``max_evaluations`` caps *recorded* evaluations, including replays
        from a persistent store — that is what lets an interrupted run
        resume to exactly the same budget instead of training
        ``max_evaluations`` fresh models on top of the cached ones.  Unlike
        the pre-unification greedy search, the cap also applies to the seed
        stage: a budget below the number of f4 seeds records exactly
        ``max_evaluations`` results instead of overshooting.

        Each call starts a fresh record list and budget; note however that
        stateful strategies (greedy stages, dedup filters, surrogates) carry
        their accumulated state across calls, so re-running usually wants a
        freshly built strategy.
        """
        self._records = []
        state = SearchState(
            rng=self._rng if self._rng is not None else ensure_rng(self.seed),
            budget=max_evaluations,
            timing=self.timing,
        )
        start_time = time.perf_counter()
        order = 0

        while True:
            remaining = state.remaining_budget()
            if remaining == 0:
                break
            if self.strategy.finished(state):
                break
            candidates = self.strategy.propose(state)
            if not candidates:
                break
            self._m_proposed.inc(len(candidates))
            if self.scheduler is None and remaining is not None:
                candidates = candidates[:remaining]
            trained_before = self.evaluator.num_trained
            # Everything inside this span is all-or-nothing per round: if the
            # backend (or a fidelity rung) fails, the exception propagates
            # before any record is appended, any evaluation reaches
            # ``state.evaluations`` or ``strategy.observe`` sees the round —
            # a partial batch can never corrupt strategy state.
            with obs_trace.span(
                "search.round", attrs={"candidates": len(candidates)}
            ) as round_span:
                if self.scheduler is not None:
                    candidates, order = self._run_rungs(
                        state, candidates, order, start_time
                    )
                    if remaining is not None:
                        candidates = candidates[:remaining]
                evaluations = self.evaluator.evaluate_many(
                    candidates, backend=self.backend
                )
            trained_now = self.evaluator.num_trained - trained_before
            self.total_training_epochs += trained_now * self.training_config.epochs
            self._m_rounds.inc()
            self._m_evaluated.inc(len(evaluations))
            self._m_trained.inc(trained_now)
            self._m_store_hits.inc(
                sum(1 for evaluation in evaluations if evaluation.from_cache)
            )
            round_span.attrs["trained"] = trained_now
            for evaluation in evaluations:
                order += 1
                self._records.append(
                    SearchRecord(
                        structure=evaluation.structure,
                        validation_mrr=evaluation.validation_mrr,
                        num_blocks=evaluation.structure.num_blocks,
                        stage=evaluation.structure.num_blocks,
                        order=order,
                        elapsed_seconds=time.perf_counter() - start_time,
                    )
                )
                state.evaluations.append(evaluation)
            self.strategy.observe(state, evaluations)

        return self._build_result()

    # ------------------------------------------------------------------
    # ASHA fidelity rungs
    # ------------------------------------------------------------------
    def _rung_evaluator(self, epochs: int) -> CandidateEvaluator:
        """A (cached) evaluator training at a reduced epoch budget.

        Rung evaluators share the loop's timing ledger and base seed but
        get their own persistent sub-store: store entries are keyed by the
        candidate alone, so mixing epoch budgets in one directory would let
        a cheap rung evaluation clobber a full-fidelity entry.
        """
        evaluator = self._rung_evaluators.get(epochs)
        if evaluator is None:
            store = None
            if self.store is not None:
                store = EvaluationStore(self.store.directory / f"rung_{epochs:04d}")
            evaluator = CandidateEvaluator(
                self.graph,
                self.training_config.replace(epochs=epochs),
                validation_split=self.evaluator.validation_split,
                timing=self.timing,
                store=store,
                base_seed=self.evaluator.base_seed,
            )
            self._rung_evaluators[epochs] = evaluator
        return evaluator

    def _run_rungs(self, state, candidates, order, start_time):
        """Run the reduced-epoch rungs; return (survivors, order).

        Promotion keeps the scheduler's top fraction per rung, ranked by
        validation MRR with a canonical-key tie-break so the schedule is
        deterministic across backends and worker counts.  The survivors are
        trained at full fidelity by the caller (the final rung *is* the
        plain evaluator, so survivor results match the full-fidelity path
        bit for bit).
        """
        ladder = self.scheduler.ladder(self.training_config.epochs)
        survivors = list(candidates)
        for rung_index, epochs in enumerate(ladder[:-1]):
            if len(survivors) <= 1:
                break
            evaluator = self._rung_evaluator(epochs)
            trained_before = evaluator.num_trained
            keep = self.scheduler.promote_count(len(survivors))
            with obs_trace.span(
                "search.rung",
                attrs={"rung": rung_index, "epochs": epochs, "candidates": len(survivors)},
            ) as rung_span:
                rung_evaluations = evaluator.evaluate_many(
                    survivors, backend=self.backend
                )
                trained = evaluator.num_trained - trained_before
                rung_span.attrs["trained"] = trained
                rung_span.attrs["promoted"] = keep
            self.total_training_epochs += trained * epochs
            for evaluation in rung_evaluations:
                order += 1
                self._records.append(
                    SearchRecord(
                        structure=evaluation.structure,
                        validation_mrr=evaluation.validation_mrr,
                        num_blocks=evaluation.structure.num_blocks,
                        stage=evaluation.structure.num_blocks,
                        order=order,
                        elapsed_seconds=time.perf_counter() - start_time,
                        rung=rung_index,
                        rung_epochs=epochs,
                        full_fidelity=False,
                    )
                )
            ranked = sorted(
                zip(survivors, rung_evaluations),
                key=lambda pair: (-pair[1].validation_mrr, canonical_key(pair[0])),
            )
            survivors = [structure for structure, _ in ranked[:keep]]
            stats = self.rung_stats.setdefault(
                epochs,
                {"rung": rung_index, "epochs": epochs, "evaluated": 0, "trained": 0, "promoted": 0},
            )
            stats["evaluated"] += len(rung_evaluations)
            stats["trained"] += trained
            stats["promoted"] += len(survivors)
            state.rung_history.append(
                {
                    "rung": rung_index,
                    "epochs": epochs,
                    "candidates": len(rung_evaluations),
                    "promoted": len(survivors),
                    "trained": trained,
                }
            )
        return survivors, order

    def _build_result(self) -> SearchResult:
        full_fidelity = [record for record in self._records if record.full_fidelity]
        if not full_fidelity:
            raise RuntimeError(
                f"{getattr(self.strategy, 'name', 'search')} strategy produced no evaluations"
            )
        best = max(full_fidelity, key=lambda record: record.validation_mrr)
        statistics = {}
        if hasattr(self.strategy, "statistics"):
            statistics = dict(self.strategy.statistics())
        return SearchResult(
            best_structure=best.structure,
            best_mrr=best.validation_mrr,
            records=list(self._records),
            timing=self.timing,
            filter_statistics=statistics,
        )
