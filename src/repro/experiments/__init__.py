"""Unified experiment API: declarative specs, pluggable strategies, run dirs.

This package is the stable seam between "what experiment to run" and "how it
runs":

* :mod:`repro.experiments.spec` — :class:`ExperimentSpec`, a declarative
  JSON-serializable description (dataset, training, search, predictor, HPO,
  backend, export) that fully determines a run;
* :mod:`repro.experiments.strategies` — the :class:`SearchStrategy`
  protocol (``propose`` / ``observe`` / ``finished``), the ported
  ``greedy`` / ``random`` / ``bayes`` policies of the paper's Sec. V
  comparison, and the :func:`register_strategy` plug-in registry;
* :mod:`repro.experiments.loop` — the single :class:`SearchLoop` driver
  owning seeding, the execution backend, the shared evaluation store,
  budgets and resume;
* :mod:`repro.experiments.runner` — :class:`ExperimentRunner` and the
  versioned run-directory contract (``spec.json`` / ``history.jsonl`` /
  ``report.json`` / ``best/`` / ``manifest.json``) consumed by the CLI's
  ``run`` / ``compare`` / ``export --run`` and the analysis helpers.

The legacy entry points (``AutoSFSearch``, ``RandomSearch``,
``BayesSearch``, ``search_scoring_function``) remain as thin shims over
this API with seed-identical trajectories.
"""

from repro.experiments.loop import SearchLoop
from repro.experiments.scheduler import FidelityScheduler
from repro.experiments.runner import (
    RUN_SCHEMA_VERSION,
    ExperimentRunner,
    RunDirectoryError,
    RunRecord,
    load_run,
    run_experiment,
    spec_digest,
    validate_run_directory,
)
from repro.experiments.spec import (
    SPEC_SCHEMA_VERSION,
    BackendSpec,
    DatasetSpec,
    ExperimentSpec,
    ExportSpec,
    HPOSpec,
    ObsSpec,
    SchedulerSpec,
    SearchSpec,
    StoreSpec,
    load_spec,
)
from repro.experiments.strategies import (
    BayesStrategy,
    GreedyStrategy,
    RandomStrategy,
    SearchState,
    SearchStrategy,
    available_strategies,
    create_strategy,
    register_strategy,
)

__all__ = [
    "SPEC_SCHEMA_VERSION",
    "RUN_SCHEMA_VERSION",
    "BackendSpec",
    "DatasetSpec",
    "ExperimentSpec",
    "ExportSpec",
    "HPOSpec",
    "ObsSpec",
    "SchedulerSpec",
    "SearchSpec",
    "StoreSpec",
    "load_spec",
    "FidelityScheduler",
    "SearchLoop",
    "SearchState",
    "SearchStrategy",
    "GreedyStrategy",
    "RandomStrategy",
    "BayesStrategy",
    "available_strategies",
    "create_strategy",
    "register_strategy",
    "ExperimentRunner",
    "RunRecord",
    "RunDirectoryError",
    "load_run",
    "run_experiment",
    "spec_digest",
    "validate_run_directory",
]
