"""Experiment runner and the versioned run-directory contract.

Running a spec produces one self-describing directory that every downstream
consumer (``repro-autosf compare``, ``repro-autosf export --run``, the
analysis helpers, a future dashboard) can rely on:

.. code-block:: text

    run-dir/
      spec.json        # the exact ExperimentSpec that produced the run
      manifest.json    # run schema version, status, spec digest, file list
      history.jsonl    # one JSON line per recorded evaluation, in order
      report.json      # best structure/MRR, anytime curve, timing, stats
      evaluations/     # persistent evaluation store (resume + cross-run cache)
      best/            # the best model, retrained & saved (KGEModel.save)
      artifact/        # optional serving artifact (spec.export.enabled)
      trace/           # optional per-process span files (spec.obs.enabled)
      metrics.json     # optional metrics-registry snapshot (spec.obs.enabled)

``history.jsonl`` is append-friendly and line-oriented so a monitoring tail
can follow a run in flight; everything else is plain JSON.  The manifest is
written twice — once with status ``running`` before the search starts and
once with ``completed`` at the end — so a crashed run is distinguishable
from a finished one.  :func:`validate_run_directory` checks the pieces and
raises :class:`RunDirectoryError` naming whatever is missing or corrupt.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.core.execution import derive_candidate_seed as _derive_seed
from repro.core.greedy_search import SearchResult
from repro.core.hpo import random_search_hpo, tpe_search_hpo
from repro.core.invariance import canonical_key
from repro.core.store import EvaluationStore
from repro.experiments.loop import SearchLoop
from repro.experiments.spec import SPEC_SCHEMA_VERSION, ExperimentSpec
from repro.experiments.strategies import create_strategy
from repro.kge.model import KGEModel, train_model
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.utils.config import ConfigError
from repro.utils.serialization import from_json_file, to_json_file, to_json_string

PathLike = Union[str, Path]

#: Current run-directory schema version; bumped on incompatible changes.
RUN_SCHEMA_VERSION = 1

SPEC_FILENAME = "spec.json"
MANIFEST_FILENAME = "manifest.json"
HISTORY_FILENAME = "history.jsonl"
REPORT_FILENAME = "report.json"
BEST_DIRNAME = "best"
ARTIFACT_DIRNAME = "artifact"
TRACE_DIRNAME = "trace"
METRICS_FILENAME = "metrics.json"

#: Files every completed run directory must carry.
_REQUIRED_FILES = (SPEC_FILENAME, MANIFEST_FILENAME, HISTORY_FILENAME, REPORT_FILENAME)


class RunDirectoryError(RuntimeError):
    """A run directory is missing pieces, corrupt, or inconsistent."""


def spec_digest(spec: ExperimentSpec) -> str:
    """Stable digest of a spec (recorded in the manifest for tamper checks)."""
    return hashlib.blake2b(
        to_json_string(spec.to_dict()).encode("utf-8"), digest_size=16
    ).hexdigest()


@dataclass
class RunRecord:
    """A loaded run directory: spec, manifest, report and history."""

    path: Path
    spec: ExperimentSpec
    manifest: Dict[str, Any]
    report: Dict[str, Any]
    history: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def name(self) -> str:
        return str(self.report.get("name", self.spec.name))

    @property
    def strategy(self) -> str:
        return str(self.report.get("strategy", self.spec.search.strategy))

    @property
    def best_mrr(self) -> float:
        return float(self.report["best_mrr"])

    def anytime_curve(self) -> List[float]:
        return [float(value) for value in self.report.get("anytime_curve", [])]

    def best_model_dir(self) -> Path:
        return self.path / BEST_DIRNAME

    def load_best_model(self) -> KGEModel:
        """The retrained best model saved under ``best/``."""
        return KGEModel.load(self.best_model_dir())


class ExperimentRunner:
    """Execute one :class:`ExperimentSpec` into a run directory."""

    def __init__(self, spec: ExperimentSpec, run_dir: PathLike) -> None:
        self.spec = spec
        self.run_dir = Path(run_dir)

    # ------------------------------------------------------------------
    # Pieces
    # ------------------------------------------------------------------
    def _write_manifest(self, status: str, extra: Optional[Dict[str, Any]] = None) -> None:
        manifest: Dict[str, Any] = {
            "run_schema_version": RUN_SCHEMA_VERSION,
            "spec_schema_version": SPEC_SCHEMA_VERSION,
            "name": self.spec.name,
            "strategy": self.spec.search.strategy,
            "status": status,
            "spec_digest": spec_digest(self.spec),
            "files": list(_REQUIRED_FILES),
        }
        if extra:
            manifest.update(extra)
        to_json_file(manifest, self.run_dir / MANIFEST_FILENAME)

    def _tune_training_config(self, graph):
        """Run the optional HPO section; return the (possibly tuned) config."""
        hpo = self.spec.hpo
        if not hpo.enabled:
            return self.spec.training, None
        tuner = random_search_hpo if hpo.method == "random" else tpe_search_hpo
        kwargs = {} if hpo.method == "random" else {"warmup_trials": hpo.warmup_trials}
        result = tuner(
            graph,
            base_config=self.spec.training,
            model_name=hpo.model,
            num_trials=hpo.num_trials,
            seed=hpo.seed,
            **kwargs,
        )
        summary = {
            "method": hpo.method,
            "model": hpo.model,
            "num_trials": len(result.trials),
            "best_mrr": result.best_mrr,
            "best_settings": {
                key: value
                for key, value in result.best_config.to_dict().items()
                if key in ("learning_rate", "l2_penalty", "decay_rate", "batch_size")
            },
            "trials": [
                {"settings": trial.settings, "validation_mrr": trial.validation_mrr}
                for trial in result.trials
            ],
        }
        return result.best_config, summary

    def _write_history(self, result: SearchResult) -> None:
        lines = []
        for record in sorted(result.records, key=lambda item: item.order):
            payload: Dict[str, Any] = {
                "order": record.order,
                "stage": record.stage,
                "num_blocks": record.num_blocks,
                "validation_mrr": record.validation_mrr,
                "elapsed_seconds": record.elapsed_seconds,
                "structure": {
                    "blocks": [list(block) for block in record.structure.blocks],
                    "name": record.structure.name,
                },
            }
            # Rung metadata only for scheduler-driven records: full-fidelity
            # histories stay byte-identical to pre-scheduler releases (the
            # golden run asserts this digest every tier-1 pass).
            if record.rung is not None:
                payload["rung"] = record.rung
                payload["rung_epochs"] = record.rung_epochs
                payload["full_fidelity"] = record.full_fidelity
            lines.append(to_json_string(payload, indent=None))
        (self.run_dir / HISTORY_FILENAME).write_text(
            "\n".join(lines) + ("\n" if lines else ""), encoding="utf-8"
        )

    def _train_best(self, graph, training_config, result: SearchResult) -> KGEModel:
        """Retrain the winning structure exactly as the search trained it.

        The per-candidate seed derivation matches the loop's, so the saved
        model is the very model whose validation MRR the report cites.  On
        resume, a ``best/`` checkpoint that already holds this structure
        under this configuration is reused instead of retrained — training
        is deterministic given the config's seed, so the checkpoint is the
        same model.
        """
        config = training_config
        if isinstance(self.spec.seed, int):
            config = config.replace(
                seed=_derive_seed(self.spec.seed, canonical_key(result.best_structure))
            )
        best_dir = self.run_dir / BEST_DIRNAME
        cached = self._load_matching_best(best_dir, config, result)
        if cached is not None:
            return cached
        model = train_model(graph, result.best_structure, config)
        model.save(best_dir, graph=graph)
        return model

    @staticmethod
    def _load_matching_best(best_dir, config, result: SearchResult) -> Optional[KGEModel]:
        if not best_dir.exists():
            return None
        try:
            model = KGEModel.load(best_dir)
        except Exception:  # half-written checkpoint: retrain and overwrite
            return None
        structure = getattr(model.scoring_function, "structure", None)
        if structure is None or structure.key() != result.best_structure.key():
            return None
        if model.config != config:
            return None
        return model

    def _export_artifact(self, model: KGEModel, graph) -> Optional[Path]:
        if not self.spec.export.enabled:
            return None
        # Imported here so the experiments layer has no hard dependency on
        # serving unless export is requested.
        from repro.serving import export_artifact

        metrics = None
        if self.spec.export.with_metrics:
            metrics = {}
            for split in ("valid", "test"):
                evaluation = model.evaluate(graph, split=split)
                for key, value in evaluation.as_dict().items():
                    metrics[f"{split}_{key}"] = value
        return export_artifact(
            model, self.run_dir / ARTIFACT_DIRNAME, graph=graph, metrics=metrics
        )

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self, max_evaluations: Optional[int] = None) -> RunRecord:
        """Execute the spec and return the loaded run record.

        Re-running against an existing run directory resumes: the evaluation
        store under ``evaluations/`` replays every completed candidate, so
        only unfinished work trains.  ``max_evaluations`` overrides the
        spec's ``search.budget`` when given.

        With ``spec.obs.enabled`` the run also produces telemetry inside
        the run directory: ``trace/`` with per-process span files (merge
        and read them with ``repro-autosf trace summarize <run-dir>``) and
        a ``metrics.json`` snapshot of the run's metrics registry.  Both
        sinks are installed process-globally for the duration of the run
        and restored afterwards.
        """
        started = time.time()
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.spec.save(self.run_dir / SPEC_FILENAME)
        self._write_manifest("running")

        obs = self.spec.obs
        registry: Optional[obs_metrics.MetricsRegistry] = None
        tracer: Optional[obs_trace.TraceRecorder] = None
        previous_registry = previous_tracer = None
        if obs.enabled and obs.metrics:
            registry = obs_metrics.MetricsRegistry()
            previous_registry = obs_metrics.set_registry(registry)
        if obs.enabled and obs.trace:
            tracer = obs_trace.TraceRecorder(self.run_dir / TRACE_DIRNAME)
            previous_tracer = obs_trace.set_tracer(tracer)
        try:
            graph = self.spec.dataset.load()
            with obs_trace.span("run.hpo"):
                training_config, hpo_summary = self._tune_training_config(graph)

            strategy = create_strategy(self.spec)
            loop = SearchLoop(
                graph,
                strategy,
                training_config,
                seed=self.spec.seed,
                backend=self.spec.backend.create(),
                store=EvaluationStore(self.run_dir),
                scheduler=self.spec.scheduler.create(),
            )
            budget = (
                max_evaluations if max_evaluations is not None else self.spec.search.budget
            )
            with obs_trace.span("run.search"):
                result = loop.run(max_evaluations=budget)

            self._write_history(result)
            with obs_trace.span("run.train_best"):
                model = self._train_best(graph, training_config, result)
            with obs_trace.span("run.export"):
                artifact_path = self._export_artifact(model, graph)
        finally:
            if registry is not None:
                obs_metrics.set_registry(previous_registry)
                to_json_file(registry.as_dict(), self.run_dir / METRICS_FILENAME)
            if tracer is not None:
                obs_trace.set_tracer(previous_tracer)
                tracer.close()

        report: Dict[str, Any] = {
            "name": self.spec.name,
            "strategy": strategy.name,
            "dataset": graph.name,
            "best_mrr": result.best_mrr,
            "best_structure": {
                "blocks": [list(block) for block in result.best_structure.blocks],
                "name": result.best_structure.name,
                "num_blocks": result.best_structure.num_blocks,
            },
            "num_evaluations": result.num_evaluations,
            "num_trained": loop.evaluator.num_trained,
            "anytime_curve": result.anytime_curve(),
            "filter_statistics": result.filter_statistics,
            "timing": result.timing.summary() if result.timing is not None else {},
            "training_config": training_config.to_dict(),
            "wall_seconds": time.time() - started,
        }
        if self.spec.scheduler.enabled:
            report["scheduler"] = {
                "total_training_epochs": loop.total_training_epochs,
                "rungs": [loop.rung_stats[epochs] for epochs in sorted(loop.rung_stats)],
            }
        if hpo_summary is not None:
            report["hpo"] = hpo_summary
        if artifact_path is not None:
            report["artifact"] = ARTIFACT_DIRNAME
        to_json_file(report, self.run_dir / REPORT_FILENAME)
        self._write_manifest("completed", extra={"wall_seconds": report["wall_seconds"]})
        return load_run(self.run_dir)


def run_experiment(spec: ExperimentSpec, run_dir: PathLike,
                   max_evaluations: Optional[int] = None) -> RunRecord:
    """Convenience wrapper: run ``spec`` into ``run_dir``."""
    return ExperimentRunner(spec, run_dir).run(max_evaluations=max_evaluations)


# ----------------------------------------------------------------------
# Loading / validation
# ----------------------------------------------------------------------
def _read_manifest(run_dir: Path) -> Dict[str, Any]:
    path = run_dir / MANIFEST_FILENAME
    if not path.exists():
        raise RunDirectoryError(f"{run_dir} is not a run directory: missing {MANIFEST_FILENAME}")
    try:
        manifest = from_json_file(path)
    except ValueError as error:
        raise RunDirectoryError(f"{run_dir}: corrupt {MANIFEST_FILENAME}: {error}") from error
    if not isinstance(manifest, dict):
        raise RunDirectoryError(f"{run_dir}: corrupt {MANIFEST_FILENAME}: not a JSON object")
    version = manifest.get("run_schema_version")
    if not isinstance(version, int):
        raise RunDirectoryError(
            f"{run_dir}: corrupt {MANIFEST_FILENAME}: missing run_schema_version"
        )
    if version > RUN_SCHEMA_VERSION:
        raise RunDirectoryError(
            f"{run_dir}: run_schema_version {version} is newer than this release "
            f"supports ({RUN_SCHEMA_VERSION}); upgrade to load it"
        )
    return manifest


def validate_run_directory(run_dir: PathLike) -> Dict[str, Any]:
    """Check a run directory's contract; return its manifest when sound.

    Raises :class:`RunDirectoryError` naming everything missing or corrupt.
    """
    base = Path(run_dir)
    if not base.is_dir():
        raise RunDirectoryError(f"run directory {base} does not exist")
    manifest = _read_manifest(base)
    missing = [name for name in manifest.get("files", _REQUIRED_FILES) if not (base / name).exists()]
    if missing:
        raise RunDirectoryError(
            f"{base}: incomplete run directory, missing {', '.join(sorted(missing))} "
            f"(status: {manifest.get('status', 'unknown')!r})"
        )
    return manifest


def load_run(run_dir: PathLike) -> RunRecord:
    """Load and validate a run directory written by :class:`ExperimentRunner`."""
    base = Path(run_dir)
    manifest = validate_run_directory(base)
    try:
        spec = ExperimentSpec.load(base / SPEC_FILENAME)
    except ConfigError as error:
        raise RunDirectoryError(f"{base}: invalid {SPEC_FILENAME}: {error}") from error
    try:
        report = from_json_file(base / REPORT_FILENAME)
    except ValueError as error:
        raise RunDirectoryError(f"{base}: corrupt {REPORT_FILENAME}: {error}") from error
    history: List[Dict[str, Any]] = []
    line_number = 0
    try:
        for line_number, line in enumerate(
            (base / HISTORY_FILENAME).read_text(encoding="utf-8").splitlines(), start=1
        ):
            if line.strip():
                history.append(json.loads(line))
    except ValueError as error:
        raise RunDirectoryError(
            f"{base}: corrupt {HISTORY_FILENAME} at line {line_number}: {error}"
        ) from error
    return RunRecord(path=base, spec=spec, manifest=manifest, report=report, history=history)
