"""Batched link-prediction serving: artifacts, inference engine, query service.

The serving subsystem turns a trained scoring function — the *output* of an
AutoSF search — into something deployable, in three layers:

* :mod:`repro.serving.artifact` — a versioned, self-contained model artifact
  (manifest + params + vocab) with descriptive validation errors;
* :mod:`repro.serving.engine` — the batched :class:`InferenceEngine`:
  heterogeneous head/tail queries grouped per relation through materialized
  :class:`~repro.kge.scoring.base.RelationOperator` s, ``argpartition``
  top-k, optional known-positive filtering, and LRU caching — with the naive
  ``KGEModel.predict_*`` path kept as the exact parity oracle;
* :mod:`repro.serving.service` — ``QueryRequest``/``QueryResponse``, TSV
  batch mode, and a dependency-free ``http.server`` JSON endpoint with
  latency/throughput counters and graceful SIGTERM/SIGINT drain;
* :mod:`repro.serving.fleet` — a pre-forked N-worker server sharing the
  memmap'd artifact (and a precomputed known-positive index) through the
  OS page cache, one inherited listener load-balancing across workers.
"""

from repro.serving.artifact import (
    ARTIFACT_SCHEMA_VERSION,
    ArtifactError,
    ModelArtifact,
    export_artifact,
    load_artifact,
)
from repro.serving.engine import (
    FILTER_INDEX_DIRNAME,
    HotRelationCache,
    InferenceEngine,
    MicroBatcher,
    known_positive_index,
    load_filter_index,
    save_filter_index,
)
from repro.serving.fleet import (
    ServingFleet,
    validate_serve_options,
    wait_until_healthy,
)
from repro.serving.service import (
    EngineReloader,
    QueryRequest,
    QueryResponse,
    QueryServer,
    answer_queries,
    create_server,
    format_response_rows,
    parse_query_line,
    read_query_file,
    serve_forever,
)

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "ArtifactError",
    "EngineReloader",
    "FILTER_INDEX_DIRNAME",
    "ModelArtifact",
    "export_artifact",
    "load_artifact",
    "HotRelationCache",
    "InferenceEngine",
    "MicroBatcher",
    "known_positive_index",
    "load_filter_index",
    "save_filter_index",
    "QueryRequest",
    "QueryResponse",
    "QueryServer",
    "ServingFleet",
    "answer_queries",
    "validate_serve_options",
    "wait_until_healthy",
    "create_server",
    "format_response_rows",
    "parse_query_line",
    "read_query_file",
    "serve_forever",
]
