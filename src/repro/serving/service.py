"""Query service: request/response schema, TSV batch mode, stdlib HTTP server.

Three consumption styles over the same :class:`InferenceEngine`:

* **Python** — build :class:`QueryRequest` objects and call
  :func:`answer_queries`;
* **batch files** — ``repro-autosf query --queries file.tsv`` reads one
  query per line in the triple-shaped format ``head<TAB>relation<TAB>?``
  (tail prediction) or ``?<TAB>relation<TAB>tail`` (head prediction), with
  entities/relations given as vocabulary labels or integer ids;
* **HTTP** — ``repro-autosf serve`` runs a dependency-free
  ``http.server``-based JSON endpoint: ``POST /query`` answers a single
  query or a ``{"queries": [...]}`` batch, ``POST /reload`` hot-swaps the
  served artifact generation (servers built with an
  :class:`EngineReloader`), ``GET /stats`` reports the
  engine's latency/throughput counters (via ``TimingRecorder``),
  ``GET /healthz`` describes the loaded artifact, and ``GET /metrics``
  exposes the worker's metrics registry in the Prometheus text format.

A :class:`QueryServer` can adopt an already-bound listener socket instead
of binding its own — that is how the pre-forked fleet in
:mod:`repro.serving.fleet` shares one accept queue across N workers — and
it shuts down gracefully on SIGTERM/SIGINT: the listener closes first, then
in-flight handler threads are drained before the process exits.  When built
with a :class:`~repro.serving.engine.MicroBatcher`, handler threads submit
through it so concurrent HTTP requests coalesce into shared engine calls.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.kge.scoring.base import HEAD, TAIL, validate_direction
from repro.obs import span
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    PROMETHEUS_CONTENT_TYPE,
    AnyRegistry,
    get_registry,
    render_prometheus,
)
from repro.serving.artifact import ModelArtifact, load_artifact
from repro.serving.engine import (
    FILTER_INDEX_DIRNAME,
    InferenceEngine,
    MicroBatcher,
    load_filter_index,
)

PathLike = Union[str, Path]

#: The placeholder marking the slot to predict in TSV query files.
QUERY_PLACEHOLDER = "?"


@dataclass
class QueryRequest:
    """One link-prediction query.

    ``entity`` is the *known* slot: the head for tail queries and the tail
    for head queries.  ``top_k`` bounds the answer length and ``filtered``
    removes known positives (requires an engine built with a filter index).
    """

    direction: str
    entity: int
    relation: int
    top_k: int = 10
    filtered: bool = False

    def __post_init__(self) -> None:
        validate_direction(self.direction)
        if self.top_k <= 0:
            raise ValueError("top_k must be positive")

    @classmethod
    def from_dict(cls, data: Dict[str, object], artifact: Optional[ModelArtifact] = None) -> "QueryRequest":
        """Build a request from a JSON payload, resolving labels via the artifact."""
        if not isinstance(data, dict):
            raise ValueError(f"a query must be a JSON object, got {type(data).__name__}")
        missing = [key for key in ("direction", "entity", "relation") if key not in data]
        if missing:
            raise ValueError(f"query is missing required fields: {', '.join(missing)}")
        entity, relation = data["entity"], data["relation"]
        if artifact is not None:
            entity = artifact.entity_id(entity)
            relation = artifact.relation_id(relation)
        return cls(
            direction=str(data["direction"]),
            entity=int(entity),
            relation=int(relation),
            top_k=int(data.get("top_k", 10)),
            filtered=bool(data.get("filtered", False)),
        )

    def as_tuple(self) -> Tuple[str, int, int]:
        return (self.direction, self.entity, self.relation)


@dataclass
class QueryResponse:
    """The answer to one query: labeled predictions plus the batch latency."""

    request: QueryRequest
    predictions: List[Dict[str, object]] = field(default_factory=list)
    latency_ms: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "direction": self.request.direction,
            "entity": self.request.entity,
            "relation": self.request.relation,
            "top_k": self.request.top_k,
            "filtered": self.request.filtered,
            "predictions": self.predictions,
            "latency_ms": self.latency_ms,
        }


def answer_queries(
    engine: Union[InferenceEngine, MicroBatcher],
    requests: Sequence[QueryRequest],
    artifact: Optional[ModelArtifact] = None,
) -> List[QueryResponse]:
    """Answer requests through the engine, grouping compatible ones per batch.

    Queries are batched per (top_k, filtered) setting — the common case of a
    homogeneous batch goes through the engine in one call.  Labels are
    attached from the artifact's vocabulary when available.  ``engine`` may
    also be a :class:`MicroBatcher` (same ``query_batch`` signature), in
    which case concurrent callers coalesce into shared engine calls.
    """
    responses: List[Optional[QueryResponse]] = [None] * len(requests)
    groups: Dict[Tuple[int, bool], List[int]] = {}
    for position, request in enumerate(requests):
        groups.setdefault((request.top_k, request.filtered), []).append(position)

    for (top_k, filtered), positions in groups.items():
        started = time.perf_counter()
        batch = engine.query_batch(
            [requests[position].as_tuple() for position in positions],
            top_k=top_k,
            filtered=filtered,
        )
        latency_ms = (time.perf_counter() - started) * 1000.0
        for position, predictions in zip(positions, batch):
            labeled = [
                {
                    "entity": entity,
                    "label": artifact.entity_label(entity) if artifact else f"e{entity}",
                    "score": score,
                }
                for entity, score in predictions
            ]
            responses[position] = QueryResponse(
                request=requests[position],
                predictions=labeled,
                latency_ms=latency_ms,
            )
    return [response for response in responses if response is not None]


# ----------------------------------------------------------------------
# TSV batch mode
# ----------------------------------------------------------------------
def parse_query_line(
    line: str,
    artifact: ModelArtifact,
    top_k: int = 10,
    filtered: bool = False,
) -> QueryRequest:
    """Parse one triple-shaped query line.

    ``head<TAB>relation<TAB>?`` asks for tails, ``?<TAB>relation<TAB>tail``
    for heads; exactly one of the two entity slots must be the placeholder.
    """
    parts = line.split("\t")
    if len(parts) != 3:
        raise ValueError(
            f"expected 3 tab-separated fields (head, relation, tail), got {len(parts)}"
        )
    head, relation, tail = (part.strip() for part in parts)
    if (head == QUERY_PLACEHOLDER) == (tail == QUERY_PLACEHOLDER):
        raise ValueError(
            f"exactly one of head/tail must be {QUERY_PLACEHOLDER!r} "
            f"(got head={head!r}, tail={tail!r})"
        )
    if tail == QUERY_PLACEHOLDER:
        direction, entity = TAIL, artifact.entity_id(head)
    else:
        direction, entity = HEAD, artifact.entity_id(tail)
    return QueryRequest(
        direction=direction,
        entity=entity,
        relation=artifact.relation_id(relation),
        top_k=top_k,
        filtered=filtered,
    )


def read_query_file(
    path: PathLike,
    artifact: ModelArtifact,
    top_k: int = 10,
    filtered: bool = False,
) -> List[QueryRequest]:
    """Read a TSV query file, skipping blank lines and ``#`` comments."""
    requests: List[QueryRequest] = []
    source = Path(path)
    with source.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line.strip() or line.lstrip().startswith("#"):
                continue
            try:
                requests.append(parse_query_line(line, artifact, top_k, filtered))
            except (KeyError, ValueError) as error:
                raise ValueError(f"{source}:{line_number}: {error}") from error
    return requests


def format_response_rows(responses: Sequence[QueryResponse], artifact: ModelArtifact) -> List[str]:
    """Render responses as TSV rows: query, rank, predicted entity, score."""
    rows = ["direction\tquery_entity\trelation\trank\tentity\tscore"]
    for response in responses:
        request = response.request
        relation_label = artifact.relation_label(request.relation)
        entity_label = artifact.entity_label(request.entity)
        for rank, prediction in enumerate(response.predictions, start=1):
            rows.append(
                f"{request.direction}\t{entity_label}\t{relation_label}\t"
                f"{rank}\t{prediction['label']}\t{prediction['score']:.6f}"
            )
    return rows


# ----------------------------------------------------------------------
# HTTP service
# ----------------------------------------------------------------------
def process_memory_info() -> Dict[str, int]:
    """Resident/shared/private bytes for this process (Linux ``/proc``).

    File-backed memmap pages show up as *shared* resident memory, so the
    honest per-worker footprint of the fleet is ``private_bytes`` — what the
    worker allocated itself, excluding the OS page cache it shares with its
    siblings.  Returns an empty dict on platforms without ``/proc``.
    """
    try:
        fields = Path("/proc/self/statm").read_text(encoding="ascii").split()
        page_size = os.sysconf("SC_PAGE_SIZE")
        resident = int(fields[1]) * page_size
        shared = int(fields[2]) * page_size
    except (OSError, IndexError, ValueError):  # pragma: no cover - non-Linux
        return {}
    return {
        "resident_bytes": resident,
        "shared_bytes": shared,
        "private_bytes": max(0, resident - shared),
    }


@dataclass
class EngineReloader:
    """Recipe for (re)building an engine stack from an artifact directory.

    A server built with a reloader can hot-swap generations: ``build()``
    loads the artifact, its saved filter index (``<dir>/filter_index``,
    when present) and a fresh :class:`InferenceEngine` + optional
    :class:`MicroBatcher`, entirely off to the side of the serving one.
    The swap itself is :meth:`QueryServer.reload` — a single pointer
    flip, so in-flight queries finish on the old generation and nothing
    is ever answered by a half-built engine.
    """

    artifact_dir: PathLike
    mmap: bool = False
    batch_size: int = 256
    entity_chunk_size: int = 0
    operator_cache_size: int = 256
    result_cache_size: int = 4096
    micro_batch_window_s: float = 0.0
    registry: Optional[AnyRegistry] = None

    def build(
        self, artifact_dir: Optional[PathLike] = None
    ) -> Tuple[ModelArtifact, InferenceEngine, Optional[MicroBatcher]]:
        """Construct a full engine stack; records ``artifact_dir`` for next time."""
        if artifact_dir is not None:
            self.artifact_dir = artifact_dir
        target = Path(self.artifact_dir)
        artifact = load_artifact(target, mmap=self.mmap)
        index_dir = target / FILTER_INDEX_DIRNAME
        filter_index = (
            load_filter_index(index_dir, mmap=self.mmap) if index_dir.is_dir() else None
        )
        engine = InferenceEngine.from_artifact(
            artifact,
            filter_index=filter_index,
            batch_size=self.batch_size,
            entity_chunk_size=self.entity_chunk_size,
            operator_cache_size=self.operator_cache_size,
            result_cache_size=self.result_cache_size,
            registry=self.registry,
        )
        batcher = (
            MicroBatcher(engine, window_s=self.micro_batch_window_s)
            if self.micro_batch_window_s > 0
            else None
        )
        return artifact, engine, batcher


class QueryServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one engine + artifact.

    Pass ``listen_socket`` to adopt an already-bound, already-listening
    socket instead of binding ``address`` — the pre-fork fleet binds once in
    the parent and every worker adopts the inherited listener, sharing one
    kernel accept queue.  ``install_signal_handlers()`` arranges a graceful
    SIGTERM/SIGINT drain: stop accepting, finish in-flight requests
    (``block_on_close`` joins handler threads), then close the listener.
    """

    daemon_threads = True
    #: Drain in-flight handler threads in ``server_close()``.
    block_on_close = True

    def __init__(
        self,
        address: Tuple[str, int],
        engine: InferenceEngine,
        artifact: Optional[ModelArtifact] = None,
        quiet: bool = True,
        listen_socket: Optional[socket.socket] = None,
        batcher: Optional[MicroBatcher] = None,
        worker_id: int = 0,
        registry: Optional[AnyRegistry] = None,
        reloader: Optional[EngineReloader] = None,
    ) -> None:
        if listen_socket is not None:
            # Adopt the inherited listener: skip bind/listen entirely.
            super().__init__(address, QueryHandler, bind_and_activate=False)
            self.socket.close()
            self.socket = listen_socket
            self.server_address = listen_socket.getsockname()
            self.server_name = self.server_address[0]
            self.server_port = self.server_address[1]
        else:
            super().__init__(address, QueryHandler)
        # The engine stack is one tuple so a hot swap is a single pointer
        # flip: handler threads that already grabbed the old tuple finish
        # their request on the old generation, never on a mixed stack.
        self._mount: Tuple[InferenceEngine, Optional[ModelArtifact], Optional[MicroBatcher]] = (
            engine,
            artifact,
            batcher,
        )
        self.reloader = reloader
        self.reloads = 0
        self._reload_lock = threading.Lock()
        self.quiet = quiet
        self.worker_id = int(worker_id)
        # Monotonic clock for uptime: wall-clock steps (NTP, DST) must
        # never produce a negative or jumping uptime_s in /stats.
        self.started_monotonic = time.monotonic()
        self.requests_served = 0
        self.errors = 0
        # Handler threads increment the counters concurrently.
        self.counter_lock = threading.Lock()
        self._shutdown_requested = threading.Event()
        self.registry = registry if registry is not None else get_registry()
        worker_labels = {"worker_id": str(self.worker_id)}
        self._m_requests = self.registry.counter(
            "repro_http_requests_total",
            help="HTTP requests answered successfully.",
            labels=worker_labels,
        )
        self._m_errors = self.registry.counter(
            "repro_http_errors_total",
            help="HTTP requests answered with an error status.",
            labels=worker_labels,
        )
        self._m_uptime = self.registry.gauge(
            "repro_worker_uptime_seconds",
            help="Seconds since this worker's server started (monotonic).",
            labels=worker_labels,
        )
        self.registry.gauge(
            "repro_worker_info",
            help="Static worker identity (value is always 1).",
            labels={"worker_id": str(self.worker_id), "pid": str(os.getpid())},
        ).set(1)
        self._m_reloads = self.registry.counter(
            "repro_live_reloads_total",
            help="Successful artifact hot-swaps.",
            labels=worker_labels,
        )
        self._m_reload_seconds = self.registry.histogram(
            "repro_live_reload_seconds",
            help="Wall time to build and swap in a new artifact generation.",
            labels=worker_labels,
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self._m_generation = self.registry.gauge(
            "repro_live_generation",
            help="Artifact generation currently being served.",
            labels=worker_labels,
        )
        if artifact is not None:
            self._m_generation.set(artifact.generation)

    @property
    def engine(self) -> InferenceEngine:
        return self._mount[0]

    @property
    def artifact(self) -> Optional[ModelArtifact]:
        return self._mount[1]

    @property
    def batcher(self) -> Optional[MicroBatcher]:
        return self._mount[2]

    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self.started_monotonic

    @property
    def query_target(self) -> Union[InferenceEngine, MicroBatcher]:
        """What handler threads submit queries through."""
        mount = self._mount
        return mount[2] if mount[2] is not None else mount[0]

    def reload(self, artifact_dir: Optional[PathLike] = None) -> ModelArtifact:
        """Hot-swap to the artifact at ``artifact_dir`` (default: last one).

        The new engine stack is fully constructed *before* the swap; the
        swap itself is an atomic ``_mount`` rebind, so requests in flight
        keep the old generation and no request ever observes a half-built
        engine.  On any load/validation error the old stack stays mounted
        and the error propagates to the caller.
        """
        if self.reloader is None:
            raise RuntimeError(
                "this server was built without an EngineReloader; "
                "pass reloader= to create_server() to enable /reload"
            )
        with self._reload_lock:
            started = time.perf_counter()
            with span("live.reload") as handle:
                artifact, engine, batcher = self.reloader.build(artifact_dir)
                # The old stack is not torn down: callers already inside it
                # (micro-batch followers included) drain on their own.
                self._mount = (engine, artifact, batcher)
                handle.attrs["generation"] = artifact.generation
                handle.attrs["worker_id"] = self.worker_id
            self.reloads += 1
            self._m_reloads.inc()
            self._m_reload_seconds.observe(time.perf_counter() - started)
            self._m_generation.set(artifact.generation)
            return artifact

    def _reload_from_signal(self) -> None:
        """Reload on a coordination signal; never kill the serving loop."""
        try:
            self.reload()
        except Exception as error:  # noqa: BLE001 - keep serving the old generation
            if not self.quiet:  # pragma: no cover - console logging only
                print(f"[serve] reload failed, keeping old generation: {error}")

    def install_reload_handler(self, signum: int = signal.SIGHUP) -> None:
        """Route ``signum`` (default SIGHUP) into an off-thread :meth:`reload`.

        The fleet parent sends SIGHUP to every worker after publishing a
        new generation; the handler thread rebuilds while the main thread
        keeps accepting queries against the old mount.
        """
        signal.signal(
            signum,
            lambda *_args: threading.Thread(
                target=self._reload_from_signal, name="query-server-reload", daemon=True
            ).start(),
        )

    def request_shutdown(self) -> None:
        """Trigger a graceful stop from any thread or signal handler.

        Idempotent.  ``shutdown()`` blocks until ``serve_forever`` exits, so
        it must not run inline in a signal handler (which executes on the
        very thread running ``serve_forever``) — hand it to a helper thread.
        """
        if self._shutdown_requested.is_set():
            return
        self._shutdown_requested.set()
        threading.Thread(target=self.shutdown, name="query-server-shutdown", daemon=True).start()

    def install_signal_handlers(
        self, signals: Sequence[int] = (signal.SIGTERM, signal.SIGINT)
    ) -> None:
        """Route SIGTERM/SIGINT into :meth:`request_shutdown` (main thread only)."""
        for signum in signals:
            signal.signal(signum, lambda *_args: self.request_shutdown())

    def count_request(self, error: bool = False) -> None:
        with self.counter_lock:
            if error:
                self.errors += 1
            else:
                self.requests_served += 1
        if error:
            self._m_errors.inc()
        else:
            self._m_requests.inc()


class QueryHandler(BaseHTTPRequestHandler):
    """Handler: ``POST /query``, ``GET /stats|/healthz|/metrics``."""

    server: QueryServer

    # -- plumbing ---------------------------------------------------------
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        if not self.server.quiet:  # pragma: no cover - console logging only
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: Dict[str, object]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self.server.count_request(error=True)
        self._send_json(status, {"error": message})

    # -- GET --------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server naming contract
        if self.path == "/healthz":
            payload: Dict[str, object] = {"status": "ok"}
            if self.server.artifact is not None:
                payload["artifact"] = self.server.artifact.describe()
            else:
                payload["scoring_function"] = self.server.engine.scoring_function.name
            self._send_json(200, payload)
        elif self.path == "/stats":
            # One mount snapshot for the whole response, so a concurrent
            # reload cannot mix old-engine stats with a new artifact.
            engine, artifact, batcher = self.server._mount
            stats = engine.stats()
            stats["uptime_s"] = self.server.uptime_s
            stats["http_requests"] = self.server.requests_served
            stats["http_errors"] = self.server.errors
            stats["reloads"] = self.server.reloads
            if artifact is not None:
                stats["artifact"] = {
                    "generation": artifact.generation,
                    "schema_version": artifact.schema_version,
                    "scoring_function": artifact.scoring_function.name,
                }
            stats["worker"] = {
                "worker_id": self.server.worker_id,
                "pid": os.getpid(),
                **process_memory_info(),
            }
            if batcher is not None:
                stats["micro_batcher"] = batcher.stats()
            self._send_json(200, stats)
        elif self.path == "/metrics":
            self.server.count_request()
            self.server._m_uptime.set(self.server.uptime_s)
            body = render_prometheus(self.server.registry).encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", PROMETHEUS_CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self._send_error_json(
                404, f"unknown path {self.path!r}; try /query, /stats, /healthz, /metrics"
            )

    # -- POST -------------------------------------------------------------
    def _do_reload(self) -> None:
        try:
            length = int(self.headers.get("Content-Length", 0))
            payload = json.loads(self.rfile.read(length) or b"{}")
            if not isinstance(payload, dict):
                raise ValueError("reload body must be a JSON object")
        except (ValueError, TypeError) as error:
            self._send_error_json(400, f"invalid JSON body: {error}")
            return
        artifact_dir = payload.get("artifact")
        if self.server.reloader is None:
            self._send_error_json(
                400,
                "this server was built without an EngineReloader; "
                "pass reloader= to create_server() to enable /reload",
            )
            return
        try:
            artifact = self.server.reload(artifact_dir)
        except Exception as error:  # noqa: BLE001 - old generation stays mounted
            self._send_error_json(500, f"reload failed, still serving the old generation: {error}")
            return
        self.server.count_request()
        self._send_json(
            200,
            {
                "status": "reloaded",
                "generation": artifact.generation,
                "schema_version": artifact.schema_version,
                "reloads": self.server.reloads,
            },
        )

    def do_POST(self) -> None:  # noqa: N802 - http.server naming contract
        if self.path == "/reload":
            self._do_reload()
            return
        if self.path != "/query":
            self._send_error_json(404, f"unknown path {self.path!r}; POST to /query")
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            payload = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, TypeError) as error:
            self._send_error_json(400, f"invalid JSON body: {error}")
            return
        try:
            if isinstance(payload, dict) and "queries" in payload:
                raw_queries = payload["queries"]
                if not isinstance(raw_queries, list):
                    raise ValueError('"queries" must be a list of query objects')
                requests = [
                    QueryRequest.from_dict(entry, self.server.artifact)
                    for entry in raw_queries
                ]
                batched = True
            else:
                requests = [QueryRequest.from_dict(payload, self.server.artifact)]
                batched = False
        except (KeyError, ValueError) as error:
            self._send_error_json(400, str(error))
            return
        try:
            responses = answer_queries(self.server.query_target, requests, self.server.artifact)
        except ValueError as error:
            self._send_error_json(400, str(error))
            return
        self.server.count_request()
        if batched:
            self._send_json(200, {"responses": [response.to_dict() for response in responses]})
        else:
            self._send_json(200, responses[0].to_dict())


def create_server(
    engine: InferenceEngine,
    artifact: Optional[ModelArtifact] = None,
    host: str = "127.0.0.1",
    port: int = 8080,
    quiet: bool = True,
    listen_socket: Optional[socket.socket] = None,
    batcher: Optional[MicroBatcher] = None,
    worker_id: int = 0,
    registry: Optional[AnyRegistry] = None,
    reloader: Optional[EngineReloader] = None,
) -> QueryServer:
    """Bind a :class:`QueryServer` (port 0 picks a free port, handy in tests)."""
    return QueryServer(
        (host, port),
        engine,
        artifact,
        quiet=quiet,
        listen_socket=listen_socket,
        batcher=batcher,
        worker_id=worker_id,
        registry=registry,
        reloader=reloader,
    )


def serve_forever(
    engine: InferenceEngine,
    artifact: Optional[ModelArtifact] = None,
    host: str = "127.0.0.1",
    port: int = 8080,
    micro_batch_window_s: float = 0.0,
    registry: Optional[AnyRegistry] = None,
    reloader: Optional[EngineReloader] = None,
) -> None:  # pragma: no cover - blocking loop, exercised manually via the CLI
    """Run the single-process query service until SIGTERM/SIGINT, then drain."""
    batcher = MicroBatcher(engine, window_s=micro_batch_window_s) if micro_batch_window_s > 0 else None
    server = create_server(
        engine, artifact, host, port, quiet=False, batcher=batcher, registry=registry,
        reloader=reloader,
    )
    server.install_signal_handlers()
    if reloader is not None:
        server.install_reload_handler()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
