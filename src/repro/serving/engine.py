"""The batched link-prediction inference engine.

The naive query path (:meth:`repro.kge.model.KGEModel.predict_tails` /
``predict_heads``) scores one query at a time: it gathers the relation's
parameters per query, runs batch-of-one candidate scoring, and selects from
the full entity set.  :class:`InferenceEngine` serves the same queries in
bulk:

* heterogeneous head/tail queries are **grouped by (relation, direction)**
  and each group answered through the relation's materialized
  :class:`~repro.kge.scoring.base.RelationOperator` — the relation's
  parameters are gathered, signed and reshaped exactly once, and for
  bilinear families scoring collapses to a single GEMM per micro-batch
  instead of one small GEMM per block per query;
* queries run in **micro-batches** (``batch_size`` queries against the full
  entity table), bounding peak memory at ``batch_size x num_entities``
  scores;
* top-k selection uses ``argpartition`` via the shared
  :func:`repro.kge.topk.top_k_indices` helper, with canonical tie-breaking
  (descending score, then ascending entity index);
* known positives can be **filtered** through the same CSR-style
  :class:`~repro.datasets.knowledge_graph.FilterIndex` that filtered
  evaluation uses, so served predictions are unseen triples;
* materialized operators and finished (entity, relation) answers live in
  bounded **LRU caches**, so repeated queries cost a dictionary hit.

The engine's results are *exactly* those of the naive path — same entities,
same order, same tie-breaking — which the parity tests pin per scoring
family, mirroring the reference-oracle pattern of the execution and
training engines.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.datasets.knowledge_graph import FilterIndex, KnowledgeGraph
from repro.kge.scoring.base import HEAD, TAIL, ParamDict, ScoringFunction, validate_direction
from repro.kge.topk import mask_known_scores, select_predictions_batch
from repro.serving.artifact import ModelArtifact
from repro.utils.timing import TimingRecorder

#: One prediction: (entity index, score).
Prediction = Tuple[int, float]

#: One heterogeneous query: (direction, entity, relation).
Query = Tuple[str, int, int]


def known_positive_index(
    graph: KnowledgeGraph, splits: Sequence[str] = ("train", "valid")
) -> FilterIndex:
    """A :class:`FilterIndex` over the chosen splits, for serving-side filtering.

    Defaults to train+valid: those are the triples the deployment already
    knows, while test stands in for the unseen future the engine should be
    free to predict.  Accepts either an in-memory
    :class:`~repro.datasets.knowledge_graph.KnowledgeGraph` or a sharded
    :class:`~repro.datasets.pipeline.TripleStore`; the store path streams
    shard by shard instead of concatenating the splits.
    """
    if hasattr(graph, "iter_shards"):  # a sharded TripleStore
        from repro.datasets.pipeline import build_filter_index

        return build_filter_index(graph, splits=splits)
    triples = np.concatenate([graph.split(split) for split in splits], axis=0)
    return FilterIndex.build(triples, graph.num_relations)


class InferenceEngine:
    """Batched, relation-materialized link-prediction inference.

    Parameters
    ----------
    scoring_function, params:
        The trained model to serve.
    filter_index:
        Optional known-positive index; required to answer ``filtered=True``
        queries (build one with :func:`known_positive_index`).
    batch_size:
        Queries per micro-batch; the score slab is ``batch_size x
        num_entities`` floats, which for dot-product families is also the
        peak transient memory.
    entity_chunk_size:
        Optional entity-axis chunking for the scoring step (``0`` scores all
        entities at once).  Distance-based families (TransE, RotatE)
        materialize a ``batch x entities x dimension`` difference tensor
        while scoring; chunking bounds that transient at ``batch_size x
        entity_chunk_size x dimension`` — the serving-side analogue of the
        training engine's ``score_chunk_size``.
    operator_cache_size / result_cache_size:
        LRU capacities for materialized relation operators and for finished
        (direction, entity, relation, top_k, filtered) answers.
    recorder:
        Optional :class:`TimingRecorder`; the engine attributes time to the
        ``project`` / ``score`` / ``select`` phases and counts queries and
        cache hits, which the serve endpoint reports.
    """

    def __init__(
        self,
        scoring_function: ScoringFunction,
        params: ParamDict,
        filter_index: Optional[FilterIndex] = None,
        batch_size: int = 256,
        entity_chunk_size: int = 0,
        operator_cache_size: int = 256,
        result_cache_size: int = 4096,
        recorder: Optional[TimingRecorder] = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if entity_chunk_size < 0:
            raise ValueError("entity_chunk_size must be non-negative (0 disables chunking)")
        if operator_cache_size <= 0:
            raise ValueError("operator_cache_size must be positive")
        if result_cache_size < 0:
            raise ValueError("result_cache_size must be non-negative")
        self.scoring_function = scoring_function
        self.params = params
        self.filter_index = filter_index
        self.batch_size = int(batch_size)
        self.entity_chunk_size = int(entity_chunk_size)
        self.num_entities = int(params["entities"].shape[0])
        self.num_relations = int(params["relations"].shape[0])
        self.recorder = recorder if recorder is not None else TimingRecorder()
        self._operator_cache_size = int(operator_cache_size)
        self._result_cache_size = int(result_cache_size)
        self._operators: "OrderedDict[Tuple[int, str], object]" = OrderedDict()
        self._results: "OrderedDict[tuple, Tuple[Prediction, ...]]" = OrderedDict()
        # The caches are mutated on every query; one lock makes the engine
        # safe under the threading HTTP server (batching, not concurrency,
        # is the throughput mechanism here).
        self._lock = threading.Lock()
        self.queries_served = 0
        self.cache_hits = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_artifact(
        cls, artifact: ModelArtifact, **kwargs: object
    ) -> "InferenceEngine":
        """Build an engine straight from a loaded serving artifact."""
        return cls(artifact.scoring_function, artifact.params, **kwargs)

    # ------------------------------------------------------------------
    # Caches
    # ------------------------------------------------------------------
    def _operator(self, relation: int, direction: str):
        key = (int(relation), direction)
        operator = self._operators.get(key)
        if operator is None:
            operator = self.scoring_function.relation_operator(
                self.params, relation, direction
            )
            self._operators[key] = operator
            if len(self._operators) > self._operator_cache_size:
                self._operators.popitem(last=False)
        else:
            self._operators.move_to_end(key)
        return operator

    def _cached_result(self, key: tuple) -> Optional[Tuple[Prediction, ...]]:
        result = self._results.get(key)
        if result is not None:
            self._results.move_to_end(key)
        return result

    def _store_result(self, key: tuple, result: Tuple[Prediction, ...]) -> None:
        if self._result_cache_size == 0:
            return
        self._results[key] = result
        if len(self._results) > self._result_cache_size:
            self._results.popitem(last=False)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _check_query(self, direction: str, entity: int, relation: int, filtered: bool) -> Query:
        validate_direction(direction)
        entity = int(entity)
        relation = int(relation)
        if not 0 <= entity < self.num_entities:
            raise ValueError(
                f"entity id {entity} out of range [0, {self.num_entities})"
            )
        if not 0 <= relation < self.num_relations:
            raise ValueError(
                f"relation id {relation} out of range [0, {self.num_relations})"
            )
        if filtered and self.filter_index is None:
            raise ValueError(
                "filtered queries need a filter index; construct the engine "
                "with filter_index=known_positive_index(graph)"
            )
        return (direction, entity, relation)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def predict_tails(
        self, head: int, relation: int, top_k: int = 10, filtered: bool = False
    ) -> List[Prediction]:
        """Top-k candidate tails for ``(head, relation, ?)``."""
        return self.query_batch([(TAIL, head, relation)], top_k=top_k, filtered=filtered)[0]

    def predict_heads(
        self, relation: int, tail: int, top_k: int = 10, filtered: bool = False
    ) -> List[Prediction]:
        """Top-k candidate heads for ``(?, relation, tail)``."""
        return self.query_batch([(HEAD, tail, relation)], top_k=top_k, filtered=filtered)[0]

    def query_batch(
        self,
        queries: Sequence[Union[Query, Sequence[object]]],
        top_k: int = 10,
        filtered: bool = False,
    ) -> List[List[Prediction]]:
        """Answer heterogeneous (direction, entity, relation) queries.

        Results are returned in input order, each a list of (entity, score)
        pairs ordered by descending score with ties broken by entity index.
        With ``filtered=True`` known positives are removed, so saturated
        queries may return fewer than ``top_k`` pairs.
        """
        with self._lock:
            return self._query_batch_locked(queries, top_k, filtered)

    def _query_batch_locked(
        self,
        queries: Sequence[Union[Query, Sequence[object]]],
        top_k: int,
        filtered: bool,
    ) -> List[List[Prediction]]:
        top_k = int(top_k)
        if top_k <= 0:
            raise ValueError("top_k must be positive")
        normalized = [
            self._check_query(direction, entity, relation, filtered)
            for direction, entity, relation in queries
        ]
        self.queries_served += len(normalized)

        results: List[Optional[Tuple[Prediction, ...]]] = [None] * len(normalized)
        pending: Dict[Query, List[int]] = {}
        for position, query in enumerate(normalized):
            cached = self._cached_result((*query, top_k, filtered))
            if cached is not None:
                self.cache_hits += 1
                results[position] = cached
            else:
                # Keyed by the full query, so duplicates within one batch are
                # scored once and fanned out to every requesting position.
                pending.setdefault(query, []).append(position)

        # Order the unique queries by (direction, relation) group, then
        # process them in slabs of ``batch_size`` rows: scoring still runs
        # per group segment (one materialized operator each), but top-k
        # selection sees a whole slab at once — essential when a batch
        # spreads thinly over many relations.  Peak memory stays at
        # batch_size x num_entities scores.
        work_list = sorted(pending, key=lambda query: (query[0], query[2]))
        for slab_begin in range(0, len(work_list), self.batch_size):
            slab = work_list[slab_begin : slab_begin + self.batch_size]
            scores = np.empty((len(slab), self.num_entities), dtype=np.float64)
            segment_begin = 0
            while segment_begin < len(slab):
                direction, _, relation = slab[segment_begin]
                segment_end = segment_begin
                while (
                    segment_end < len(slab)
                    and slab[segment_end][0] == direction
                    and slab[segment_end][2] == relation
                ):
                    segment_end += 1
                entities = np.asarray(
                    [entity for _d, entity, _r in slab[segment_begin:segment_end]],
                    dtype=np.int64,
                )
                operator = self._operator(relation, direction)
                with self.recorder.measure("project"):
                    projection = operator.project(entities)
                with self.recorder.measure("score"):
                    chunk = self.entity_chunk_size or self.num_entities
                    for start in range(0, self.num_entities, chunk):
                        stop = min(start + chunk, self.num_entities)
                        scores[segment_begin:segment_end, start:stop] = operator.score(
                            projection, start, stop
                        )
                if filtered:
                    mask_known_scores(
                        scores[segment_begin:segment_end],
                        self.filter_index,
                        entities,
                        np.full_like(entities, relation),
                        direction,
                    )
                segment_begin = segment_end
            with self.recorder.measure("select"):
                selected = select_predictions_batch(scores, top_k)
                for query, (order, top_scores) in zip(slab, selected):
                    answer = tuple(zip(order.tolist(), top_scores.tolist()))
                    self._store_result((*query, top_k, filtered), answer)
                    for position in pending[query]:
                        results[position] = answer

        return [list(result) for result in results]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Counters + per-phase timings for the serve endpoint's /stats.

        Takes the engine lock: the caches and the recorder are mutated by
        concurrent query threads, and iterating them mid-query would race.
        """
        with self._lock:
            return self._stats_locked()

    def _stats_locked(self) -> Dict[str, object]:
        return {
            "scoring_function": self.scoring_function.name,
            "num_entities": self.num_entities,
            "num_relations": self.num_relations,
            "queries_served": self.queries_served,
            "cache_hits": self.cache_hits,
            "cached_operators": len(self._operators),
            "cached_results": len(self._results),
            "timings": self.recorder.summary(),
        }

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return (
            f"InferenceEngine({self.scoring_function.name!r}, "
            f"entities={self.num_entities}, relations={self.num_relations}, "
            f"filtered={'yes' if self.filter_index is not None else 'no'})"
        )
