"""The batched link-prediction inference engine.

The naive query path (:meth:`repro.kge.model.KGEModel.predict_tails` /
``predict_heads``) scores one query at a time: it gathers the relation's
parameters per query, runs batch-of-one candidate scoring, and selects from
the full entity set.  :class:`InferenceEngine` serves the same queries in
bulk:

* heterogeneous head/tail queries are **grouped by (relation, direction)**
  and each group answered through the relation's materialized
  :class:`~repro.kge.scoring.base.RelationOperator` — the relation's
  parameters are gathered, signed and reshaped exactly once, and for
  bilinear families scoring collapses to a single GEMM per micro-batch
  instead of one small GEMM per block per query;
* queries run in **micro-batches** (``batch_size`` queries against the full
  entity table), bounding peak memory at ``batch_size x num_entities``
  scores;
* top-k selection uses ``argpartition`` via the shared
  :func:`repro.kge.topk.top_k_indices` helper, with canonical tie-breaking
  (descending score, then ascending entity index);
* known positives can be **filtered** through the same CSR-style
  :class:`~repro.datasets.knowledge_graph.FilterIndex` that filtered
  evaluation uses, so served predictions are unseen triples;
* finished (entity, relation) answers live in a bounded **LRU cache**, and
  materialized operators live in a :class:`HotRelationCache` — size-bounded
  with *frequency-gated admission*: a relation's operator is only cached
  once the relation has proven hot, so one-off scans cannot evict the head
  of a skewed (Zipfian) relation distribution;
* concurrent callers (the serving fleet's handler threads) can go through a
  :class:`MicroBatcher`, which coalesces query batches arriving within a
  small window into one ``query_batch`` call — amortizing operator
  materialization and slab-vectorized top-k across requests exactly like
  the train engine amortizes per-batch work.

The engine never writes to its parameter arrays, so it is safe over the
read-only memmap views a multi-worker fleet shares
(``load_artifact(mmap=True)``); all mutable state (caches, counters) is
process-local and lock-protected.

The engine's results are *exactly* those of the naive path — same entities,
same order, same tie-breaking — which the parity tests pin per scoring
family, mirroring the reference-oracle pattern of the execution and
training engines.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.datasets.knowledge_graph import FilterIndex, KnowledgeGraph, _DirectionIndex
from repro.kge.scoring.base import HEAD, TAIL, ParamDict, ScoringFunction, validate_direction
from repro.kge.topk import mask_known_scores, select_predictions_batch
from repro.obs.metrics import AnyRegistry, get_registry
from repro.serving.artifact import ModelArtifact
from repro.utils.serialization import from_json_file, to_json_file
from repro.utils.timing import TimingRecorder

PathLike = Union[str, Path]

#: One prediction: (entity index, score).
Prediction = Tuple[int, float]

#: One heterogeneous query: (direction, entity, relation).
Query = Tuple[str, int, int]


def known_positive_index(
    graph: KnowledgeGraph, splits: Sequence[str] = ("train", "valid")
) -> FilterIndex:
    """A :class:`FilterIndex` over the chosen splits, for serving-side filtering.

    Defaults to train+valid: those are the triples the deployment already
    knows, while test stands in for the unseen future the engine should be
    free to predict.  Accepts either an in-memory
    :class:`~repro.datasets.knowledge_graph.KnowledgeGraph` or a sharded
    :class:`~repro.datasets.pipeline.TripleStore`; the store path streams
    shard by shard instead of concatenating the splits.
    """
    if hasattr(graph, "iter_shards"):  # a sharded TripleStore
        from repro.datasets.pipeline import build_filter_index

        return build_filter_index(graph, splits=splits)
    triples = np.concatenate([graph.split(split) for split in splits], axis=0)
    return FilterIndex.build(triples, graph.num_relations)


#: Metadata file of a saved known-positive index directory.
FILTER_INDEX_META_FILENAME = "filter_index.json"

#: Conventional name of the saved index directory beside an artifact.
FILTER_INDEX_DIRNAME = "filter_index"

#: The six CSR arrays a FilterIndex is made of, as (direction, field) pairs.
_FILTER_INDEX_ARRAYS = tuple(
    (direction, name)
    for direction in ("tails", "heads")
    for name in ("codes", "indptr", "entities")
)


def save_filter_index(index: FilterIndex, directory: PathLike) -> Path:
    """Persist a known-positive :class:`FilterIndex` as raw ``.npy`` files.

    The fleet's parent process builds the index once and saves it here; every
    worker then loads it with ``mmap=True``, so the CSR arrays — like the
    embedding tables — are one shared page-cache copy instead of N private
    ones.
    """
    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    for direction, name in _FILTER_INDEX_ARRAYS:
        np.save(base / f"{direction}_{name}.npy",
                np.ascontiguousarray(getattr(getattr(index, direction), name)))
    to_json_file({"num_relations": int(index.num_relations)},
                 base / FILTER_INDEX_META_FILENAME)
    return base


def load_filter_index(directory: PathLike, mmap: bool = True) -> FilterIndex:
    """Load a :class:`FilterIndex` saved by :func:`save_filter_index`.

    With ``mmap=True`` (the default — this is the sharing path) the arrays
    are read-only memmap views.  Raises ``ValueError`` naming the directory
    on anything missing.
    """
    base = Path(directory)
    # Name the artifact directory too, not just the missing file: the index
    # conventionally lives at <artifact>/filter_index, and "which artifact
    # is broken" is the question the operator is actually asking.
    artifact_hint = (
        f" (artifact directory {base.parent})" if base.name == FILTER_INDEX_DIRNAME else ""
    )
    meta_path = base / FILTER_INDEX_META_FILENAME
    if not meta_path.exists():
        raise ValueError(
            f"filter-index directory {base}{artifact_hint} is missing "
            f"{FILTER_INDEX_META_FILENAME} "
            f"(expected a directory written by save_filter_index)"
        )
    meta = from_json_file(meta_path)
    arrays: Dict[str, Dict[str, np.ndarray]] = {"tails": {}, "heads": {}}
    for direction, name in _FILTER_INDEX_ARRAYS:
        path = base / f"{direction}_{name}.npy"
        if not path.exists():
            raise ValueError(
                f"filter-index directory {base}{artifact_hint} is missing {path.name}"
            )
        arrays[direction][name] = np.load(path, mmap_mode="r" if mmap else None)
    return FilterIndex(
        num_relations=int(meta["num_relations"]),
        tails=_DirectionIndex(**arrays["tails"]),
        heads=_DirectionIndex(**arrays["heads"]),
    )


class HotRelationCache:
    """A size-bounded operator cache with frequency-gated admission.

    The plain LRU it replaces admits every materialized operator, so a scan
    over many cold relations evicts the hot head of a skewed workload.  Here
    an operator is only *admitted* once its key has been requested
    ``admission_threshold`` times (the DGL ``frame_cache`` admission idea);
    until then the operator is built, used, and discarded.  Eviction among
    admitted entries is LRU.  ``admission_threshold=1`` recovers the old
    always-admit LRU behavior.

    Not thread-safe by itself — the engine serializes access under its lock.
    """

    def __init__(self, capacity: int, admission_threshold: int = 2) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if admission_threshold < 1:
            raise ValueError("admission_threshold must be at least 1")
        self.capacity = int(capacity)
        self.admission_threshold = int(admission_threshold)
        self._entries: "OrderedDict[tuple, object]" = OrderedDict()
        self._counts: Dict[tuple, int] = {}
        self.hits = 0
        self.misses = 0
        self.admissions = 0
        self.rejections = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple):
        """The cached value, bumping recency; ``None`` on a miss."""
        value = self._entries.get(key)
        if value is not None:
            self.hits += 1
            self._entries.move_to_end(key)
        else:
            self.misses += 1
        return value

    def offer(self, key: tuple, value: object) -> bool:
        """Offer a freshly built value; admit it once the key is hot enough."""
        count = self._counts.get(key, 0) + 1
        self._counts[key] = count
        self._age_counts()
        if count < self.admission_threshold:
            self.rejections += 1
            return False
        self._entries[key] = value
        self._entries.move_to_end(key)
        self.admissions += 1
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        return True

    def _age_counts(self) -> None:
        # Bound the frequency sketch: when it outgrows the cache by far,
        # halve every count (dropping zeros) so stale one-hit wonders decay
        # instead of accumulating forever.
        if len(self._counts) > max(64, 8 * self.capacity):
            self._counts = {
                key: count // 2 for key, count in self._counts.items() if count >= 2
            }

    def stats(self) -> Dict[str, int]:
        return {
            "capacity": self.capacity,
            "admission_threshold": self.admission_threshold,
            "size": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "admissions": self.admissions,
            "rejections": self.rejections,
            "evictions": self.evictions,
        }


class InferenceEngine:
    """Batched, relation-materialized link-prediction inference.

    Parameters
    ----------
    scoring_function, params:
        The trained model to serve.
    filter_index:
        Optional known-positive index; required to answer ``filtered=True``
        queries (build one with :func:`known_positive_index`).
    batch_size:
        Queries per micro-batch; the score slab is ``batch_size x
        num_entities`` floats, which for dot-product families is also the
        peak transient memory.
    entity_chunk_size:
        Optional entity-axis chunking for the scoring step (``0`` scores all
        entities at once).  Distance-based families (TransE, RotatE)
        materialize a ``batch x entities x dimension`` difference tensor
        while scoring; chunking bounds that transient at ``batch_size x
        entity_chunk_size x dimension`` — the serving-side analogue of the
        training engine's ``score_chunk_size``.
    operator_cache_size / result_cache_size:
        Capacities of the hot-relation operator cache and of the LRU of
        finished (direction, entity, relation, top_k, filtered) answers.
    operator_admission_threshold:
        How many times a (relation, direction) pair must be requested before
        its materialized operator is admitted to the cache (see
        :class:`HotRelationCache`); ``1`` recovers the old always-admit LRU.
    recorder:
        Optional :class:`TimingRecorder`; the engine attributes time to the
        ``project`` / ``score`` / ``select`` phases and counts queries and
        cache hits, which the serve endpoint reports.
    registry:
        Metrics registry for the serving counters and batch-size histogram
        (``repro_serving_*``); defaults to the process-global registry — a
        no-op ``NullRegistry`` unless the serve path enabled one.  When
        ``recorder`` is not given, the default :class:`TimingRecorder` is
        built on this same registry, so the ``project``/``score``/``select``
        phases show up as ``repro_phase_seconds`` series on ``/metrics``.
    """

    def __init__(
        self,
        scoring_function: ScoringFunction,
        params: ParamDict,
        filter_index: Optional[FilterIndex] = None,
        batch_size: int = 256,
        entity_chunk_size: int = 0,
        operator_cache_size: int = 256,
        result_cache_size: int = 4096,
        operator_admission_threshold: int = 2,
        recorder: Optional[TimingRecorder] = None,
        registry: Optional[AnyRegistry] = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if entity_chunk_size < 0:
            raise ValueError("entity_chunk_size must be non-negative (0 disables chunking)")
        if operator_cache_size <= 0:
            raise ValueError("operator_cache_size must be positive")
        if result_cache_size < 0:
            raise ValueError("result_cache_size must be non-negative")
        self.scoring_function = scoring_function
        self.params = params
        self.filter_index = filter_index
        self.batch_size = int(batch_size)
        self.entity_chunk_size = int(entity_chunk_size)
        self.num_entities = int(params["entities"].shape[0])
        self.num_relations = int(params["relations"].shape[0])
        self.registry = registry if registry is not None else get_registry()
        # The default recorder shares this engine's registry, so per-phase
        # repro_phase_seconds series land on the same /metrics exposition.
        self.recorder = (
            recorder if recorder is not None else TimingRecorder(registry=self.registry)
        )
        self._result_cache_size = int(result_cache_size)
        self._operators = HotRelationCache(
            capacity=int(operator_cache_size),
            admission_threshold=int(operator_admission_threshold),
        )
        self._results: "OrderedDict[tuple, Tuple[Prediction, ...]]" = OrderedDict()
        # The caches are mutated on every query; one lock makes the engine
        # safe under the threading HTTP server (batching, not concurrency,
        # is the throughput mechanism here).
        self._lock = threading.Lock()
        self.queries_served = 0
        self.cache_hits = 0
        self._m_queries = self.registry.counter(
            "repro_serving_queries_total", help="Link-prediction queries answered."
        )
        self._m_cache_hits = self.registry.counter(
            "repro_serving_cache_hits_total",
            help="Queries answered from the finished-result LRU cache.",
        )
        self._m_batch_queries = self.registry.histogram(
            "repro_serving_batch_queries",
            help="Queries per engine batch call.",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024),
        )
        # Hot-relation operator-cache telemetry.  The cache keeps plain int
        # counters (it predates the registry); the engine mirrors them onto
        # /metrics by syncing deltas after each batch.
        self._m_hot_cache = {
            name: self.registry.counter(
                f"repro_serving_hot_cache_{name}_total",
                help=f"Hot relation-operator cache {name}.",
            )
            for name in ("hits", "misses", "admissions", "rejections", "evictions")
        }
        self._hot_cache_seen = {name: 0 for name in self._m_hot_cache}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_artifact(
        cls, artifact: ModelArtifact, **kwargs: object
    ) -> "InferenceEngine":
        """Build an engine straight from a loaded serving artifact."""
        return cls(artifact.scoring_function, artifact.params, **kwargs)

    # ------------------------------------------------------------------
    # Caches
    # ------------------------------------------------------------------
    def _operator(self, relation: int, direction: str):
        key = (int(relation), direction)
        operator = self._operators.get(key)
        if operator is None:
            operator = self.scoring_function.relation_operator(
                self.params, relation, direction
            )
            self._operators.offer(key, operator)
        return operator

    def _cached_result(self, key: tuple) -> Optional[Tuple[Prediction, ...]]:
        result = self._results.get(key)
        if result is not None:
            self._results.move_to_end(key)
        return result

    def _store_result(self, key: tuple, result: Tuple[Prediction, ...]) -> None:
        if self._result_cache_size == 0:
            return
        self._results[key] = result
        if len(self._results) > self._result_cache_size:
            self._results.popitem(last=False)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _check_query(self, direction: str, entity: int, relation: int, filtered: bool) -> Query:
        validate_direction(direction)
        entity = int(entity)
        relation = int(relation)
        if not 0 <= entity < self.num_entities:
            raise ValueError(
                f"entity id {entity} out of range [0, {self.num_entities})"
            )
        if not 0 <= relation < self.num_relations:
            raise ValueError(
                f"relation id {relation} out of range [0, {self.num_relations})"
            )
        if filtered and self.filter_index is None:
            raise ValueError(
                "filtered queries need a filter index; construct the engine "
                "with filter_index=known_positive_index(graph)"
            )
        return (direction, entity, relation)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def predict_tails(
        self, head: int, relation: int, top_k: int = 10, filtered: bool = False
    ) -> List[Prediction]:
        """Top-k candidate tails for ``(head, relation, ?)``."""
        return self.query_batch([(TAIL, head, relation)], top_k=top_k, filtered=filtered)[0]

    def predict_heads(
        self, relation: int, tail: int, top_k: int = 10, filtered: bool = False
    ) -> List[Prediction]:
        """Top-k candidate heads for ``(?, relation, tail)``."""
        return self.query_batch([(HEAD, tail, relation)], top_k=top_k, filtered=filtered)[0]

    def query_batch(
        self,
        queries: Sequence[Union[Query, Sequence[object]]],
        top_k: int = 10,
        filtered: bool = False,
    ) -> List[List[Prediction]]:
        """Answer heterogeneous (direction, entity, relation) queries.

        Results are returned in input order, each a list of (entity, score)
        pairs ordered by descending score with ties broken by entity index.
        With ``filtered=True`` known positives are removed, so saturated
        queries may return fewer than ``top_k`` pairs.
        """
        with self._lock:
            return self._query_batch_locked(queries, top_k, filtered)

    def _query_batch_locked(
        self,
        queries: Sequence[Union[Query, Sequence[object]]],
        top_k: int,
        filtered: bool,
    ) -> List[List[Prediction]]:
        top_k = int(top_k)
        if top_k <= 0:
            raise ValueError("top_k must be positive")
        normalized = [
            self._check_query(direction, entity, relation, filtered)
            for direction, entity, relation in queries
        ]
        self.queries_served += len(normalized)
        self._m_queries.inc(len(normalized))
        self._m_batch_queries.observe(len(normalized))

        results: List[Optional[Tuple[Prediction, ...]]] = [None] * len(normalized)
        pending: Dict[Query, List[int]] = {}
        for position, query in enumerate(normalized):
            cached = self._cached_result((*query, top_k, filtered))
            if cached is not None:
                self.cache_hits += 1
                self._m_cache_hits.inc()
                results[position] = cached
            else:
                # Keyed by the full query, so duplicates within one batch are
                # scored once and fanned out to every requesting position.
                pending.setdefault(query, []).append(position)

        # Order the unique queries by (direction, relation) group, then
        # process them in slabs of ``batch_size`` rows: scoring still runs
        # per group segment (one materialized operator each), but top-k
        # selection sees a whole slab at once — essential when a batch
        # spreads thinly over many relations.  Peak memory stays at
        # batch_size x num_entities scores.
        work_list = sorted(pending, key=lambda query: (query[0], query[2]))
        for slab_begin in range(0, len(work_list), self.batch_size):
            slab = work_list[slab_begin : slab_begin + self.batch_size]
            scores = np.empty((len(slab), self.num_entities), dtype=np.float64)
            segment_begin = 0
            while segment_begin < len(slab):
                direction, _, relation = slab[segment_begin]
                segment_end = segment_begin
                while (
                    segment_end < len(slab)
                    and slab[segment_end][0] == direction
                    and slab[segment_end][2] == relation
                ):
                    segment_end += 1
                entities = np.asarray(
                    [entity for _d, entity, _r in slab[segment_begin:segment_end]],
                    dtype=np.int64,
                )
                operator = self._operator(relation, direction)
                with self.recorder.measure("project"):
                    projection = operator.project(entities)
                with self.recorder.measure("score"):
                    chunk = self.entity_chunk_size or self.num_entities
                    for start in range(0, self.num_entities, chunk):
                        stop = min(start + chunk, self.num_entities)
                        scores[segment_begin:segment_end, start:stop] = operator.score(
                            projection, start, stop
                        )
                if filtered:
                    mask_known_scores(
                        scores[segment_begin:segment_end],
                        self.filter_index,
                        entities,
                        np.full_like(entities, relation),
                        direction,
                    )
                segment_begin = segment_end
            with self.recorder.measure("select"):
                selected = select_predictions_batch(scores, top_k)
                for query, (order, top_scores) in zip(slab, selected):
                    answer = tuple(zip(order.tolist(), top_scores.tolist()))
                    self._store_result((*query, top_k, filtered), answer)
                    for position in pending[query]:
                        results[position] = answer

        self._sync_hot_cache_metrics()
        return [list(result) for result in results]

    def _sync_hot_cache_metrics(self) -> None:
        """Mirror HotRelationCache counter deltas onto the registry."""
        for name, counter in self._m_hot_cache.items():
            current = int(getattr(self._operators, name))
            delta = current - self._hot_cache_seen[name]
            if delta:
                counter.inc(delta)
                self._hot_cache_seen[name] = current

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Counters + per-phase timings for the serve endpoint's /stats.

        Takes the engine lock: the caches and the recorder are mutated by
        concurrent query threads, and iterating them mid-query would race.
        """
        with self._lock:
            return self._stats_locked()

    def _stats_locked(self) -> Dict[str, object]:
        return {
            "scoring_function": self.scoring_function.name,
            "num_entities": self.num_entities,
            "num_relations": self.num_relations,
            "queries_served": self.queries_served,
            "cache_hits": self.cache_hits,
            "cached_operators": len(self._operators),
            "cached_results": len(self._results),
            "operator_cache": self._operators.stats(),
            "params_bytes": int(
                sum(array.nbytes for array in self.params.values())
            ),
            "params_memmap": isinstance(self.params.get("entities"), np.memmap),
            "timings": self.recorder.summary(),
        }

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return (
            f"InferenceEngine({self.scoring_function.name!r}, "
            f"entities={self.num_entities}, relations={self.num_relations}, "
            f"filtered={'yes' if self.filter_index is not None else 'no'})"
        )


class _PendingCall:
    """One caller's queries waiting inside a :class:`MicroBatcher` window."""

    __slots__ = ("queries", "top_k", "filtered", "done", "results", "error")

    def __init__(self, queries: List[Query], top_k: int, filtered: bool) -> None:
        self.queries = queries
        self.top_k = top_k
        self.filtered = filtered
        self.done = threading.Event()
        self.results: Optional[List[List[Prediction]]] = None
        self.error: Optional[BaseException] = None


class MicroBatcher:
    """Dynamic micro-batching over an :class:`InferenceEngine`.

    Concurrent callers (one HTTP handler thread per in-flight request)
    submit through :meth:`query_batch`; calls arriving within ``window_s``
    of each other are coalesced into one engine call, where the engine's
    per-(relation, direction) grouping amortizes operator materialization
    and slab top-k across all of them.  The first caller of a round becomes
    the *leader*: it sleeps out the window, flushes every pending call, and
    distributes the answers; followers just wait on their event.

    Exposes the same ``query_batch(queries, top_k, filtered)`` signature as
    the engine, so :func:`repro.serving.service.answer_queries` works with
    either.  Single-caller latency cost is exactly the window (default 2 ms)
    — the throughput/latency knob of the serving fleet.  A combined call
    that fails is retried per caller, so one request with an out-of-range
    entity cannot poison the answers of the calls it was coalesced with.
    """

    #: Safety net for followers; a leader never takes remotely this long.
    _WAIT_TIMEOUT_S = 120.0

    def __init__(self, engine: InferenceEngine, window_s: float = 0.002) -> None:
        if window_s < 0:
            raise ValueError("window_s must be non-negative (0 disables batching)")
        self.engine = engine
        self.window_s = float(window_s)
        self._lock = threading.Lock()
        self._pending: List[_PendingCall] = []
        self._leader_active = False
        self.calls = 0
        self.batches = 0
        self.coalesced_calls = 0
        self.largest_batch = 0

    def query_batch(
        self,
        queries: Sequence[Union[Query, Sequence[object]]],
        top_k: int = 10,
        filtered: bool = False,
    ) -> List[List[Prediction]]:
        """Answer queries, coalescing with concurrent callers (blocking)."""
        if self.window_s == 0:
            with self._lock:
                self.calls += 1
                self.batches += 1
            return self.engine.query_batch(queries, top_k=top_k, filtered=filtered)
        call = _PendingCall(list(queries), int(top_k), bool(filtered))
        with self._lock:
            self.calls += 1
            self._pending.append(call)
            is_leader = not self._leader_active
            if is_leader:
                self._leader_active = True
        if is_leader:
            time.sleep(self.window_s)
            self._flush()
        if not call.done.wait(timeout=self._WAIT_TIMEOUT_S):  # pragma: no cover
            raise RuntimeError("micro-batch leader failed to flush in time")
        if call.error is not None:
            raise call.error
        assert call.results is not None
        return call.results

    def _flush(self) -> None:
        with self._lock:
            batch = self._pending
            self._pending = []
            self._leader_active = False
            if batch:
                self.batches += 1
                self.coalesced_calls += len(batch) - 1
                self.largest_batch = max(self.largest_batch, len(batch))
        try:
            groups: Dict[Tuple[int, bool], List[_PendingCall]] = {}
            for call in batch:
                groups.setdefault((call.top_k, call.filtered), []).append(call)
            for (top_k, filtered), calls in groups.items():
                self._answer_group(calls, top_k, filtered)
        finally:
            # Never leave a follower hanging, whatever went wrong above.
            for call in batch:
                if not call.done.is_set():  # pragma: no cover - defensive
                    if call.error is None and call.results is None:
                        call.error = RuntimeError("micro-batch flush failed")
                    call.done.set()

    def _answer_group(
        self, calls: List[_PendingCall], top_k: int, filtered: bool
    ) -> None:
        combined = [query for call in calls for query in call.queries]
        try:
            answers = self.engine.query_batch(combined, top_k=top_k, filtered=filtered)
        except Exception:
            # One bad query fails the combined call; isolate the offender by
            # answering each caller separately.
            for call in calls:
                try:
                    call.results = self.engine.query_batch(
                        call.queries, top_k=top_k, filtered=filtered
                    )
                except Exception as error:
                    call.error = error
                finally:
                    call.done.set()
            return
        offset = 0
        for call in calls:
            call.results = answers[offset : offset + len(call.queries)]
            offset += len(call.queries)
            call.done.set()

    def stats(self) -> Dict[str, object]:
        with self._lock:
            mean = (self.calls / self.batches) if self.batches else 0.0
            return {
                "window_ms": self.window_s * 1000.0,
                "calls": self.calls,
                "batches": self.batches,
                "coalesced_calls": self.coalesced_calls,
                "largest_batch_calls": self.largest_batch,
                "mean_calls_per_batch": mean,
            }
