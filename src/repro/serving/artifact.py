"""Versioned, self-contained model artifacts for serving.

An artifact directory is everything inference needs, with nothing implicit:

* ``manifest.json`` — schema version, scoring-function name (+ block
  structure for searched models), entity/relation counts, the training
  configuration, and the evaluation metrics recorded at export time;
* ``params.npz`` — the trained parameter arrays;
* ``vocab.json`` — optional entity/relation labels, so queries can be posed
  (and answers returned) symbolically.

:func:`export_artifact` writes one from a trained :class:`KGEModel`;
:func:`load_artifact` validates every piece and raises a descriptive
:class:`ArtifactError` naming the artifact path on anything missing or
mismatched, so a half-copied artifact fails loudly at load time rather than
mysteriously at query time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.datasets.knowledge_graph import KnowledgeGraph
from repro.kge.model import (
    MODEL_VOCAB_FILENAME,
    KGEModel,
    read_model_directory,
    require_graph_matches_params,
    scoring_function_from_metadata,
    scoring_function_metadata,
    write_vocab_file,
)
from repro.kge.scoring.base import ParamDict, ScoringFunction
from repro.utils.config import TrainingConfig
from repro.utils.serialization import from_json_file, save_params_npz, to_json_file

PathLike = Union[str, Path]

#: Current artifact schema version; bumped on incompatible layout changes.
ARTIFACT_SCHEMA_VERSION = 1

MANIFEST_FILENAME = "manifest.json"
PARAMS_FILENAME = "params.npz"
VOCAB_FILENAME = "vocab.json"

#: Manifest keys every artifact must carry.
_REQUIRED_MANIFEST_KEYS = (
    "schema_version",
    "scoring_function",
    "num_entities",
    "num_relations",
    "config",
)


class ArtifactError(RuntimeError):
    """An artifact directory is missing pieces, corrupt, or inconsistent."""


@dataclass
class ModelArtifact:
    """A loaded serving artifact: scoring function, parameters, vocab, metadata."""

    scoring_function: ScoringFunction
    params: ParamDict
    config: TrainingConfig
    num_entities: int
    num_relations: int
    metrics: Dict[str, float] = field(default_factory=dict)
    entity_names: Optional[Tuple[str, ...]] = None
    relation_names: Optional[Tuple[str, ...]] = None
    schema_version: int = ARTIFACT_SCHEMA_VERSION
    path: Optional[Path] = None

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    def to_model(self) -> KGEModel:
        """The artifact as a ready-to-query :class:`KGEModel`."""
        return KGEModel(self.scoring_function, self.config, params=self.params)

    # ------------------------------------------------------------------
    # Symbol resolution
    # ------------------------------------------------------------------
    def _lookup_table(self, names: Tuple[str, ...], cache_key: str) -> Dict[str, int]:
        table = self.__dict__.get(cache_key)
        if table is None:
            table = {name: index for index, name in enumerate(names)}
            self.__dict__[cache_key] = table
        return table

    def _resolve(self, symbol: Union[str, int], names: Optional[Tuple[str, ...]],
                 count: int, kind: str, cache_key: str) -> int:
        if isinstance(symbol, (int, np.integer)):
            index = int(symbol)
        else:
            symbol = str(symbol)
            index = None
            if names is not None:
                index = self._lookup_table(names, cache_key).get(symbol)
            if index is None:
                try:
                    index = int(symbol)
                except ValueError:
                    raise KeyError(
                        f"unknown {kind} {symbol!r} "
                        f"({'not in the artifact vocabulary' if names else 'artifact has no vocabulary'}"
                        f" and not an integer id)"
                    ) from None
        if not 0 <= index < count:
            raise KeyError(f"{kind} id {index} out of range [0, {count})")
        return index

    def entity_id(self, symbol: Union[str, int]) -> int:
        """Resolve an entity label or integer id to an index."""
        return self._resolve(
            symbol, self.entity_names, self.num_entities, "entity", "_entity_lookup"
        )

    def relation_id(self, symbol: Union[str, int]) -> int:
        """Resolve a relation label or integer id to an index."""
        return self._resolve(
            symbol, self.relation_names, self.num_relations, "relation", "_relation_lookup"
        )

    def entity_label(self, index: int) -> str:
        """Human-readable label of an entity (falls back to ``e<i>``)."""
        if self.entity_names is not None:
            return self.entity_names[index]
        return f"e{index}"

    def relation_label(self, index: int) -> str:
        """Human-readable label of a relation (falls back to ``r<j>``)."""
        if self.relation_names is not None:
            return self.relation_names[index]
        return f"r{index}"

    def describe(self) -> Dict[str, object]:
        """Headline facts for logs and the serve endpoint's health check."""
        return {
            "schema_version": self.schema_version,
            "scoring_function": self.scoring_function.name,
            "num_entities": self.num_entities,
            "num_relations": self.num_relations,
            "has_vocabulary": self.entity_names is not None or self.relation_names is not None,
            "metrics": dict(self.metrics),
        }


def _vocab_from_sources(
    graph: Optional[KnowledgeGraph],
    model_directory: Optional[Path],
) -> Tuple[Optional[Sequence[str]], Optional[Sequence[str]]]:
    """Entity/relation labels from the dataset or a saved model's vocab.json."""
    if graph is not None and (graph.entity_names or graph.relation_names):
        return graph.entity_names, graph.relation_names
    if model_directory is not None:
        vocab_path = Path(model_directory) / MODEL_VOCAB_FILENAME
        if vocab_path.exists():
            vocab = from_json_file(vocab_path)
            return vocab.get("entity_names"), vocab.get("relation_names")
    return None, None


def export_artifact(
    model: KGEModel,
    directory: PathLike,
    graph: Optional[KnowledgeGraph] = None,
    metrics: Optional[Dict[str, float]] = None,
    model_directory: Optional[PathLike] = None,
) -> Path:
    """Write a serving artifact for a trained model.

    Parameters
    ----------
    graph:
        Optional dataset the model was trained on; supplies the vocabulary
        (when it has labels) and is validated against the parameter shapes.
    metrics:
        Optional evaluation metrics to embed in the manifest (e.g. filtered
        test MRR at export time).
    model_directory:
        Optional directory the model was loaded from; its ``vocab.json`` is
        reused when no ``graph`` is given.
    """
    if model.params is None:
        raise ArtifactError("cannot export an untrained model (no parameters)")
    params = model.params
    if graph is not None:
        require_graph_matches_params(params, graph, error_cls=ArtifactError)

    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    manifest: Dict[str, object] = scoring_function_metadata(model.scoring_function)
    manifest.update(
        {
            "schema_version": ARTIFACT_SCHEMA_VERSION,
            "num_entities": int(params["entities"].shape[0]),
            "num_relations": int(params["relations"].shape[0]),
            "config": model.config.to_dict(),
            "metrics": dict(metrics or {}),
        }
    )
    to_json_file(manifest, base / MANIFEST_FILENAME)
    save_params_npz(params, base / PARAMS_FILENAME)

    entity_names, relation_names = _vocab_from_sources(
        graph, Path(model_directory) if model_directory is not None else None
    )
    write_vocab_file(entity_names, relation_names, base / VOCAB_FILENAME)
    return base


def load_artifact(directory: PathLike) -> ModelArtifact:
    """Load and validate a serving artifact written by :func:`export_artifact`."""
    base = Path(directory)
    if not base.is_dir():
        raise ArtifactError(f"artifact directory {base} does not exist")
    manifest, params = read_model_directory(
        base,
        MANIFEST_FILENAME,
        PARAMS_FILENAME,
        ArtifactError,
        label="artifact",
        writer_hint="export_artifact",
        required_metadata_keys=_REQUIRED_MANIFEST_KEYS,
    )
    schema_version = int(manifest["schema_version"])
    if schema_version != ARTIFACT_SCHEMA_VERSION:
        raise ArtifactError(
            f"artifact {base} has schema version {schema_version}, but this "
            f"build reads version {ARTIFACT_SCHEMA_VERSION}; re-export the model"
        )

    try:
        scoring_function = scoring_function_from_metadata(manifest)
        config = TrainingConfig.from_dict(manifest["config"])
    except (KeyError, TypeError, ValueError) as error:
        raise ArtifactError(f"cannot load artifact from {base}: {error}") from error

    num_entities = int(manifest["num_entities"])
    num_relations = int(manifest["num_relations"])
    entity_names = relation_names = None
    vocab_path = base / VOCAB_FILENAME
    if vocab_path.exists():
        try:
            vocab = from_json_file(vocab_path)
        except ValueError as error:
            raise ArtifactError(
                f"artifact {base}: {VOCAB_FILENAME} is not valid JSON ({error})"
            ) from error
        entity_names = vocab.get("entity_names")
        relation_names = vocab.get("relation_names")
        for label, names, count in (
            ("entity_names", entity_names, num_entities),
            ("relation_names", relation_names, num_relations),
        ):
            if names is not None and len(names) != count:
                raise ArtifactError(
                    f"artifact {base}: {VOCAB_FILENAME} holds {len(names)} "
                    f"{label} but the manifest declares {count}"
                )

    return ModelArtifact(
        scoring_function=scoring_function,
        params=params,
        config=config,
        num_entities=num_entities,
        num_relations=num_relations,
        metrics=dict(manifest.get("metrics") or {}),
        entity_names=tuple(entity_names) if entity_names else None,
        relation_names=tuple(relation_names) if relation_names else None,
        schema_version=schema_version,
        path=base,
    )
