"""Versioned, self-contained model artifacts for serving.

An artifact directory is everything inference needs, with nothing implicit:

* ``manifest.json`` — schema version, scoring-function name (+ block
  structure for searched models), entity/relation counts, the training
  configuration, the parameter file map, and the evaluation metrics recorded
  at export time;
* ``params/<key>.npy`` — one raw ``.npy`` file per parameter array
  (schema v2).  Raw ``.npy`` is the point of the layout: every array loads
  with ``np.load(..., mmap_mode="r")``, so a fleet of serving workers maps
  the same embedding bytes once through the page cache instead of each
  holding a private copy (the ``datasets.pipeline`` shard+manifest pattern,
  applied to model parameters);
* ``vocab.json`` — optional entity/relation labels, so queries can be posed
  (and answers returned) symbolically.

:func:`export_artifact` writes one from a trained :class:`KGEModel`;
:func:`load_artifact` validates every piece and raises a descriptive
:class:`ArtifactError` naming the artifact path on anything missing or
mismatched, so a half-copied artifact fails loudly at load time rather than
mysteriously at query time.  ``load_artifact(path, mmap=True)`` returns
read-only memmap-backed parameter views; schema-v1 artifacts (a single
``params.npz``) still load through a compatibility shim, falling back to
read-only in-memory arrays because zipped archives cannot be memory-mapped.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.datasets.knowledge_graph import KnowledgeGraph
from repro.kge.model import (
    MODEL_VOCAB_FILENAME,
    KGEModel,
    check_declared_counts,
    require_graph_matches_params,
    scoring_function_from_metadata,
    scoring_function_metadata,
    write_vocab_file,
)
from repro.kge.scoring.base import ParamDict, ScoringFunction
from repro.utils.config import TrainingConfig
from repro.utils.serialization import from_json_file, load_params_npz, to_json_file

PathLike = Union[str, Path]

#: Current artifact schema version; bumped on incompatible layout changes.
#: v1: all parameters in one ``params.npz`` archive (not memory-mappable).
#: v2: one raw ``params/<key>.npy`` file per array, mmap-loadable.
#: v3: v2 layout plus a ``generation`` counter for live hot-swaps; a v2
#: manifest (no key) loads as ``generation=0``.
ARTIFACT_SCHEMA_VERSION = 3

MANIFEST_FILENAME = "manifest.json"
PARAMS_DIRNAME = "params"
#: Schema-v1 parameter archive, still read by the compatibility shim.
LEGACY_PARAMS_FILENAME = "params.npz"
#: Kept under its historical name for callers that import it.
PARAMS_FILENAME = LEGACY_PARAMS_FILENAME
VOCAB_FILENAME = "vocab.json"

#: Manifest keys every artifact must carry.
_REQUIRED_MANIFEST_KEYS = (
    "schema_version",
    "scoring_function",
    "num_entities",
    "num_relations",
    "config",
)

#: Parameter keys double as filenames in the v2 layout, so they must be safe.
_PARAM_KEY_PATTERN = re.compile(r"[A-Za-z0-9_.-]+\Z")


class ArtifactError(RuntimeError):
    """An artifact directory is missing pieces, corrupt, or inconsistent."""


@dataclass
class ModelArtifact:
    """A loaded serving artifact: scoring function, parameters, vocab, metadata."""

    scoring_function: ScoringFunction
    params: ParamDict
    config: TrainingConfig
    num_entities: int
    num_relations: int
    metrics: Dict[str, float] = field(default_factory=dict)
    entity_names: Optional[Tuple[str, ...]] = None
    relation_names: Optional[Tuple[str, ...]] = None
    schema_version: int = ARTIFACT_SCHEMA_VERSION
    #: Live-index generation the artifact was exported at (0 = initial
    #: batch export / pre-v3 artifact).
    generation: int = 0
    path: Optional[Path] = None
    #: Whether the parameter arrays are memmap-backed views of the artifact
    #: files (True only for ``load_artifact(mmap=True)`` on a v2 artifact).
    params_memmap: bool = False

    def params_nbytes(self) -> int:
        """Total size of the parameter arrays in bytes (embeddings dominate)."""
        return int(sum(array.nbytes for array in self.params.values()))

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    def to_model(self) -> KGEModel:
        """The artifact as a ready-to-query :class:`KGEModel`."""
        return KGEModel(self.scoring_function, self.config, params=self.params)

    # ------------------------------------------------------------------
    # Symbol resolution
    # ------------------------------------------------------------------
    def _lookup_table(self, names: Tuple[str, ...], cache_key: str) -> Dict[str, int]:
        table = self.__dict__.get(cache_key)
        if table is None:
            table = {name: index for index, name in enumerate(names)}
            self.__dict__[cache_key] = table
        return table

    def _resolve(self, symbol: Union[str, int], names: Optional[Tuple[str, ...]],
                 count: int, kind: str, cache_key: str) -> int:
        if isinstance(symbol, (int, np.integer)):
            index = int(symbol)
        else:
            symbol = str(symbol)
            index = None
            if names is not None:
                index = self._lookup_table(names, cache_key).get(symbol)
            if index is None:
                try:
                    index = int(symbol)
                except ValueError:
                    raise KeyError(
                        f"unknown {kind} {symbol!r} "
                        f"({'not in the artifact vocabulary' if names else 'artifact has no vocabulary'}"
                        f" and not an integer id)"
                    ) from None
        if not 0 <= index < count:
            raise KeyError(f"{kind} id {index} out of range [0, {count})")
        return index

    def entity_id(self, symbol: Union[str, int]) -> int:
        """Resolve an entity label or integer id to an index."""
        return self._resolve(
            symbol, self.entity_names, self.num_entities, "entity", "_entity_lookup"
        )

    def relation_id(self, symbol: Union[str, int]) -> int:
        """Resolve a relation label or integer id to an index."""
        return self._resolve(
            symbol, self.relation_names, self.num_relations, "relation", "_relation_lookup"
        )

    def entity_label(self, index: int) -> str:
        """Human-readable label of an entity (falls back to ``e<i>``)."""
        if self.entity_names is not None:
            return self.entity_names[index]
        return f"e{index}"

    def relation_label(self, index: int) -> str:
        """Human-readable label of a relation (falls back to ``r<j>``)."""
        if self.relation_names is not None:
            return self.relation_names[index]
        return f"r{index}"

    def describe(self) -> Dict[str, object]:
        """Headline facts for logs and the serve endpoint's health check."""
        return {
            "schema_version": self.schema_version,
            "generation": self.generation,
            "scoring_function": self.scoring_function.name,
            "num_entities": self.num_entities,
            "num_relations": self.num_relations,
            "has_vocabulary": self.entity_names is not None or self.relation_names is not None,
            "params_memmap": self.params_memmap,
            "params_bytes": self.params_nbytes(),
            "metrics": dict(self.metrics),
        }


def _vocab_from_sources(
    graph: Optional[KnowledgeGraph],
    model_directory: Optional[Path],
) -> Tuple[Optional[Sequence[str]], Optional[Sequence[str]]]:
    """Entity/relation labels from the dataset or a saved model's vocab.json."""
    if graph is not None and (graph.entity_names or graph.relation_names):
        return graph.entity_names, graph.relation_names
    if model_directory is not None:
        vocab_path = Path(model_directory) / MODEL_VOCAB_FILENAME
        if vocab_path.exists():
            vocab = from_json_file(vocab_path)
            return vocab.get("entity_names"), vocab.get("relation_names")
    return None, None


def export_artifact(
    model: KGEModel,
    directory: PathLike,
    graph: Optional[KnowledgeGraph] = None,
    metrics: Optional[Dict[str, float]] = None,
    model_directory: Optional[PathLike] = None,
    generation: int = 0,
) -> Path:
    """Write a serving artifact for a trained model.

    Parameters
    ----------
    graph:
        Optional dataset the model was trained on; supplies the vocabulary
        (when it has labels) and is validated against the parameter shapes.
    metrics:
        Optional evaluation metrics to embed in the manifest (e.g. filtered
        test MRR at export time).
    model_directory:
        Optional directory the model was loaded from; its ``vocab.json`` is
        reused when no ``graph`` is given.
    generation:
        Live-index generation the parameters correspond to (the source
        store's :attr:`~repro.datasets.TripleStore.generation` after a
        fine-tune); surfaced by ``/stats`` and the serve banner so rolling
        hot-swaps are auditable.
    """
    if model.params is None:
        raise ArtifactError("cannot export an untrained model (no parameters)")
    if generation < 0:
        raise ArtifactError(f"generation must be non-negative, got {generation}")
    params = model.params
    if graph is not None:
        require_graph_matches_params(params, graph, error_cls=ArtifactError)

    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    manifest: Dict[str, object] = scoring_function_metadata(model.scoring_function)
    manifest.update(
        {
            "schema_version": ARTIFACT_SCHEMA_VERSION,
            "generation": int(generation),
            "num_entities": int(params["entities"].shape[0]),
            "num_relations": int(params["relations"].shape[0]),
            "config": model.config.to_dict(),
            "metrics": dict(metrics or {}),
            "params": _write_params_dir(params, base),
        }
    )
    to_json_file(manifest, base / MANIFEST_FILENAME)

    entity_names, relation_names = _vocab_from_sources(
        graph, Path(model_directory) if model_directory is not None else None
    )
    write_vocab_file(entity_names, relation_names, base / VOCAB_FILENAME)
    return base


def _write_params_dir(params: ParamDict, base: Path) -> Dict[str, str]:
    """Write each parameter array as a raw ``params/<key>.npy`` file.

    Returns the manifest's parameter map (key → relative file path).  Raw
    ``.npy`` (not ``.npz``) is deliberate: zipped archives cannot be
    memory-mapped, per-array files can.
    """
    params_dir = base / PARAMS_DIRNAME
    params_dir.mkdir(parents=True, exist_ok=True)
    param_files: Dict[str, str] = {}
    for key, array in params.items():
        if not _PARAM_KEY_PATTERN.match(key):
            raise ArtifactError(
                f"parameter key {key!r} is not a safe filename "
                f"(allowed: letters, digits, '_', '.', '-')"
            )
        np.save(params_dir / f"{key}.npy", np.ascontiguousarray(array))
        param_files[key] = f"{PARAMS_DIRNAME}/{key}.npy"
    return param_files


def _read_manifest(base: Path) -> Dict[str, object]:
    """Read and structurally validate the artifact manifest."""
    prefix = f"cannot load artifact from {base}"
    manifest_path = base / MANIFEST_FILENAME
    if not manifest_path.exists():
        raise ArtifactError(
            f"{prefix}: missing {MANIFEST_FILENAME} "
            f"(expected a directory written by export_artifact)"
        )
    try:
        manifest = from_json_file(manifest_path)
    except ValueError as error:
        raise ArtifactError(
            f"{prefix}: {MANIFEST_FILENAME} is not valid JSON ({error})"
        ) from error
    missing_keys = [key for key in _REQUIRED_MANIFEST_KEYS if key not in manifest]
    if missing_keys:
        raise ArtifactError(
            f"{prefix}: {MANIFEST_FILENAME} is missing required keys: "
            f"{', '.join(missing_keys)}"
        )
    return manifest


def _load_params_v1(base: Path) -> ParamDict:
    """Compatibility shim for schema-v1 artifacts (a single ``params.npz``)."""
    prefix = f"cannot load artifact from {base}"
    params_path = base / LEGACY_PARAMS_FILENAME
    if not params_path.exists():
        raise ArtifactError(
            f"{prefix}: missing {LEGACY_PARAMS_FILENAME} "
            f"(expected a directory written by export_artifact)"
        )
    try:
        return load_params_npz(params_path, required_keys=("entities", "relations"))
    except (ValueError, OSError) as error:
        raise ArtifactError(f"{prefix}: {error}") from error


def _load_params_v2(base: Path, manifest: Dict[str, object], mmap: bool) -> ParamDict:
    """Load the raw ``params/<key>.npy`` files of a schema-v2 artifact."""
    prefix = f"cannot load artifact from {base}"
    param_files = manifest.get("params")
    if not isinstance(param_files, dict) or not param_files:
        raise ArtifactError(
            f"{prefix}: {MANIFEST_FILENAME} has no 'params' file map "
            f"(expected a schema-v2 directory written by export_artifact)"
        )
    missing = [name for name in ("entities", "relations") if name not in param_files]
    if missing:
        raise ArtifactError(
            f"{prefix}: {MANIFEST_FILENAME} params map is missing required "
            f"arrays: {', '.join(missing)}"
        )
    params: ParamDict = {}
    for key, relative in param_files.items():
        path = base / str(relative)
        if not path.exists():
            raise ArtifactError(
                f"{prefix}: missing parameter file {relative} "
                f"(declared in {MANIFEST_FILENAME})"
            )
        try:
            if mmap:
                # mmap_mode="r" pages are file-backed and read-only: every
                # worker process that opens the same artifact shares them.
                array = np.load(path, mmap_mode="r")
            else:
                array = np.load(path)
                array.flags.writeable = False
        except ValueError as error:
            raise ArtifactError(f"{prefix}: {relative} is not a valid .npy file ({error})") from error
        params[key] = array
    return params


def load_artifact(directory: PathLike, mmap: bool = False) -> ModelArtifact:
    """Load and validate a serving artifact written by :func:`export_artifact`.

    Parameters
    ----------
    mmap:
        With ``True``, schema-v2 parameter arrays are returned as read-only
        ``np.memmap`` views — the OS page cache then holds one shared copy
        of the embeddings no matter how many worker processes load the same
        artifact.  Schema-v1 artifacts cannot be memory-mapped (``.npz`` is
        a zip archive) and fall back to read-only in-memory arrays; check
        :attr:`ModelArtifact.params_memmap` for what actually happened.
        In both modes the arrays are immutable: serving never trains.
    """
    base = Path(directory)
    if not base.is_dir():
        raise ArtifactError(f"artifact directory {base} does not exist")
    manifest = _read_manifest(base)
    schema_version = int(manifest["schema_version"])
    if schema_version > ARTIFACT_SCHEMA_VERSION or schema_version < 1:
        raise ArtifactError(
            f"artifact {base} has schema version {schema_version}, but this "
            f"build reads versions 1..{ARTIFACT_SCHEMA_VERSION}; re-export the model"
        )
    params_memmap = False
    if schema_version == 1:
        params = _load_params_v1(base)
        if mmap:
            # .npz archives decompress on read; share-by-page is impossible,
            # so the shim serves read-only in-memory arrays instead.
            for array in params.values():
                array.flags.writeable = False
    else:
        params = _load_params_v2(base, manifest, mmap)
        params_memmap = mmap
    check_declared_counts(
        manifest,
        params,
        ArtifactError,
        f"cannot load artifact from {base}",
        MANIFEST_FILENAME,
        PARAMS_DIRNAME if schema_version >= 2 else LEGACY_PARAMS_FILENAME,
    )

    try:
        scoring_function = scoring_function_from_metadata(manifest)
        config = TrainingConfig.from_dict(manifest["config"])
    except (KeyError, TypeError, ValueError) as error:
        raise ArtifactError(f"cannot load artifact from {base}: {error}") from error

    num_entities = int(manifest["num_entities"])
    num_relations = int(manifest["num_relations"])
    generation = manifest.get("generation", 0)
    if not isinstance(generation, int) or generation < 0:
        raise ArtifactError(
            f"artifact {base}: 'generation' must be a non-negative integer "
            f"(got {generation!r})"
        )
    entity_names = relation_names = None
    vocab_path = base / VOCAB_FILENAME
    if vocab_path.exists():
        try:
            vocab = from_json_file(vocab_path)
        except ValueError as error:
            raise ArtifactError(
                f"artifact {base}: {VOCAB_FILENAME} is not valid JSON ({error})"
            ) from error
        entity_names = vocab.get("entity_names")
        relation_names = vocab.get("relation_names")
        for label, names, count in (
            ("entity_names", entity_names, num_entities),
            ("relation_names", relation_names, num_relations),
        ):
            if names is not None and len(names) != count:
                raise ArtifactError(
                    f"artifact {base}: {VOCAB_FILENAME} holds {len(names)} "
                    f"{label} but the manifest declares {count}"
                )

    return ModelArtifact(
        scoring_function=scoring_function,
        params=params,
        config=config,
        num_entities=num_entities,
        num_relations=num_relations,
        metrics=dict(manifest.get("metrics") or {}),
        entity_names=tuple(entity_names) if entity_names else None,
        relation_names=tuple(relation_names) if relation_names else None,
        schema_version=schema_version,
        generation=int(generation),
        path=base,
        params_memmap=params_memmap,
    )
