"""Pre-forked multi-worker serving fleet over a memmap-shared artifact.

The single-process :func:`~repro.serving.service.serve_forever` keeps the
full embedding arrays private to one Python process; scaling it by running
N copies multiplies the resident memory N times.  The fleet instead follows
the shared-store/worker split of DGL's ``contrib/graph_store.py``:

* the **parent** validates the artifact, precomputes the known-positive
  filter index once (saved beside the artifact as raw ``.npy`` files), binds
  the listener socket, and forks N workers;
* each **worker** re-opens the artifact with ``mmap=True`` *after* the fork,
  so its embedding pages are file-backed and shared through the OS page
  cache rather than copy-on-write duplicates of the parent heap.  Workers
  adopt the inherited listener (one kernel accept queue load-balances
  connections across the fleet), wrap their engine in a
  :class:`~repro.serving.engine.MicroBatcher`, and report per-worker
  ``/stats`` including resident/shared/private memory;
* SIGTERM/SIGINT to the parent is forwarded to every worker, each of which
  stops accepting, drains in-flight requests, and exits; the parent reaps
  them and closes the listener.
* SIGHUP to the parent (or :meth:`ServingFleet.signal_reload`) is forwarded
  too: each worker rebuilds its engine stack from the artifact directory
  off-thread via its :class:`~repro.serving.service.EngineReloader` and
  atomically swaps it in — a fleet-wide artifact hot-swap with zero dropped
  requests (publish the new generation at the same path, e.g. by flipping a
  symlink, then send SIGHUP).

``repro-autosf serve --workers N`` is the CLI entry point; the
single-process in-memory engine remains the exact parity oracle (the
serving load benchmark asserts bit-identical answers).
"""

from __future__ import annotations

import os
import signal
import socket
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.metrics import MetricsRegistry, set_registry
from repro.serving.artifact import ModelArtifact, load_artifact
from repro.serving.engine import (
    FILTER_INDEX_DIRNAME,
    FilterIndex,
    save_filter_index,
)
from repro.serving.service import EngineReloader, create_server
from repro.utils.config import ConfigError

PathLike = Union[str, Path]

#: Sanity ceiling for ``--workers`` — far above any useful fan-out for a
#: GIL-bound HTTP worker, low enough to catch typos like ``--workers 1000``.
MAX_WORKERS = 64

#: Valid TCP port range for ``--port`` (0 asks the OS for a free port).
PORT_RANGE = (0, 65535)


def validate_serve_options(
    port: int, workers: int, micro_batch_window_ms: float = 0.0
) -> None:
    """Validate ``serve`` flags, raising :class:`ConfigError` naming the flag.

    The CLI funnels these through before any socket or fork work so a typo
    surfaces as one readable line instead of a bare ``OSError`` stack trace.
    """
    low, high = PORT_RANGE
    if not low <= int(port) <= high:
        raise ConfigError(
            f"--port must be in {low}..{high} (0 picks a free port), got {port}"
        )
    if not 1 <= int(workers) <= MAX_WORKERS:
        raise ConfigError(f"--workers must be in 1..{MAX_WORKERS}, got {workers}")
    if micro_batch_window_ms < 0:
        raise ConfigError(
            f"--micro-batch-window must be non-negative milliseconds "
            f"(0 disables coalescing), got {micro_batch_window_ms}"
        )


def prepare_filter_index(index: FilterIndex, artifact_dir: PathLike) -> Path:
    """Save a known-positive index beside the artifact for workers to mmap."""
    return save_filter_index(index, Path(artifact_dir) / FILTER_INDEX_DIRNAME)


class ServingFleet:
    """Parent-side controller: bind once, fork N workers, drain on SIGTERM."""

    def __init__(
        self,
        artifact_dir: PathLike,
        host: str = "127.0.0.1",
        port: int = 8080,
        workers: int = 1,
        batch_size: int = 256,
        entity_chunk_size: int = 0,
        micro_batch_window_ms: float = 2.0,
        operator_cache_size: int = 256,
        result_cache_size: int = 4096,
        filter_index: Optional[FilterIndex] = None,
        quiet: bool = True,
    ) -> None:
        validate_serve_options(port, workers, micro_batch_window_ms)
        if not hasattr(os, "fork"):  # pragma: no cover - Windows guard
            raise ConfigError("--workers needs os.fork(); this platform has none")
        self.artifact_dir = Path(artifact_dir)
        self.host = host
        self.port = int(port)
        self.workers = int(workers)
        self.batch_size = int(batch_size)
        self.entity_chunk_size = int(entity_chunk_size)
        self.micro_batch_window_ms = float(micro_batch_window_ms)
        self.operator_cache_size = int(operator_cache_size)
        self.result_cache_size = int(result_cache_size)
        self.quiet = quiet
        self.listener: Optional[socket.socket] = None
        self.worker_pids: List[int] = []
        self._filter_index_path: Optional[Path] = None
        # Parent-side validation: a broken artifact should fail here, once,
        # not in N children after the fork.
        self.artifact: ModelArtifact = load_artifact(self.artifact_dir, mmap=True)
        if filter_index is not None:
            self._filter_index_path = prepare_filter_index(filter_index, self.artifact_dir)
        elif (self.artifact_dir / FILTER_INDEX_DIRNAME).is_dir():
            self._filter_index_path = self.artifact_dir / FILTER_INDEX_DIRNAME

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> int:
        """Bind the listener and fork the workers; returns the bound port."""
        if self.listener is not None:
            raise RuntimeError("fleet already started")
        self.listener = socket.create_server(
            (self.host, self.port), backlog=max(128, self.workers * 32), reuse_port=False
        )
        self.port = self.listener.getsockname()[1]
        for worker_id in range(self.workers):
            pid = os.fork()
            if pid == 0:  # pragma: no cover - child process, exits via os._exit
                status = 1
                try:
                    self._run_worker(worker_id)
                    status = 0
                except BaseException:
                    import traceback

                    traceback.print_exc()
                finally:
                    # Never fall back into the parent's code (pytest, CLI
                    # epilogue, atexit handlers) from a forked child.
                    os._exit(status)
            self.worker_pids.append(pid)
        return self.port

    def _run_worker(self, worker_id: int) -> None:  # pragma: no cover - child process
        # Each worker owns a real metrics registry (installed as this
        # process's global sink) so its GET /metrics exposes live
        # per-worker counters and latency histograms.
        registry = MetricsRegistry()
        set_registry(registry)
        # Re-open the artifact *after* the fork: np.load(mmap_mode="r") pages
        # are file-backed and shared across the fleet via the page cache,
        # whereas the parent's arrays would be duplicated copy-on-write.
        # The same reloader recipe rebuilds the stack on SIGHUP hot-swaps,
        # so a reloaded engine is configured identically to a fresh worker.
        reloader = EngineReloader(
            artifact_dir=self.artifact_dir,
            mmap=True,
            batch_size=self.batch_size,
            entity_chunk_size=self.entity_chunk_size,
            operator_cache_size=self.operator_cache_size,
            result_cache_size=self.result_cache_size,
            micro_batch_window_s=self.micro_batch_window_ms / 1000.0,
            registry=registry,
        )
        artifact, engine, batcher = reloader.build()
        server = create_server(
            engine,
            artifact,
            quiet=self.quiet,
            listen_socket=self.listener,
            batcher=batcher,
            worker_id=worker_id,
            registry=registry,
            reloader=reloader,
        )
        server.install_signal_handlers()
        server.install_reload_handler()
        try:
            server.serve_forever()
        finally:
            server.server_close()

    def terminate(self, signum: int = signal.SIGTERM) -> None:
        """Forward a shutdown signal to every live worker."""
        for pid in self.worker_pids:
            try:
                os.kill(pid, signum)
            except ProcessLookupError:
                pass

    def signal_reload(self) -> None:
        """Ask every worker to hot-swap to the artifact now on disk.

        Publish the new generation at ``artifact_dir`` first (atomic
        symlink flip or in-place rewrite), then call this; each worker
        rebuilds off-thread and swaps atomically, so queries keep being
        answered — by the old generation until the instant of its swap.
        """
        self.terminate(signal.SIGHUP)

    def wait(self) -> int:
        """Reap all workers; returns the worst exit status."""
        worst = 0
        for pid in self.worker_pids:
            try:
                _, status = os.waitpid(pid, 0)
            except ChildProcessError:
                continue
            code = os.waitstatus_to_exitcode(status)
            worst = max(worst, abs(code))
        self.worker_pids = []
        return worst

    def close(self) -> None:
        if self.listener is not None:
            self.listener.close()
            self.listener = None

    def run(self) -> int:  # pragma: no cover - blocking loop, CLI entry
        """Start, forward SIGTERM/SIGINT to the workers, wait, clean up."""
        port = self.start()
        if not self.quiet:
            pids = ", ".join(str(pid) for pid in self.worker_pids)
            print(
                f"fleet of {self.workers} worker(s) on http://{self.host}:{port} "
                f"(pids {pids}, generation {self.artifact.generation}, "
                f"schema v{self.artifact.schema_version}) — POST /query, "
                f"POST /reload, GET /stats, GET /healthz, GET /metrics; "
                f"SIGHUP hot-swaps the artifact",
                file=sys.stderr,
            )

        def forward(signum: int, _frame: object) -> None:
            self.terminate(signum)

        previous = {
            signum: signal.signal(signum, forward)
            for signum in (signal.SIGTERM, signal.SIGINT, signal.SIGHUP)
        }
        try:
            while True:
                try:
                    status = self.wait()
                    break
                except InterruptedError:  # pragma: no cover - signal race
                    continue
        except KeyboardInterrupt:  # pragma: no cover - Ctrl-C during wait
            self.terminate(signal.SIGINT)
            status = self.wait()
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
            self.close()
        return status


def wait_until_healthy(
    host: str, port: int, timeout_s: float = 10.0
) -> None:
    """Block until ``GET /healthz`` answers (fleet start-up barrier)."""
    from http.client import HTTPConnection

    deadline = time.monotonic() + timeout_s
    last_error: Optional[Exception] = None
    while time.monotonic() < deadline:
        try:
            connection = HTTPConnection(host, port, timeout=2.0)
            try:
                connection.request("GET", "/healthz")
                if connection.getresponse().status == 200:
                    return
            finally:
                connection.close()
        except OSError as error:
            last_error = error
        time.sleep(0.05)
    raise TimeoutError(
        f"no healthy worker on {host}:{port} within {timeout_s:.0f}s: {last_error}"
    )
