"""Command-line interface for the AutoSF reproduction.

The subcommands cover the common workflows without writing any Python:

* ``repro-autosf run``    — execute a declarative experiment spec
  (``spec.json``) end to end through the unified search loop: any
  registered strategy (greedy / random / bayes / plug-ins), optional HPO,
  a versioned run directory (``spec.json`` / ``history.jsonl`` /
  ``report.json`` / ``best/``), and optional serving-artifact export.
  Re-running an existing run directory resumes from its evaluation store;
* ``repro-autosf compare`` — summary table + overlaid any-time curves for
  several run directories (the paper's Fig. 6 comparison);

* ``repro-autosf ingest`` — convert a TSV benchmark directory into a
  sharded on-disk triple store (fixed-size ``.npy`` shards + manifest);
  every dataset-taking subcommand then accepts ``--store DIR`` next to
  ``--benchmark``/``--data``, and ``run`` can override a spec's dataset
  section with ``--store``;
* ``repro-autosf compact`` — fold a live store's pending delta shards
  (written by :meth:`TripleStore.apply_delta`) back into base shards,
  bit-identical to re-ingesting the merged TSV;
* ``repro-autosf stats``  — print the Table III-style relation-pattern
  statistics of a built-in miniature benchmark or a TSV dataset directory;
* ``repro-autosf train``  — train one named scoring function and report the
  filtered link-prediction metrics.  ``--eval-every N`` / ``--patience P``
  enable validation-driven early stopping (patience counts evaluations, not
  epochs) with best-checkpoint restore; ``--save DIR`` persists the model
  together with entity/relation counts and the dataset's vocabulary, so it
  reloads standalone;
* ``repro-autosf search`` — run the progressive greedy search and print the
  case study of the best structure found.  Candidate training can be fanned
  out over worker processes (``--backend process --workers N``) and
  checkpointed to a persistent evaluation store (``--cache-dir DIR``); an
  interrupted or finished run restarts deterministically from its store with
  ``--resume DIR``, retraining nothing that already completed;
* ``repro-autosf export`` — package a saved model (``--model DIR``) or the
  best model of an experiment run (``--run DIR``) as a versioned serving
  artifact (manifest + params + vocab, optionally with eval metrics);
* ``repro-autosf query``  — answer a TSV batch of link-prediction queries
  through the batched inference engine (``--filter`` removes known
  positives);
* ``repro-autosf serve``  — run the dependency-free HTTP query service with
  latency/throughput counters and a Prometheus-style ``GET /metrics``
  endpoint (one registry per worker when ``--workers > 1``);
* ``repro-autosf trace``  — ``merge`` the per-process span files of an
  ``run --obs`` telemetry run into one chronologically ordered
  ``trace.jsonl``, or ``summarize`` them into a per-phase table.

``stats``/``train``/``search`` accept either ``--benchmark <name>`` (one of
the built-in miniatures) or ``--data <dir>`` (a directory with ``train.txt``
/ ``valid.txt`` / ``test.txt`` in the standard tab-separated format).
``train`` and ``search`` additionally take ``--train-engine
{batched,reference,sparse}`` (the fused fast path, the parity-oracle loop,
or the touched-rows-only engine for pairwise losses) and
``--score-chunk-size N`` (bound training memory by scoring candidates in
entity chunks); both travel inside the training config, so worker processes
use the same engine as in-process runs.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Optional

from repro.analysis import CaseStudy, format_run_comparison, format_table
from repro.core import AutoSFSearch
from repro.core.execution import BACKEND_NAMES
from repro.datasets import DatasetError, available_benchmarks, dataset_statistics
from repro.datasets.knowledge_graph import KnowledgeGraph
from repro.datasets.pipeline import DEFAULT_SHARD_SIZE, TripleStore, ingest_tsv
from repro.experiments import (
    DatasetSpec,
    ExperimentRunner,
    ExperimentSpec,
    RunDirectoryError,
    load_run,
)
from repro.experiments.runner import BEST_DIRNAME, TRACE_DIRNAME
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.trace import merge_trace_dir, summarize_spans, write_merged_trace
from repro.kge import (
    KGEModel,
    ModelLoadError,
    require_graph_matches_params,
    train_model,
)
from repro.kge.scoring import available_scoring_functions
from repro.serving import (
    ArtifactError,
    EngineReloader,
    InferenceEngine,
    ServingFleet,
    answer_queries,
    export_artifact,
    format_response_rows,
    known_positive_index,
    load_artifact,
    read_query_file,
    serve_forever,
    validate_serve_options,
)
from repro.utils.config import (
    TRAIN_ENGINES,
    ConfigError,
    SearchConfig,
    TrainingConfig,
)
from repro.utils.serialization import from_json_file, to_json_file

#: Name of the checkpoint manifest written into a search cache directory.
RUN_CONFIG_FILENAME = "run_config.json"


def _positive_int(value: str) -> int:
    number = int(value)
    if number <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value!r}")
    return number


def _non_negative_int(value: str) -> int:
    number = int(value)
    if number < 0:
        raise argparse.ArgumentTypeError(f"must be a non-negative integer, got {value!r}")
    return number


# ----------------------------------------------------------------------
# Shared argument groups
#
# Each group is declared exactly once and serializes straight into the
# matching ExperimentSpec section, so CLI flags and spec fields cannot
# drift: a flag without a section field (or vice versa) shows up here.
# ----------------------------------------------------------------------
def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    """Flags mirroring :class:`repro.experiments.DatasetSpec`."""
    group = parser.add_argument_group("dataset (ExperimentSpec.dataset)")
    source = group.add_mutually_exclusive_group()
    source.add_argument(
        "--benchmark",
        default="wn18rr",
        choices=available_benchmarks(),
        help="built-in miniature benchmark to use (default: wn18rr)",
    )
    source.add_argument("--data", help="directory with train.txt/valid.txt/test.txt")
    source.add_argument(
        "--store",
        help="sharded triple-store directory written by 'ingest' or "
        "KnowledgeGraph.to_store (ExperimentSpec dataset.store section)",
    )
    group.add_argument("--scale", type=float, default=0.5, help="miniature scale factor")
    group.add_argument("--seed", type=int, default=0, help="random seed")


def _add_training_arguments(parser: argparse.ArgumentParser) -> None:
    """Flags mirroring :class:`repro.utils.config.TrainingConfig`."""
    group = parser.add_argument_group("training (ExperimentSpec.training)")
    group.add_argument("--dimension", type=int, default=32, help="embedding dimension")
    group.add_argument("--epochs", type=int, default=30, help="training epochs")
    group.add_argument("--batch-size", type=int, default=256, help="mini-batch size")
    group.add_argument("--learning-rate", type=float, default=0.5, help="Adagrad learning rate")
    group.add_argument("--l2", type=float, default=1e-4, help="L2 penalty")
    group.add_argument(
        "--train-engine",
        choices=TRAIN_ENGINES,
        default="batched",
        help="per-batch training engine: 'batched' is the fused fast path, "
        "'reference' the original loop kept as the parity oracle, 'sparse' "
        "updates only the rows each batch touches (pairwise losses) "
        "(default: batched)",
    )
    group.add_argument(
        "--score-chunk-size",
        type=_positive_int,
        default=None,
        help="entity-chunk size for the batched engine's candidate scoring; "
        "bounds peak training memory at batch-size x chunk scores "
        "(default: score all entities at once)",
    )
    group.add_argument(
        "--eval-every",
        type=_positive_int,
        default=None,
        help="evaluate validation MRR every N epochs during training; enables "
        "early stopping and best-checkpoint restore (default: off)",
    )
    group.add_argument(
        "--patience",
        type=_positive_int,
        default=None,
        help="early-stopping patience, counted in evaluations (not epochs) "
        "without a new best validation MRR; requires --eval-every",
    )


def _dataset_spec_from_args(args: argparse.Namespace) -> DatasetSpec:
    """The dataset argument group as an ExperimentSpec section."""
    store = getattr(args, "store", None)
    return DatasetSpec(
        benchmark=args.benchmark,
        data=args.data,
        scale=args.scale,
        seed=args.seed,
        store={"path": store} if store else None,
    )


def _training_config_from_args(args: argparse.Namespace) -> TrainingConfig:
    """The training argument group as an ExperimentSpec section."""
    if args.patience is not None and args.eval_every is None:
        raise SystemExit(
            "--patience has no effect without --eval-every "
            "(early stopping needs a validation cadence)"
        )
    return TrainingConfig(
        dimension=args.dimension,
        epochs=args.epochs,
        batch_size=args.batch_size,
        learning_rate=args.learning_rate,
        l2_penalty=args.l2,
        seed=args.seed,
        train_engine=args.train_engine,
        score_chunk_size=args.score_chunk_size if args.score_chunk_size is not None else 0,
        eval_every=args.eval_every if args.eval_every is not None else 0,
        early_stopping_patience=args.patience if args.patience is not None else 0,
    )


def _load_graph(args: argparse.Namespace) -> KnowledgeGraph:
    try:
        return _dataset_spec_from_args(args).load()
    except DatasetError as error:
        raise SystemExit(str(error))


def _training_config(args: argparse.Namespace) -> TrainingConfig:
    return _training_config_from_args(args)


def _dataset_spec(args: argparse.Namespace) -> dict:
    return _dataset_spec_from_args(args).to_dict()


def _graph_from_spec(spec: dict) -> KnowledgeGraph:
    return DatasetSpec.from_dict(spec).load()


def command_stats(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    statistics = dataset_statistics(graph)
    row = {"dataset": graph.name}
    row.update(statistics.as_row())
    print(format_table([row], title="Relation-pattern statistics"))
    if statistics.inverse_pairs:
        print("inverse relation pairs:", statistics.inverse_pairs)
    return 0


def command_ingest(args: argparse.Namespace) -> int:
    try:
        store = ingest_tsv(
            args.tsv_dir,
            args.store_dir,
            name=args.name,
            shard_size=args.shard_size,
            check_duplicates=not args.allow_duplicates,
        )
    except DatasetError as error:
        raise SystemExit(str(error))
    summary = store.summary()
    print(f"ingested {args.tsv_dir} -> {store.directory}")
    row = {"store": store.name}
    row.update(summary)
    print(format_table([row], title="Sharded triple store"))
    print(f"use it with: repro-autosf train --store {store.directory}  "
          f"(or a dataset.store spec section)")
    return 0


def command_compact(args: argparse.Namespace) -> int:
    from repro.live import compact_store

    try:
        store = TripleStore.open(args.store_dir)
        pending = len(store.delta_entries())
        generation = store.generation
        compacted = compact_store(store, output_dir=args.output)
    except DatasetError as error:
        raise SystemExit(str(error))
    if args.output is None and pending == 0:
        print(f"{store.directory} has no pending deltas; nothing to do")
        return 0
    print(f"compacted {pending} delta shard(s) at generation {generation} "
          f"into {compacted.directory}")
    row = {"store": compacted.name}
    row.update(compacted.summary())
    print(format_table([row], title="Compacted triple store"))
    return 0


def command_train(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    config = _training_config(args)
    print(f"training {args.model} on {graph.name} "
          f"(d={config.dimension}, {config.epochs} epochs)")
    model = train_model(graph, args.model, config, validate=config.eval_every > 0)
    rows = []
    for split in ("valid", "test"):
        result = model.evaluate(graph, split=split)
        row = {"split": split}
        row.update(result.as_dict())
        rows.append(row)
    print(format_table(rows, title=f"{args.model} on {graph.name}"))
    if args.save:
        path = model.save(args.save, graph=graph)
        print(f"model saved to {path}")
    return 0


def _resume_state(run_dir: Path) -> dict:
    manifest = run_dir / RUN_CONFIG_FILENAME
    if not manifest.exists():
        raise SystemExit(
            f"cannot resume: {manifest} not found "
            f"(was the original search started with --cache-dir?)"
        )
    return from_json_file(manifest)


def command_search(args: argparse.Namespace) -> int:
    budget = args.budget
    if args.resume:
        run_dir = Path(args.resume)
        state = _resume_state(run_dir)
        graph = _graph_from_spec(state["dataset"])
        training_config = TrainingConfig.from_dict(state["training"])
        search_config = SearchConfig.from_dict(state["search"])
        search_config.cache_dir = str(run_dir)
        # Engine flags may be overridden on resume (results are
        # backend-independent by design); dataset/search flags may not.
        if args.backend is not None:
            search_config.backend = args.backend
        if args.workers is not None:
            search_config.num_workers = args.workers
        if budget is None:
            budget = state.get("budget")
        print(f"resuming search for {graph.name} from {run_dir} "
              f"(dataset/training/search flags restored from the manifest; "
              f"only --backend/--workers/--budget overrides apply)")
    else:
        graph = _load_graph(args)
        training_config = _training_config(args)
        search_config = SearchConfig(
            max_blocks=args.max_blocks,
            candidates_per_step=args.candidates,
            top_parents=args.top_parents,
            train_per_step=args.train_per_step,
            seed=args.seed,
            backend=args.backend if args.backend is not None else "serial",
            num_workers=args.workers if args.workers is not None else 1,
            cache_dir=args.cache_dir,
        )
        if args.cache_dir:
            run_dir = Path(args.cache_dir)
            run_dir.mkdir(parents=True, exist_ok=True)
            to_json_file(
                {
                    "dataset": _dataset_spec(args),
                    "training": training_config.to_dict(),
                    "search": search_config.to_dict(),
                    "budget": budget,
                },
                run_dir / RUN_CONFIG_FILENAME,
            )

    print(f"searching a scoring function for {graph.name} "
          f"(up to {search_config.max_blocks} blocks, {budget or 'unbounded'} trained models, "
          f"{search_config.backend} backend x{search_config.num_workers})")
    search = AutoSFSearch(graph, training_config, search_config)
    if search.store is not None and len(search.store):
        print(f"evaluation store: {len(search.store)} cached evaluations available "
              f"(reused when the stored configuration matches)")
    try:
        result = search.run(max_evaluations=budget)
    except KeyboardInterrupt:
        if search.store is not None:
            print(f"\ninterrupted; {len(search.store)} evaluations checkpointed — "
                  f"restart with: repro-autosf search --resume {search.store.directory}")
        else:
            print("\ninterrupted (no --cache-dir, nothing checkpointed)")
        return 130
    print(f"trained {search.evaluator.num_trained} models this run "
          f"({result.num_evaluations} recorded evaluations)")
    study = CaseStudy(graph.name, result.best_structure, result.best_mrr, dataset_statistics(graph))
    print(study.report())
    print("any-time best validation MRR:",
          " ".join(f"{value:.3f}" for value in result.anytime_curve()))
    return 0


def command_run(args: argparse.Namespace) -> int:
    try:
        spec = ExperimentSpec.load(args.spec)
    except ConfigError as error:
        raise SystemExit(str(error))
    if args.store:
        # Override the dataset section: read from a sharded store instead.
        try:
            spec.dataset = DatasetSpec(store={"path": args.store})
        except ConfigError as error:
            raise SystemExit(str(error))
    if args.obs:
        spec.obs.enabled = True
    run_dir = Path(args.run_dir) if args.run_dir else Path("runs") / spec.name
    dataset_label = (
        spec.dataset.store.path if spec.dataset.store is not None
        else spec.dataset.data or spec.dataset.benchmark
    )
    print(f"running experiment {spec.name!r} "
          f"({spec.search.strategy} strategy, {dataset_label}, "
          f"budget {args.budget or spec.search.budget or 'unbounded'}) -> {run_dir}")
    runner = ExperimentRunner(spec, run_dir)
    try:
        record = runner.run(max_evaluations=args.budget)
    except (ConfigError, DatasetError) as error:
        raise SystemExit(str(error))
    except KeyboardInterrupt:
        print(f"\ninterrupted; completed evaluations are checkpointed — "
              f"re-run: repro-autosf run {args.spec} --run-dir {run_dir}")
        return 130
    report = record.report
    rows = [{
        "strategy": record.strategy,
        "dataset": report.get("dataset"),
        "evaluations": report.get("num_evaluations"),
        "trained": report.get("num_trained"),
        "best_mrr": record.best_mrr,
    }]
    print(format_table(rows, title=f"experiment {record.name!r} completed"))
    print("any-time best validation MRR:",
          " ".join(f"{value:.3f}" for value in record.anytime_curve()))
    print(f"run directory: {record.path} (best model: {record.path / BEST_DIRNAME})")
    if "artifact" in report:
        print(f"serving artifact: {record.path / report['artifact']}")
    if spec.obs.enabled:
        print(f"telemetry: metrics.json + {TRACE_DIRNAME}/ under {record.path} "
              f"(summarize with: repro-autosf trace summarize {record.path})")
    return 0


def command_compare(args: argparse.Namespace) -> int:
    records = []
    for path in args.runs:
        try:
            records.append(load_run(path))
        except RunDirectoryError as error:
            raise SystemExit(str(error))
    print(format_run_comparison(records))
    return 0


def _load_artifact_or_exit(path: str):
    try:
        return load_artifact(path)
    except ArtifactError as error:
        raise SystemExit(str(error))


def _serving_filter_index(args: argparse.Namespace, artifact):
    """Build the known-positive filter index when --filter is requested.

    The dataset must be the one the artifact was trained on — a mismatched
    graph would mask arbitrary wrong entities — so its vocabulary sizes are
    validated against the artifact before any query runs.
    """
    if not args.filter:
        return None
    if getattr(args, "store", None):
        # Shard-aware path: build the index straight from the store, never
        # materializing the splits.
        try:
            store = TripleStore.open(args.store)
        except DatasetError as error:
            raise SystemExit(str(error))
        if (
            store.num_entities != artifact.num_entities
            or store.num_relations != artifact.num_relations
        ):
            raise SystemExit(
                f"--filter store {store.name} ({store.num_entities} entities, "
                f"{store.num_relations} relations) does not match the artifact "
                f"({artifact.num_entities} entities, {artifact.num_relations} "
                f"relations); pass the store the model was trained on"
            )
        return known_positive_index(store)
    graph = _load_graph(args)
    if (
        graph.num_entities != artifact.num_entities
        or graph.num_relations != artifact.num_relations
    ):
        raise SystemExit(
            f"--filter dataset {graph.name} ({graph.num_entities} entities, "
            f"{graph.num_relations} relations) does not match the artifact "
            f"({artifact.num_entities} entities, {artifact.num_relations} "
            f"relations); pass the dataset the model was trained on via "
            f"--benchmark/--data (and matching --scale/--seed)"
        )
    return known_positive_index(graph)


def _build_engine(args: argparse.Namespace, artifact) -> InferenceEngine:
    """The shared engine construction behind ``query`` and ``serve``."""
    return InferenceEngine.from_artifact(
        artifact,
        filter_index=_serving_filter_index(args, artifact),
        batch_size=args.batch_size,
        entity_chunk_size=args.entity_chunk_size,
    )


def command_export(args: argparse.Namespace) -> int:
    if (args.model is None) == (args.run is None):
        raise SystemExit("export needs exactly one of --model DIR or --run DIR")
    if args.run is not None:
        try:
            record = load_run(args.run)
        except RunDirectoryError as error:
            raise SystemExit(str(error))
        model_directory = record.best_model_dir()
    else:
        model_directory = args.model
    try:
        model = KGEModel.load(model_directory)
    except ModelLoadError as error:
        raise SystemExit(str(error))
    graph = None
    metrics = None
    if args.with_metrics:
        graph = _load_graph(args)
        try:
            require_graph_matches_params(model.params, graph)
        except ValueError as error:
            raise SystemExit(
                f"cannot evaluate --with-metrics: {error}; pass the dataset the "
                f"model was trained on via --benchmark/--data (and matching "
                f"--scale/--seed)"
            )
        metrics = {}
        for split in ("valid", "test"):
            result = model.evaluate(graph, split=split)
            for key, value in result.as_dict().items():
                metrics[f"{split}_{key}"] = value
    try:
        path = export_artifact(
            model, args.output, graph=graph, metrics=metrics,
            model_directory=model_directory, generation=args.generation,
        )
    except ArtifactError as error:
        raise SystemExit(str(error))
    print(f"artifact exported to {path}")
    artifact = load_artifact(path)
    for key, value in artifact.describe().items():
        print(f"  {key}: {value}")
    return 0


def command_query(args: argparse.Namespace) -> int:
    artifact = _load_artifact_or_exit(args.artifact)
    engine = _build_engine(args, artifact)
    try:
        requests = read_query_file(
            args.queries, artifact, top_k=args.top_k, filtered=args.filter
        )
    except (OSError, ValueError) as error:
        raise SystemExit(str(error))
    if not requests:
        raise SystemExit(f"no queries found in {args.queries}")
    responses = answer_queries(engine, requests, artifact)
    rows = format_response_rows(responses, artifact)
    output = "\n".join(rows)
    if args.output:
        Path(args.output).write_text(output + "\n", encoding="utf-8")
        print(f"{len(requests)} queries answered; results written to {args.output}")
    else:
        print(output)
    total_s = engine.recorder.total("project") + engine.recorder.total("score") + engine.recorder.total("select")
    if total_s > 0:
        print(f"# {len(requests)} queries in {total_s * 1000:.1f} ms engine time "
              f"({len(requests) / total_s:.0f} queries/s)")
    return 0


def command_serve(args: argparse.Namespace) -> int:
    window_ms = args.micro_batch_window
    if window_ms is None:
        window_ms = 2.0 if args.workers > 1 else 0.0
    try:
        validate_serve_options(args.port, args.workers, window_ms)
    except ConfigError as error:
        raise SystemExit(str(error))
    artifact = _load_artifact_or_exit(args.artifact)
    if args.workers > 1:
        try:
            fleet = ServingFleet(
                args.artifact,
                host=args.host,
                port=args.port,
                workers=args.workers,
                batch_size=args.batch_size,
                entity_chunk_size=args.entity_chunk_size,
                micro_batch_window_ms=window_ms,
                filter_index=_serving_filter_index(args, artifact),
                quiet=False,
            )
        except (ArtifactError, ConfigError) as error:
            raise SystemExit(str(error))
        return fleet.run()  # pragma: no cover - blocking loop
    # Install a real registry before engine construction so the engine's
    # counters (and the server's /metrics endpoint) bind to it.
    registry = MetricsRegistry()
    set_registry(registry)
    engine = _build_engine(args, artifact)
    # The reloader rebuilds from the artifact directory on POST /reload or
    # SIGHUP; note it does not re-derive a --filter index from the dataset
    # flags — save one beside the artifact (<dir>/filter_index) to keep
    # filtered queries working across hot swaps.
    reloader = EngineReloader(
        artifact_dir=args.artifact,
        batch_size=args.batch_size,
        entity_chunk_size=args.entity_chunk_size,
        micro_batch_window_s=window_ms / 1000.0,
        registry=registry,
    )
    print(f"serving {artifact.scoring_function.name} "
          f"({artifact.num_entities} entities, {artifact.num_relations} relations, "
          f"generation {artifact.generation}, schema v{artifact.schema_version}) "
          f"on http://{args.host}:{args.port} — POST /query, POST /reload, "
          f"GET /stats, GET /metrics, GET /healthz")
    serve_forever(  # pragma: no cover - blocking loop
        engine, artifact, host=args.host, port=args.port,
        micro_batch_window_s=window_ms / 1000.0, registry=registry,
        reloader=reloader,
    )
    return 0  # pragma: no cover


def command_trace(args: argparse.Namespace) -> int:
    run_dir = Path(args.run_dir)
    trace_dir = run_dir / TRACE_DIRNAME
    if not trace_dir.is_dir():
        # Also accept the trace directory itself for convenience.
        trace_dir = run_dir
    events = merge_trace_dir(trace_dir)
    if not events:
        raise SystemExit(
            f"no trace files (trace-*.jsonl) found under {trace_dir}; "
            f"run the experiment with --obs (or spec section 'obs': "
            f"{{'enabled': true}}) to record spans"
        )
    pids = sorted({event["pid"] for event in events})
    if args.action == "merge":
        output = write_merged_trace(trace_dir)
        print(f"merged {len(events)} spans from {len(pids)} process(es) into {output}")
        return 0
    summary = summarize_spans(events)
    rows = [
        {
            "span": name,
            "count": stats["count"],
            "total_s": f"{stats['total']:.3f}",
            "mean_ms": f"{stats['mean'] * 1000.0:.2f}",
            "pids": len(stats["pids"]),
        }
        for name, stats in sorted(
            summary.items(), key=lambda item: item[1]["total"], reverse=True
        )
    ]
    print(format_table(
        rows,
        title=f"{len(events)} spans across {len(pids)} process(es) in {trace_dir}",
    ))
    return 0


def command_worker(args: argparse.Namespace) -> int:
    from repro.core.distributed import serve_worker

    host, sep, port_text = args.connect.rpartition(":")
    if not sep or not host:
        raise SystemExit(
            f"--connect expects HOST:PORT (e.g. 192.168.1.10:5000), got {args.connect!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise SystemExit(f"--connect port must be an integer, got {port_text!r}")
    if not 0 < port < 65536:
        raise SystemExit(f"--connect port must be in 1..65535, got {port}")
    print(f"worker connecting to coordinator at {host}:{port} "
          f"(reconnect every {args.reconnect_interval:g}s, "
          f"idle exit after {args.max_idle:g}s)")
    completed = serve_worker(
        host,
        port,
        reconnect_interval=args.reconnect_interval,
        max_idle=args.max_idle,
    )
    print(f"worker finished: {completed} task(s) evaluated")
    return 0


def _add_serving_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--artifact", required=True, help="serving artifact directory")
    parser.add_argument(
        "--batch-size",
        type=_positive_int,
        default=256,
        help="queries per micro-batch inside the engine (default: 256)",
    )
    parser.add_argument(
        "--entity-chunk-size",
        type=_non_negative_int,
        default=0,
        help="entity-chunk size for the engine's scoring step; bounds the "
        "transient memory of distance-based models (TransE/RotatE) at "
        "batch-size x chunk x dimension (0, the default, scores all "
        "entities at once)",
    )
    parser.add_argument(
        "--filter",
        action="store_true",
        help="remove known train/valid positives from the answers; rebuilds "
        "the dataset from --benchmark/--data to index known triples",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-autosf",
        description="AutoSF reproduction: train and search scoring functions for KG embedding",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    stats_parser = subparsers.add_parser("stats", help="dataset relation-pattern statistics")
    _add_dataset_arguments(stats_parser)
    stats_parser.set_defaults(handler=command_stats)

    run_parser = subparsers.add_parser(
        "run",
        help="execute a declarative experiment spec (spec.json) end to end",
    )
    run_parser.add_argument("spec", help="path to an ExperimentSpec JSON file")
    run_parser.add_argument(
        "--run-dir",
        help="run directory to write (default: runs/<spec name>); re-running an "
        "existing directory resumes from its evaluation store",
    )
    run_parser.add_argument(
        "--budget",
        type=_positive_int,
        default=None,
        help="override the spec's search.budget (cap on recorded evaluations, "
        "including cache replays)",
    )
    run_parser.add_argument(
        "--store",
        help="override the spec's dataset section with a sharded triple-store "
        "directory (sets dataset.store.path)",
    )
    run_parser.add_argument(
        "--obs",
        action="store_true",
        help="enable the telemetry layer for this run regardless of the "
        "spec's obs section: collect metrics into <run-dir>/metrics.json "
        "and trace spans into <run-dir>/trace/",
    )
    run_parser.set_defaults(handler=command_run)

    ingest_parser = subparsers.add_parser(
        "ingest",
        help="convert a TSV benchmark directory into a sharded triple store",
    )
    ingest_parser.add_argument("tsv_dir", help="directory with train.txt/valid.txt/test.txt")
    ingest_parser.add_argument("store_dir", help="output store directory")
    ingest_parser.add_argument(
        "--shard-size",
        type=_positive_int,
        default=DEFAULT_SHARD_SIZE,
        help=f"triples per shard (default: {DEFAULT_SHARD_SIZE})",
    )
    ingest_parser.add_argument("--name", help="store label (default: the TSV directory name)")
    ingest_parser.add_argument(
        "--allow-duplicates",
        action="store_true",
        help="skip the duplicate-triple check (needed for dumps that "
        "legitimately repeat triples within a split)",
    )
    ingest_parser.set_defaults(handler=command_ingest)

    compact_parser = subparsers.add_parser(
        "compact",
        help="fold a live store's pending delta shards back into base shards",
    )
    compact_parser.add_argument("store_dir", help="sharded triple-store directory")
    compact_parser.add_argument(
        "--output",
        help="write the compacted store here instead of rewriting in place",
    )
    compact_parser.set_defaults(handler=command_compact)

    compare_parser = subparsers.add_parser(
        "compare", help="compare experiment run directories (table + any-time curves)"
    )
    compare_parser.add_argument("runs", nargs="+", help="run directories written by 'run'")
    compare_parser.set_defaults(handler=command_compare)

    train_parser = subparsers.add_parser("train", help="train one scoring function")
    _add_dataset_arguments(train_parser)
    _add_training_arguments(train_parser)
    train_parser.add_argument(
        "--model",
        default="simple",
        choices=available_scoring_functions(),
        help="scoring function to train (default: simple)",
    )
    train_parser.add_argument("--save", help="directory to save the trained model into")
    train_parser.set_defaults(handler=command_train)

    search_parser = subparsers.add_parser("search", help="run the AutoSF greedy search")
    _add_dataset_arguments(search_parser)
    _add_training_arguments(search_parser)
    search_parser.add_argument("--max-blocks", type=int, default=6, help="largest block count B")
    search_parser.add_argument("--candidates", type=int, default=24, help="pool size N per stage")
    search_parser.add_argument("--top-parents", type=int, default=5, help="parents K1 per stage")
    search_parser.add_argument("--train-per-step", type=int, default=6, help="trained candidates K2")
    search_parser.add_argument(
        "--budget",
        type=_positive_int,
        default=None,
        help="cap on recorded evaluations, including cache replays",
    )
    search_parser.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default=None,
        help="where candidate training runs (default: serial)",
    )
    search_parser.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="worker processes for --backend process (default: 1)",
    )
    search_parser.add_argument(
        "--cache-dir",
        help="directory for the persistent evaluation store (enables --resume)",
    )
    search_parser.add_argument(
        "--resume",
        metavar="DIR",
        help="resume a previous --cache-dir search; dataset and configs are restored "
        "from DIR (only --backend/--workers/--budget may be overridden)",
    )
    search_parser.set_defaults(handler=command_search)

    export_parser = subparsers.add_parser(
        "export", help="package a saved model as a versioned serving artifact"
    )
    export_source = export_parser.add_mutually_exclusive_group()
    export_source.add_argument(
        "--model", help="model directory written by train --save"
    )
    export_source.add_argument(
        "--run", help="experiment run directory written by 'run' (exports best/)"
    )
    export_parser.add_argument("--output", required=True, help="artifact output directory")
    export_parser.add_argument(
        "--generation",
        type=_non_negative_int,
        default=0,
        help="artifact generation stamp for live hot-swap deployments "
        "(default: 0); 'serve' reports it in the banner and /stats",
    )
    export_parser.add_argument(
        "--with-metrics",
        action="store_true",
        help="evaluate the model on --benchmark/--data and embed the filtered "
        "valid/test metrics (and the dataset vocabulary) in the artifact",
    )
    _add_dataset_arguments(export_parser)
    export_parser.set_defaults(handler=command_export)

    query_parser = subparsers.add_parser(
        "query", help="answer a TSV batch of link-prediction queries"
    )
    _add_serving_arguments(query_parser)
    query_parser.add_argument(
        "--queries",
        required=True,
        help="TSV file: 'head<TAB>relation<TAB>?' asks for tails, "
        "'?<TAB>relation<TAB>tail' for heads (labels or integer ids)",
    )
    query_parser.add_argument(
        "--top-k", type=_positive_int, default=10, help="answers per query (default: 10)"
    )
    query_parser.add_argument("--output", help="write the result TSV here instead of stdout")
    _add_dataset_arguments(query_parser)
    query_parser.set_defaults(handler=command_query)

    serve_parser = subparsers.add_parser(
        "serve", help="run the HTTP query service (stdlib http.server)"
    )
    _add_serving_arguments(serve_parser)
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_parser.add_argument("--port", type=int, default=8080, help="bind port (0 picks a free port)")
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="pre-forked worker processes sharing the memmap'd artifact "
        "through one inherited listener (default: 1 = single process)",
    )
    serve_parser.add_argument(
        "--micro-batch-window",
        type=float,
        default=None,
        metavar="MS",
        help="coalesce concurrent queries arriving within this many "
        "milliseconds into one engine call (0 disables; default: 2 ms "
        "when --workers > 1, else 0)",
    )
    _add_dataset_arguments(serve_parser)
    serve_parser.set_defaults(handler=command_serve)

    worker_parser = subparsers.add_parser(
        "worker",
        help="connect to a queue-backend search coordinator and evaluate "
        "candidates dispatched to this host",
    )
    worker_parser.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="coordinator address: the host running a search with "
        "backend 'queue' and a fixed backend.port",
    )
    worker_parser.add_argument(
        "--reconnect-interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="delay between connection attempts; the coordinator opens a "
        "fresh listener for every dispatch round, so workers poll "
        "(default: 0.5)",
    )
    worker_parser.add_argument(
        "--max-idle",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="exit after this long without a successful connection "
        "(default: 60; 0 keeps polling forever)",
    )
    worker_parser.set_defaults(handler=command_worker)

    trace_parser = subparsers.add_parser(
        "trace", help="merge or summarize the trace spans of an --obs run"
    )
    trace_parser.add_argument(
        "action",
        choices=("merge", "summarize"),
        help="merge: write one chronologically ordered trace.jsonl; "
        "summarize: print a per-span-name breakdown (count/total/mean/pids)",
    )
    trace_parser.add_argument(
        "run_dir",
        help="experiment run directory written by 'run --obs' "
        "(or its trace/ subdirectory)",
    )
    trace_parser.set_defaults(handler=command_trace)
    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via the console entry point
    raise SystemExit(main())
