"""Symmetry-related features (SRF) — Appendix C / Alg. 3 of the paper.

The SRF of a block structure answers, for eleven canonical families of
relation-value assignments (S1–S11), the two questions "can ``g(r)`` be made
*symmetric* under some assignment of this family?" and "can it be made
*skew-symmetric*?".  Each family is described by a 4-vector of scalar values
standing in for ``(r_1, r_2, r_3, r_4)``; the family is explored by permuting
the four values and flipping their signs, exactly as in Alg. 3.

The resulting 22-dimensional binary vector is

* invariant on invariance-group orbits (Proposition 2(i)), and
* directly tied to which relation patterns (symmetric / anti-symmetric /
  inverse, Tab. II) the scoring function can model (Proposition 2(ii)),

which is why it is such an effective, cheap feature for the performance
predictor.  The same machinery also answers the expressiveness question of
Constraint (C1): a structure is expressive iff it can be symmetric under
*some* non-zero assignment and skew-symmetric under some other.
"""

from __future__ import annotations

from itertools import permutations, product
from typing import Dict, List, Tuple

import numpy as np

from repro.kge.scoring.blocks import NUM_CHUNKS, BlockStructure

#: The base example of each assignment family (Remark A.1).  S1–S5 have four
#: non-zero values, S6–S8 three, S9–S10 two and S11 one.
SRF_BASE_ASSIGNMENTS: Tuple[Tuple[float, float, float, float], ...] = (
    (1.0, 2.0, 3.0, 4.0),  # S1: all different
    (1.0, 1.0, 2.0, 2.0),  # S2: two equal pairs
    (1.0, 1.0, 2.0, 3.0),  # S3: one equal pair, two distinct
    (1.0, 1.0, 1.0, 2.0),  # S4: three equal, one distinct
    (1.0, 1.0, 1.0, 1.0),  # S5: all equal
    (0.0, 1.0, 2.0, 3.0),  # S6: one zero, rest different
    (0.0, 1.0, 1.0, 2.0),  # S7: one zero, one equal pair
    (0.0, 1.0, 1.0, 1.0),  # S8: one zero, rest equal
    (0.0, 0.0, 1.0, 2.0),  # S9: two zeros, two different
    (0.0, 0.0, 1.0, 1.0),  # S10: two zeros, equal pair
    (0.0, 0.0, 0.0, 1.0),  # S11: a single non-zero value
)

#: Number of SRF cases and total feature dimension (11 * 2 = 22).
NUM_SRF_CASES = len(SRF_BASE_ASSIGNMENTS)
SRF_DIMENSION = 2 * NUM_SRF_CASES


def _assignment_variants(base: Tuple[float, float, float, float]) -> np.ndarray:
    """All distinct permutations-with-sign-flips of one base assignment."""
    variants = set()
    for perm in permutations(base):
        for flips in product((1.0, -1.0), repeat=NUM_CHUNKS):
            variants.add(tuple(value * flip for value, flip in zip(perm, flips)))
    return np.asarray(sorted(variants), dtype=np.float64)


#: Precomputed variant matrices, one per case, shape (num_variants, 4).
_ASSIGNMENT_VARIANTS: Tuple[np.ndarray, ...] = tuple(
    _assignment_variants(base) for base in SRF_BASE_ASSIGNMENTS
)


def _evaluate_matrices(structure: BlockStructure, assignments: np.ndarray) -> np.ndarray:
    """Evaluate ``g(v)`` for every assignment row; returns (n, 4, 4)."""
    matrices = np.zeros((assignments.shape[0], NUM_CHUNKS, NUM_CHUNKS), dtype=np.float64)
    for row, col, component, sign in structure.blocks:
        matrices[:, row, col] += sign * assignments[:, component]
    return matrices


def case_feature(structure: BlockStructure, case_index: int) -> Tuple[int, int]:
    """The (symmetric, skew-symmetric) feature pair for one case S_i.

    A non-trivial requirement is imposed on the skew-symmetric check: the
    assignment must produce a non-zero matrix, otherwise the all-zero
    assignment of e.g. S11 would make every structure trivially
    "skew-symmetric".
    """
    if not 0 <= case_index < NUM_SRF_CASES:
        raise IndexError(f"case index must be in [0, {NUM_SRF_CASES})")
    assignments = _ASSIGNMENT_VARIANTS[case_index]
    matrices = _evaluate_matrices(structure, assignments)
    transposed = matrices.transpose(0, 2, 1)
    nonzero = np.any(matrices != 0.0, axis=(1, 2))
    symmetric = bool(np.any(np.all(matrices == transposed, axis=(1, 2)) & nonzero))
    skew_symmetric = bool(np.any(np.all(matrices == -transposed, axis=(1, 2)) & nonzero))
    return int(symmetric), int(skew_symmetric)


def srf_features(structure: BlockStructure) -> np.ndarray:
    """The 22-dimensional SRF vector of ``structure`` (Alg. 3)."""
    features = np.zeros(SRF_DIMENSION, dtype=np.float64)
    for case_index in range(NUM_SRF_CASES):
        symmetric, skew_symmetric = case_feature(structure, case_index)
        features[2 * case_index] = symmetric
        features[2 * case_index + 1] = skew_symmetric
    return features


def srf_feature_names() -> List[str]:
    """Human-readable names for the 22 SRF dimensions."""
    names: List[str] = []
    for case_index in range(NUM_SRF_CASES):
        names.append(f"S{case_index + 1}-sym")
        names.append(f"S{case_index + 1}-skew")
    return names


def srf_summary(structure: BlockStructure) -> Dict[str, int]:
    """SRF as a readable name -> 0/1 mapping (used in the case study)."""
    return {
        name: int(value)
        for name, value in zip(srf_feature_names(), srf_features(structure))
    }


def can_be_symmetric(structure: BlockStructure) -> bool:
    """True if ``g(r)`` is symmetric under some non-zero assignment."""
    return any(case_feature(structure, index)[0] for index in range(NUM_SRF_CASES))


def can_be_skew_symmetric(structure: BlockStructure) -> bool:
    """True if ``g(r)`` is skew-symmetric under some non-zero assignment."""
    return any(case_feature(structure, index)[1] for index in range(NUM_SRF_CASES))


def is_expressive(structure: BlockStructure) -> bool:
    """Constraint (C1) / Proposition 1: symmetric *and* skew-symmetric achievable."""
    return can_be_symmetric(structure) and can_be_skew_symmetric(structure)


def onehot_features(structure: BlockStructure) -> np.ndarray:
    """Plain one-hot encoding of the substitute matrix (the PNAS-style baseline).

    Every one of the 16 cells is encoded as a 9-way one-hot over the values
    ``{0, ±1, ±2, ±3, ±4}``, giving a 144-dimensional vector.  (The paper's
    one-hot baseline uses a 96-dimensional encoding specific to f6
    structures; this version works for any block count, which is the role
    the feature plays in the Fig. 8 ablation.)
    """
    matrix = structure.substitute_matrix().ravel()
    num_values = 2 * NUM_CHUNKS + 1
    features = np.zeros(matrix.size * num_values, dtype=np.float64)
    for cell, value in enumerate(matrix):
        features[cell * num_values + int(value) + NUM_CHUNKS] = 1.0
    return features


ONEHOT_DIMENSION = 16 * (2 * NUM_CHUNKS + 1)
