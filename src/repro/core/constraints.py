"""Structural constraints on candidate scoring functions (Sec. IV-A1).

Two constraints separate promising candidates from degenerate ones:

* **(C1) expressiveness** — ``g(r)`` must admit both a symmetric and a
  skew-symmetric value assignment (Proposition 1); otherwise the scoring
  function cannot model all of the common relation patterns of Tab. II.
  The check is delegated to the SRF machinery (:mod:`repro.core.srf`).
* **(C2) non-degeneracy** — the substitute matrix must have no zero rows or
  columns (otherwise some embedding dimensions are never trained), must use
  all four relation chunks, and must have no repeated rows or columns
  (repetitions make chunks redundant).

The filter enforces (C2) cheaply on every generated candidate; (C1) is what
the SRF-based predictor learns to exploit, and it is also available here as
an explicit check for tests and for strict generation modes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.srf import can_be_skew_symmetric, can_be_symmetric
from repro.kge.scoring.blocks import NUM_CHUNKS, BlockStructure


@dataclass(frozen=True)
class ConstraintReport:
    """Outcome of checking one structure against (C1) and (C2)."""

    no_zero_rows: bool
    no_zero_columns: bool
    covers_all_components: bool
    no_repeated_rows: bool
    no_repeated_columns: bool
    can_be_symmetric: bool
    can_be_skew_symmetric: bool

    @property
    def satisfies_c2(self) -> bool:
        return (
            self.no_zero_rows
            and self.no_zero_columns
            and self.covers_all_components
            and self.no_repeated_rows
            and self.no_repeated_columns
        )

    @property
    def satisfies_c1(self) -> bool:
        return self.can_be_symmetric and self.can_be_skew_symmetric

    @property
    def satisfies_all(self) -> bool:
        return self.satisfies_c1 and self.satisfies_c2

    def violations(self) -> List[str]:
        """Names of the violated sub-constraints (empty when fully valid)."""
        problems = []
        if not self.no_zero_rows:
            problems.append("zero row")
        if not self.no_zero_columns:
            problems.append("zero column")
        if not self.covers_all_components:
            problems.append("unused relation chunk")
        if not self.no_repeated_rows:
            problems.append("repeated rows")
        if not self.no_repeated_columns:
            problems.append("repeated columns")
        if not self.can_be_symmetric:
            problems.append("cannot be symmetric")
        if not self.can_be_skew_symmetric:
            problems.append("cannot be skew-symmetric")
        return problems


def _has_repeats(vectors: np.ndarray) -> bool:
    """True if any two rows of ``vectors`` are identical."""
    unique = np.unique(vectors, axis=0)
    return unique.shape[0] < vectors.shape[0]


def check_structure(structure: BlockStructure, check_expressiveness: bool = True) -> ConstraintReport:
    """Evaluate all structural constraints for ``structure``."""
    matrix = structure.substitute_matrix()
    row_nonzero = np.any(matrix != 0, axis=1)
    col_nonzero = np.any(matrix != 0, axis=0)
    components = set(structure.components_used())

    symmetric_ok = skew_ok = True
    if check_expressiveness:
        symmetric_ok = can_be_symmetric(structure)
        skew_ok = can_be_skew_symmetric(structure)

    return ConstraintReport(
        no_zero_rows=bool(row_nonzero.all()),
        no_zero_columns=bool(col_nonzero.all()),
        covers_all_components=components == set(range(NUM_CHUNKS)),
        no_repeated_rows=not _has_repeats(matrix),
        no_repeated_columns=not _has_repeats(matrix.T),
        can_be_symmetric=symmetric_ok,
        can_be_skew_symmetric=skew_ok,
    )


def satisfies_c2(structure: BlockStructure) -> bool:
    """Constraint (C2) only (what the filter enforces on every candidate)."""
    return check_structure(structure, check_expressiveness=False).satisfies_c2


def satisfies_c1(structure: BlockStructure) -> bool:
    """Constraint (C1): expressiveness via Proposition 1."""
    return can_be_symmetric(structure) and can_be_skew_symmetric(structure)
