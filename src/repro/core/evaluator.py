"""Candidate evaluation: the expensive inner loop of the bi-level problem.

Evaluating one candidate scoring function means solving the lower-level
problem of Definition 1 — training its embeddings to convergence on the
training split — and then measuring filtered MRR on the validation split.
:class:`CandidateEvaluator` wraps that pipeline, caches results by the
candidate's *canonical* form (so equivalent structures are never retrained
even if a caller bypasses the filter), and keeps per-phase timing that the
running-time analysis (Table VII) reports.

The actual training work is delegated to an execution backend
(:mod:`repro.core.execution`): :meth:`CandidateEvaluator.evaluate_many`
dispatches a whole batch of candidates at once, so a parallel backend can
train them on several cores while this class stays the single owner of the
cache, the optional persistent store and the timing ledger.
"""

from __future__ import annotations

import hashlib
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.execution import (
    EvaluationContext,
    EvaluationTask,
    ExecutionBackend,
    ExecutionError,
    SerialBackend,
    derive_candidate_seed,
)
from repro.core.invariance import canonical_key
from repro.datasets.knowledge_graph import KnowledgeGraph
from repro.kge.evaluation import EvaluationResult
from repro.kge.scoring.blocks import BlockStructure
from repro.kge.trainer import TrainingHistory
from repro.utils.config import TrainingConfig
from repro.utils.timing import TimingRecorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (store imports us)
    from repro.core.store import EvaluationStore


def experiment_fingerprint(
    graph: KnowledgeGraph,
    config: TrainingConfig,
    validation_split: str = "valid",
    base_seed: Optional[int] = None,
) -> str:
    """Stable digest of everything that determines an evaluation's value.

    A persistent store entry is only valid for the exact graph, training
    configuration, validation split and seeding scheme it was produced
    under; this fingerprint is stored alongside each entry so a reused
    cache directory can never silently serve results from a different
    experiment.  Split contents are covered by cheap CRCs rather than a
    full hash — enough to catch any regenerated or re-split dataset.
    """
    payload = repr(
        (
            graph.name,
            graph.num_entities,
            graph.num_relations,
            tuple(
                (split, zlib.crc32(graph.split(split).tobytes()))
                for split in ("train", "valid", "test")
            ),
            sorted(config.to_dict().items()),
            validation_split,
            base_seed,
        )
    )
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=16).hexdigest()


@dataclass
class CandidateEvaluation:
    """Everything recorded about one trained candidate."""

    structure: BlockStructure
    validation_mrr: float
    validation_result: EvaluationResult
    training_history: TrainingHistory
    train_seconds: float
    evaluate_seconds: float
    from_cache: bool = False

    @property
    def num_blocks(self) -> int:
        return self.structure.num_blocks


class CandidateEvaluator:
    """Train-and-score pipeline for candidate block structures.

    Parameters
    ----------
    store:
        Optional persistent :class:`~repro.core.store.EvaluationStore`; hits
        are served from disk (and mirrored into the in-memory cache) and
        every fresh evaluation is written through.
    base_seed:
        When set, each candidate trains with a deterministic seed derived
        from ``(base_seed, canonical_key)`` instead of the shared
        ``config.seed``, making results independent of evaluation order and
        identical across serial and parallel backends.
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        config: Optional[TrainingConfig] = None,
        validation_split: str = "valid",
        timing: Optional[TimingRecorder] = None,
        store: Optional["EvaluationStore"] = None,
        base_seed: Optional[int] = None,
    ) -> None:
        self.graph = graph
        self.config = config or TrainingConfig()
        self.validation_split = validation_split
        self.timing = timing if timing is not None else TimingRecorder()
        self.store = store
        self.base_seed = base_seed
        self._cache: Dict[Tuple[int, ...], CandidateEvaluation] = {}
        self._fingerprint: Optional[str] = None
        self.num_trained = 0
        # Fallback used when a backend loses outcomes (e.g. a killed worker):
        # the missing tasks are re-run here, in-process, exactly once.
        self._retry_backend: ExecutionBackend = SerialBackend()

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    def _context(self) -> EvaluationContext:
        return EvaluationContext(
            graph=self.graph, config=self.config, validation_split=self.validation_split
        )

    def _seed_for(self, key: Tuple[int, ...]) -> Optional[int]:
        if self.base_seed is None:
            return self.config.seed
        return derive_candidate_seed(self.base_seed, key)

    def fingerprint(self) -> str:
        """Digest of the experiment this evaluator's results are valid for."""
        if self._fingerprint is None:
            self._fingerprint = experiment_fingerprint(
                self.graph, self.config, self.validation_split, self.base_seed
            )
        return self._fingerprint

    def _lookup(self, key: Tuple[int, ...]) -> Optional[CandidateEvaluation]:
        """In-memory hit, else persistent-store hit (promoted to memory)."""
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if self.store is not None:
            loaded = self.store.get(key, fingerprint=self.fingerprint())
            if loaded is not None:
                self._cache[key] = loaded
                return loaded
        return None

    @staticmethod
    def _cached_copy(
        cached: CandidateEvaluation, structure: BlockStructure
    ) -> CandidateEvaluation:
        """A zero-cost view of a cached result, under the caller's structure."""
        return CandidateEvaluation(
            structure=structure,
            validation_mrr=cached.validation_mrr,
            validation_result=cached.validation_result,
            training_history=cached.training_history,
            train_seconds=0.0,
            evaluate_seconds=0.0,
            from_cache=True,
        )

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, structure: BlockStructure) -> CandidateEvaluation:
        """Train ``structure`` (or reuse the cached result) and score it."""
        return self.evaluate_many([structure])[0]

    def evaluate_many(
        self,
        structures: Sequence[BlockStructure],
        backend: Optional[ExecutionBackend] = None,
    ) -> List[CandidateEvaluation]:
        """Evaluate a batch of candidates through an execution backend.

        Cache hits (memory or store) and within-batch duplicates are resolved
        first; only the remaining distinct candidates are dispatched, as one
        batch, to ``backend`` (default: in-process serial execution).
        Results are returned in input order.
        """
        structures = list(structures)
        backend = backend if backend is not None else SerialBackend()
        keys = [canonical_key(structure) for structure in structures]

        first_occurrence: Dict[Tuple[int, ...], int] = {}
        tasks: List[EvaluationTask] = []
        task_keys: List[Tuple[int, ...]] = []
        for position, (structure, key) in enumerate(zip(structures, keys)):
            if key in first_occurrence or self._lookup(key) is not None:
                continue
            first_occurrence[key] = position
            tasks.append(EvaluationTask(structure=structure, seed=self._seed_for(key)))
            task_keys.append(key)

        if tasks:
            # Absorb each outcome the moment it arrives (cache + write-through
            # to the store), so candidates finished before an interrupt are
            # checkpointed even when the rest of the batch never completes.
            absorbed = set()

            def absorb(index: int, outcome) -> None:
                if index in absorbed:
                    return
                key = task_keys[index]
                outcome_key = canonical_key(outcome.structure)
                if outcome_key != key:
                    # A backend delivering outcome i under index j would
                    # silently poison the cache for candidate j; refuse it.
                    raise ExecutionError(
                        f"execution backend delivered an outcome for candidate "
                        f"{outcome.structure.name or outcome.structure.blocks!r} "
                        f"at task index {index}, which belongs to a different "
                        f"candidate — the backend violated the outcome-alignment "
                        f"contract"
                    )
                absorbed.add(index)
                self.timing.add("train", outcome.train_seconds)
                self.timing.add("evaluate", outcome.evaluate_seconds)
                evaluation = CandidateEvaluation(
                    structure=outcome.structure,
                    validation_mrr=outcome.validation_mrr,
                    validation_result=outcome.validation_result,
                    training_history=outcome.training_history,
                    train_seconds=outcome.train_seconds,
                    evaluate_seconds=outcome.evaluate_seconds,
                )
                self._cache[key] = evaluation
                self.num_trained += 1
                if self.store is not None:
                    self.store.put(key, evaluation, fingerprint=self.fingerprint())

            # on_result is an optimization, not part of the backend contract:
            # absorb anything a callback-less backend only returned.
            outcomes = backend.run(self._context(), tasks, on_result=absorb)
            # Contract check: a backend either returns one slot per task
            # (``None`` holes for lost tasks) or an empty list (relying
            # entirely on on_result).  A truncated/oversized list would
            # mis-assign outcomes to the wrong candidates via positional
            # indexing, so fail loudly instead.
            if outcomes and len(outcomes) != len(tasks):
                raise ExecutionError(
                    f"execution backend {backend!r} returned {len(outcomes)} "
                    f"outcome(s) for {len(tasks)} dispatched task(s); backends "
                    f"must return one (possibly None) slot per task, in task "
                    f"order, or an empty list"
                )
            for index, outcome in enumerate(outcomes or []):
                if outcome is not None:
                    absorb(index, outcome)

            # A lossy backend (killed worker, dropped message) may have
            # returned no outcome for some dispatched tasks.  Retry those
            # serially once; if outcomes are still missing, fail loudly with
            # the affected structures instead of a bare KeyError downstream.
            missing = [index for index, key in enumerate(task_keys) if key not in self._cache]
            if missing:
                retry_tasks = [tasks[index] for index in missing]
                retry_outcomes = self._retry_backend.run(
                    self._context(),
                    retry_tasks,
                    on_result=lambda position, outcome: absorb(missing[position], outcome),
                )
                for position, outcome in enumerate(retry_outcomes or []):
                    if outcome is not None:
                        absorb(missing[position], outcome)
                still_missing = [
                    index for index in missing if task_keys[index] not in self._cache
                ]
                if still_missing:
                    names = ", ".join(
                        repr(tasks[index].structure.name or tasks[index].structure.blocks)
                        for index in still_missing
                    )
                    raise ExecutionError(
                        f"execution backend {backend!r} returned no outcome for "
                        f"{len(still_missing)} of {len(tasks)} dispatched candidate(s) "
                        f"({names}), and a serial retry did not recover them"
                    )

        results: List[CandidateEvaluation] = []
        for position, (structure, key) in enumerate(zip(structures, keys)):
            cached = self._cache[key]
            if first_occurrence.get(key) == position and not cached.from_cache:
                results.append(cached)
            else:
                results.append(self._cached_copy(cached, structure))
        return results

    # ------------------------------------------------------------------
    # Cache inspection
    # ------------------------------------------------------------------
    @property
    def cache_size(self) -> int:
        return len(self._cache)

    def cached_evaluations(self) -> List[CandidateEvaluation]:
        """All distinct evaluations performed so far."""
        return list(self._cache.values())

    def best(self) -> Optional[CandidateEvaluation]:
        """The best evaluation seen so far (by validation MRR)."""
        evaluations = self.cached_evaluations()
        if not evaluations:
            return None
        return max(evaluations, key=lambda evaluation: evaluation.validation_mrr)
