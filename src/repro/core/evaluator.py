"""Candidate evaluation: the expensive inner loop of the bi-level problem.

Evaluating one candidate scoring function means solving the lower-level
problem of Definition 1 — training its embeddings to convergence on the
training split — and then measuring filtered MRR on the validation split.
:class:`CandidateEvaluator` wraps that pipeline, caches results by the
candidate's *canonical* form (so equivalent structures are never retrained
even if a caller bypasses the filter), and keeps per-phase timing that the
running-time analysis (Table VII) reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.invariance import canonical_key
from repro.datasets.knowledge_graph import KnowledgeGraph
from repro.kge.evaluation import EvaluationResult, evaluate_link_prediction
from repro.kge.scoring.bilinear import BlockScoringFunction
from repro.kge.scoring.blocks import BlockStructure
from repro.kge.trainer import Trainer, TrainingHistory
from repro.utils.config import TrainingConfig
from repro.utils.timing import TimingRecorder


@dataclass
class CandidateEvaluation:
    """Everything recorded about one trained candidate."""

    structure: BlockStructure
    validation_mrr: float
    validation_result: EvaluationResult
    training_history: TrainingHistory
    train_seconds: float
    evaluate_seconds: float
    from_cache: bool = False

    @property
    def num_blocks(self) -> int:
        return self.structure.num_blocks


class CandidateEvaluator:
    """Train-and-score pipeline for candidate block structures."""

    def __init__(
        self,
        graph: KnowledgeGraph,
        config: Optional[TrainingConfig] = None,
        validation_split: str = "valid",
        timing: Optional[TimingRecorder] = None,
    ) -> None:
        self.graph = graph
        self.config = config or TrainingConfig()
        self.validation_split = validation_split
        self.timing = timing if timing is not None else TimingRecorder()
        self._cache: Dict[Tuple[int, ...], CandidateEvaluation] = {}
        self.num_trained = 0

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, structure: BlockStructure) -> CandidateEvaluation:
        """Train ``structure`` (or reuse the cached result) and score it."""
        key = canonical_key(structure)
        if key in self._cache:
            cached = self._cache[key]
            return CandidateEvaluation(
                structure=structure,
                validation_mrr=cached.validation_mrr,
                validation_result=cached.validation_result,
                training_history=cached.training_history,
                train_seconds=0.0,
                evaluate_seconds=0.0,
                from_cache=True,
            )

        scoring_function = BlockScoringFunction(structure)
        trainer = Trainer(scoring_function, self.config)
        with self.timing.measure("train"):
            params, history = trainer.fit(self.graph)
        train_seconds = self.timing._samples["train"][-1]

        with self.timing.measure("evaluate"):
            result = evaluate_link_prediction(
                scoring_function, params, self.graph, split=self.validation_split
            )
        evaluate_seconds = self.timing._samples["evaluate"][-1]

        evaluation = CandidateEvaluation(
            structure=structure,
            validation_mrr=result.mrr,
            validation_result=result,
            training_history=history,
            train_seconds=train_seconds,
            evaluate_seconds=evaluate_seconds,
        )
        self._cache[key] = evaluation
        self.num_trained += 1
        return evaluation

    def evaluate_many(self, structures: List[BlockStructure]) -> List[CandidateEvaluation]:
        """Evaluate several candidates sequentially."""
        return [self.evaluate(structure) for structure in structures]

    # ------------------------------------------------------------------
    # Cache inspection
    # ------------------------------------------------------------------
    @property
    def cache_size(self) -> int:
        return len(self._cache)

    def cached_evaluations(self) -> List[CandidateEvaluation]:
        """All distinct evaluations performed so far."""
        return list(self._cache.values())

    def best(self) -> Optional[CandidateEvaluation]:
        """The best evaluation seen so far (by validation MRR)."""
        evaluations = self.cached_evaluations()
        if not evaluations:
            return None
        return max(evaluations, key=lambda evaluation: evaluation.validation_mrr)
