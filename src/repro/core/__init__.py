"""AutoSF core: search space, constraints, invariance, SRF, predictor, search.

This package implements the paper's contribution proper:

* :mod:`repro.core.search_space` — candidate generation in the unified
  block-matrix space (Definition 2);
* :mod:`repro.core.constraints` — expressiveness (C1) and non-degeneracy
  (C2) constraints (Sec. IV-A1);
* :mod:`repro.core.invariance` — the 9,216-element invariance group and
  canonical forms (Sec. IV-A2);
* :mod:`repro.core.srf` — symmetry-related features (Appendix C);
* :mod:`repro.core.filters` / :mod:`repro.core.predictor` — the filter Q and
  predictor P of Alg. 2;
* :mod:`repro.core.greedy_search` — the progressive greedy search;
* :mod:`repro.core.execution` — serial / process-pool execution backends
  for the candidate-evaluation inner loop;
* :mod:`repro.core.store` — the persistent evaluation store behind
  cross-run caching and ``search --resume``;
* :mod:`repro.core.baselines` — random / Bayes / general-approximator
  AutoML baselines (Sec. V-D);
* :mod:`repro.core.hpo` — hyper-parameter tuning of the benchmark model
  (Sec. V-A2).
"""

from repro.core.baselines import BayesSearch, RandomSearch, general_approximator_baseline
from repro.core.constraints import ConstraintReport, check_structure, satisfies_c1, satisfies_c2
from repro.core.distributed import QueueBackend, run_worker, serve_worker
from repro.core.evaluator import (
    CandidateEvaluation,
    CandidateEvaluator,
    experiment_fingerprint,
)
from repro.core.execution import (
    EvaluationContext,
    EvaluationOutcome,
    EvaluationTask,
    ExecutionBackend,
    ExecutionError,
    ProcessPoolBackend,
    SerialBackend,
    create_backend,
    derive_candidate_seed,
    evaluate_candidate,
)
from repro.core.filters import CandidateFilter, FilterStatistics
from repro.core.greedy_search import (
    AutoSFSearch,
    SearchRecord,
    SearchResult,
    search_scoring_function,
)
from repro.core.hpo import HPOResult, HPOSpace, HPOTrial, random_search_hpo, tpe_search_hpo
from repro.core.invariance import (
    are_equivalent,
    canonical_form,
    canonical_key,
    distinct_representatives,
    orbit,
    orbit_set,
)
from repro.core.predictor import PerformancePredictor, get_feature_extractor
from repro.core.search_space import (
    enumerate_f4_structures,
    extend_structure,
    random_structure,
    search_space_size,
    total_search_space_size,
)
from repro.core.store import EvaluationStore
from repro.core.srf import (
    SRF_DIMENSION,
    can_be_skew_symmetric,
    can_be_symmetric,
    is_expressive,
    onehot_features,
    srf_features,
    srf_summary,
)

__all__ = [
    "BayesSearch",
    "RandomSearch",
    "general_approximator_baseline",
    "ConstraintReport",
    "check_structure",
    "satisfies_c1",
    "satisfies_c2",
    "CandidateEvaluation",
    "CandidateEvaluator",
    "CandidateFilter",
    "EvaluationContext",
    "EvaluationOutcome",
    "EvaluationStore",
    "EvaluationTask",
    "ExecutionBackend",
    "ExecutionError",
    "FilterStatistics",
    "ProcessPoolBackend",
    "QueueBackend",
    "SerialBackend",
    "run_worker",
    "serve_worker",
    "create_backend",
    "derive_candidate_seed",
    "evaluate_candidate",
    "experiment_fingerprint",
    "AutoSFSearch",
    "SearchRecord",
    "SearchResult",
    "search_scoring_function",
    "HPOResult",
    "HPOSpace",
    "HPOTrial",
    "random_search_hpo",
    "tpe_search_hpo",
    "are_equivalent",
    "canonical_form",
    "canonical_key",
    "distinct_representatives",
    "orbit",
    "orbit_set",
    "PerformancePredictor",
    "get_feature_extractor",
    "enumerate_f4_structures",
    "extend_structure",
    "random_structure",
    "search_space_size",
    "total_search_space_size",
    "SRF_DIMENSION",
    "can_be_skew_symmetric",
    "can_be_symmetric",
    "is_expressive",
    "onehot_features",
    "srf_features",
    "srf_summary",
]
