"""Disk-backed store of candidate evaluations.

Training a candidate is by far the most expensive operation in the search
(Table VII), so throwing trained results away between runs is wasteful.  The
:class:`EvaluationStore` persists every :class:`CandidateEvaluation` as one
JSON file keyed by the candidate's *canonical* key, which buys two things:

* **cross-run caching** — a second search (or benchmark, or ablation) over
  the same graph and configuration reuses every structure it has already
  trained, even across interpreter restarts;
* **checkpoint / resume** — because the greedy search is deterministic given
  its seed, re-running an interrupted search against the same store
  fast-forwards through the completed evaluations and picks up exactly where
  it stopped (``repro-autosf search --resume <dir>``).

Every ``put`` writes through to disk immediately (via a temp-file rename, so
a crash mid-write never leaves a corrupt entry), which is what makes an
interrupted run resumable at the granularity of one trained candidate.
"""

from __future__ import annotations

import hashlib
import os
import re
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.core.evaluator import CandidateEvaluation
from repro.kge.evaluation import EvaluationResult
from repro.kge.scoring.blocks import BlockStructure
from repro.kge.trainer import TrainingHistory
from repro.utils.serialization import PathLike, from_json_file, to_json_string

#: Canonical keys are flat integer tuples (the ravelled canonical matrix).
StoreKey = Tuple[int, ...]


def _normalize_key(key: Iterable[int]) -> StoreKey:
    return tuple(int(value) for value in key)


def _key_digest(key: StoreKey) -> str:
    return hashlib.blake2b(repr(key).encode("utf-8"), digest_size=16).hexdigest()


def _evaluation_to_payload(
    key: StoreKey, evaluation: CandidateEvaluation, fingerprint: Optional[str]
) -> dict:
    result = evaluation.validation_result
    return {
        "format_version": 1,
        "key": list(key),
        "fingerprint": fingerprint,
        "structure": {
            "blocks": [list(block) for block in evaluation.structure.blocks],
            "name": evaluation.structure.name,
        },
        "validation_mrr": float(evaluation.validation_mrr),
        "validation_result": {
            "mrr": float(result.mrr),
            "mean_rank": float(result.mean_rank),
            "hits": {str(k): float(v) for k, v in result.hits.items()},
            "num_queries": int(result.num_queries),
        },
        "training_history": evaluation.training_history.as_dict(),
        "train_seconds": float(evaluation.train_seconds),
        "evaluate_seconds": float(evaluation.evaluate_seconds),
    }


def _evaluation_from_payload(payload: dict) -> CandidateEvaluation:
    structure = BlockStructure(
        [tuple(block) for block in payload["structure"]["blocks"]],
        name=payload["structure"].get("name", ""),
    )
    result_data = payload["validation_result"]
    result = EvaluationResult(
        mrr=float(result_data["mrr"]),
        mean_rank=float(result_data["mean_rank"]),
        hits={int(k): float(v) for k, v in result_data.get("hits", {}).items()},
        num_queries=int(result_data.get("num_queries", 0)),
    )
    history_data = payload.get("training_history", {})
    history = TrainingHistory(
        epochs=[int(epoch) for epoch in history_data.get("epochs", [])],
        losses=[float(loss) for loss in history_data.get("losses", [])],
        elapsed_seconds=[float(value) for value in history_data.get("elapsed_seconds", [])],
        validation_mrr=[
            None if value is None else float(value)
            for value in history_data.get("validation_mrr", [])
        ],
    )
    return CandidateEvaluation(
        structure=structure,
        validation_mrr=float(payload["validation_mrr"]),
        validation_result=result,
        training_history=history,
        train_seconds=float(payload.get("train_seconds", 0.0)),
        evaluate_seconds=float(payload.get("evaluate_seconds", 0.0)),
        from_cache=True,
    )


class EvaluationStore:
    """One-file-per-candidate persistent evaluation cache."""

    def __init__(self, directory: PathLike) -> None:
        self.directory = Path(directory)
        self._entries = self.directory / "evaluations"
        self._entries.mkdir(parents=True, exist_ok=True)

    #: Entry filenames are 32-hex-char digests; anything else is foreign.
    _ENTRY_NAME = re.compile(r"^[0-9a-f]{32}\.json$")

    def _path_for(self, key: StoreKey) -> Path:
        return self._entries / f"{_key_digest(key)}.json"

    def _entry_paths(self) -> List[Path]:
        return sorted(
            path for path in self._entries.glob("*.json") if self._ENTRY_NAME.match(path.name)
        )

    def _scan_keys(self) -> List[StoreKey]:
        """Read every entry's key from disk (only needed for enumeration;
        membership and lookups go straight to the digest-derived path)."""
        keys: List[StoreKey] = []
        for path in self._entry_paths():
            try:
                keys.append(_normalize_key(from_json_file(path)["key"]))
            except (ValueError, KeyError, OSError, TypeError):
                # A truncated entry must not poison the store.
                continue
        return sorted(keys)

    # ------------------------------------------------------------------
    # Mapping-style API
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of entry files on disk — a cheap directory listing, no
        payload parsing (and hence no fingerprint check: entries from a
        different experiment still count)."""
        return len(self._entry_paths())

    def __contains__(self, key: Iterable[int]) -> bool:
        return self._path_for(_normalize_key(key)).exists()

    def keys(self) -> List[StoreKey]:
        return self._scan_keys()

    def __iter__(self) -> Iterator[StoreKey]:
        return iter(self.keys())

    def get(
        self, key: Iterable[int], fingerprint: Optional[str] = None
    ) -> Optional[CandidateEvaluation]:
        """Load the evaluation stored under ``key`` (``None`` when absent).

        When ``fingerprint`` is given, an entry recorded under a different
        experiment fingerprint (other dataset, training config, split or
        seeding scheme) is treated as a miss rather than silently served.
        """
        normalized = _normalize_key(key)
        path = self._path_for(normalized)
        if not path.exists():
            return None
        try:
            payload = from_json_file(path)
            if _normalize_key(payload["key"]) != normalized:
                return None  # digest collision or foreign file
            if fingerprint is not None and payload.get("fingerprint") != fingerprint:
                return None
            return _evaluation_from_payload(payload)
        except (ValueError, KeyError, OSError, TypeError):
            return None

    def put(
        self,
        key: Iterable[int],
        evaluation: CandidateEvaluation,
        fingerprint: Optional[str] = None,
    ) -> Path:
        """Persist ``evaluation`` under ``key``, overwriting any older entry."""
        normalized = _normalize_key(key)
        path = self._path_for(normalized)
        temporary = path.with_suffix(".json.tmp")
        temporary.write_text(
            to_json_string(_evaluation_to_payload(normalized, evaluation, fingerprint)),
            encoding="utf-8",
        )
        os.replace(temporary, path)
        return path

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return f"EvaluationStore({str(self.directory)!r}, entries={len(self)})"
