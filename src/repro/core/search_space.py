"""Search-space enumeration and candidate generation.

Two generation modes are needed by the search algorithm:

* **the f4 seed set** — with exactly four non-zero blocks, constraint (C2)
  forces every row and column to hold exactly one block and every relation
  chunk to be used exactly once, so candidates are (cell permutation,
  component permutation, sign pattern) triples.  Enumerating all of them and
  deduplicating by invariance leaves only a handful of genuinely different
  starting points (the paper reports five);
* **greedy extensions** — an f^{b} candidate is a parent f^{b-2} plus two
  extra blocks ``s <h_i, r_j, t_k>`` in previously empty cells (Eq. 7).

Both modes are exposed as pure functions so the greedy search, the random
search baseline and the tests all share the same generators.
"""

from __future__ import annotations

from itertools import permutations, product
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.core.constraints import satisfies_c2
from repro.core.invariance import orbit_set
from repro.kge.scoring.blocks import NUM_CHUNKS, Block, BlockStructure
from repro.utils.rng import RngLike, ensure_rng

#: Total number of cells in the block matrix.
NUM_CELLS = NUM_CHUNKS * NUM_CHUNKS


def enumerate_f4_structures(deduplicate: bool = True) -> List[BlockStructure]:
    """Every 4-block structure satisfying (C2), optionally deduplicated.

    With four blocks, (C2) forces the occupied cells to form a permutation
    matrix and the components to be a permutation of ``{r_1..r_4}``; signs
    are free.  That gives ``4! * 4! * 2^4 = 9,216`` raw candidates, which
    collapse to a handful of equivalence classes under the invariance group.
    """
    structures: List[BlockStructure] = []
    seen_orbit_keys: set = set()
    for cell_perm in permutations(range(NUM_CHUNKS)):
        for component_perm in permutations(range(NUM_CHUNKS)):
            for signs in product((1, -1), repeat=NUM_CHUNKS):
                blocks: List[Block] = [
                    (row, cell_perm[row], component_perm[row], signs[row])
                    for row in range(NUM_CHUNKS)
                ]
                structure = BlockStructure(blocks)
                if not satisfies_c2(structure):
                    continue
                if deduplicate:
                    # Marking the accepted representative's whole orbit makes
                    # rejecting its 9,215 equivalents an O(1) set lookup.
                    if structure.key() in seen_orbit_keys:
                        continue
                    seen_orbit_keys.update(orbit_set(structure))
                structures.append(structure)
    return structures


def random_block(rng: RngLike = None, exclude_cells: Optional[Sequence] = None) -> Block:
    """Draw one random block, avoiding the given (row, col) cells."""
    gen = ensure_rng(rng)
    excluded = set(tuple(cell) for cell in (exclude_cells or ()))
    if len(excluded) >= NUM_CELLS:
        raise ValueError("no free cell remains for a new block")
    while True:
        row = int(gen.integers(0, NUM_CHUNKS))
        col = int(gen.integers(0, NUM_CHUNKS))
        if (row, col) in excluded:
            continue
        component = int(gen.integers(0, NUM_CHUNKS))
        sign = 1 if gen.random() < 0.5 else -1
        return (row, col, component, sign)


def extend_structure(
    parent: BlockStructure,
    num_new_blocks: int = 2,
    rng: RngLike = None,
    max_attempts: int = 100,
) -> Optional[BlockStructure]:
    """One greedy extension: add ``num_new_blocks`` random blocks to ``parent``.

    Returns ``None`` when no valid extension was found within the attempt
    budget (e.g. because too few cells remain).
    """
    gen = ensure_rng(rng)
    if parent.num_blocks + num_new_blocks > NUM_CELLS:
        return None
    for _attempt in range(max_attempts):
        occupied = list(parent.cells())
        new_blocks: List[Block] = []
        try:
            for _ in range(num_new_blocks):
                block = random_block(gen, exclude_cells=occupied)
                new_blocks.append(block)
                occupied.append((block[0], block[1]))
        except ValueError:
            return None
        candidate = BlockStructure(list(parent.blocks) + new_blocks)
        return candidate
    return None


def random_structure(
    num_blocks: int,
    rng: RngLike = None,
    require_c2: bool = True,
    max_attempts: int = 2000,
) -> Optional[BlockStructure]:
    """Sample one random structure with ``num_blocks`` blocks.

    Used by the random-search baseline (Fig. 6) and by property-based tests.
    When ``require_c2`` is set, rejection sampling is applied until the
    candidate satisfies constraint (C2).
    """
    if not 1 <= num_blocks <= NUM_CELLS:
        raise ValueError(f"num_blocks must be in [1, {NUM_CELLS}]")
    gen = ensure_rng(rng)
    for _attempt in range(max_attempts):
        cells = gen.choice(NUM_CELLS, size=num_blocks, replace=False)
        blocks: List[Block] = []
        for cell in cells:
            row, col = divmod(int(cell), NUM_CHUNKS)
            component = int(gen.integers(0, NUM_CHUNKS))
            sign = 1 if gen.random() < 0.5 else -1
            blocks.append((row, col, component, sign))
        structure = BlockStructure(blocks)
        if not require_c2 or satisfies_c2(structure):
            return structure
    return None


def iterate_random_structures(
    num_blocks: int,
    count: int,
    rng: RngLike = None,
    require_c2: bool = True,
) -> Iterator[BlockStructure]:
    """Yield up to ``count`` random structures (skipping failed draws)."""
    gen = ensure_rng(rng)
    produced = 0
    while produced < count:
        structure = random_structure(num_blocks, gen, require_c2=require_c2)
        if structure is None:
            return
        produced += 1
        yield structure


def search_space_size(num_blocks: int) -> int:
    """Number of raw fillings with exactly ``num_blocks`` non-zero blocks.

    ``C(16, b) * 4^b * 2^b`` — the quantity the complexity analysis of
    Sec. IV-C reports (e.g. about 2 * 10^9 for b = 6).
    """
    from math import comb

    if not 0 <= num_blocks <= NUM_CELLS:
        raise ValueError(f"num_blocks must be in [0, {NUM_CELLS}]")
    return comb(NUM_CELLS, num_blocks) * (NUM_CHUNKS**num_blocks) * (2**num_blocks)


def total_search_space_size() -> int:
    """Size of the unrestricted space: every cell takes one of 9 values (9^16)."""
    return (2 * NUM_CHUNKS + 1) ** NUM_CELLS
