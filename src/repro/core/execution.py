"""Execution backends for the candidate-evaluation inner loop.

Evaluating one candidate scoring function (train to convergence, then score
with the filtered protocol) is embarrassingly parallel across candidates:
each lower-level problem of Definition 1 is independent of every other.
This module isolates *where* those evaluations run from *what* they compute:

* :func:`evaluate_candidate` is the single, pure unit of work shared by all
  backends — given an :class:`EvaluationContext` (graph + training config)
  and an :class:`EvaluationTask` (structure + seed) it trains and scores one
  candidate and returns a plain, picklable :class:`EvaluationOutcome`;
* :class:`SerialBackend` runs tasks in-process, one after the other;
* :class:`ProcessPoolBackend` fans tasks out over a local worker-process
  pool;
* :class:`~repro.core.distributed.QueueBackend` dispatches tasks to worker
  processes over a socket-RPC work queue, so workers may live on other
  hosts (see :mod:`repro.core.distributed`).

Determinism is preserved across backends by seeding every task *per
candidate* rather than from shared mutable RNG state: the seed is derived
from the search seed and the candidate's canonical key with a stable hash
(:func:`derive_candidate_seed`), so a task trains identically no matter
which backend, worker or batch position executes it.  A parallel search
therefore produces a ``SearchResult`` bitwise-equal to a serial one.

Fault model: a backend that loses a task (killed worker, dropped
connection) returns ``None`` in that task's slot instead of hanging or
raising a bare pool error; :meth:`CandidateEvaluator.evaluate_many` then
re-dispatches the holes serially and only raises a descriptive
:class:`ExecutionError` naming the affected candidates when the retry also
fails.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.datasets.knowledge_graph import KnowledgeGraph
from repro.kge.evaluation import EvaluationResult, evaluate_link_prediction
from repro.kge.scoring.bilinear import BlockScoringFunction
from repro.kge.scoring.blocks import BlockStructure
from repro.kge.trainer import Trainer, TrainingHistory
from repro.obs import trace as obs_trace
from repro.utils.config import EXECUTION_BACKENDS, ConfigError, TrainingConfig

from typing import Protocol, runtime_checkable


class ExecutionError(RuntimeError):
    """A batch of evaluation tasks could not be executed to completion.

    Raised with a message naming the affected candidate(s) when a backend
    permanently loses tasks (dead workers past the retry budget, no workers
    ever connecting, a backend violating the outcome-alignment contract).
    Subclasses :class:`RuntimeError` so pre-existing ``except RuntimeError``
    handlers keep working.
    """


def derive_candidate_seed(base_seed: Optional[int], key: Iterable[int]) -> Optional[int]:
    """Deterministic per-candidate seed from the search seed and canonical key.

    Uses a stable cryptographic hash (not Python's randomized ``hash``) so
    that the same (seed, candidate) pair maps to the same training seed in
    every process, interpreter and run.  Returns ``None`` when ``base_seed``
    is ``None`` so unseeded runs stay unseeded.
    """
    if base_seed is None:
        return None
    payload = repr((int(base_seed), tuple(int(value) for value in key)))
    digest = hashlib.blake2b(payload.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % (2**31 - 1)


@dataclass(frozen=True)
class EvaluationContext:
    """Everything a worker needs besides the task itself."""

    graph: KnowledgeGraph
    config: TrainingConfig
    validation_split: str = "valid"


@dataclass(frozen=True)
class EvaluationTask:
    """One candidate to train, with an optional per-candidate seed override."""

    structure: BlockStructure
    seed: Optional[int] = None


@dataclass
class EvaluationOutcome:
    """Picklable result of one :func:`evaluate_candidate` call."""

    structure: BlockStructure
    seed: Optional[int]
    validation_mrr: float
    validation_result: EvaluationResult
    training_history: TrainingHistory
    train_seconds: float
    evaluate_seconds: float


def evaluate_candidate(context: EvaluationContext, task: EvaluationTask) -> EvaluationOutcome:
    """Train one candidate and score it on the validation split.

    This is the unit of work every backend executes; it must stay free of
    shared mutable state so that serial and parallel execution are
    interchangeable.  The training engine (``config.train_engine`` /
    ``config.score_chunk_size``) travels inside the config, so worker
    processes build the same engine as in-process execution.  When
    ``config.eval_every > 0`` training tracks filtered validation MRR,
    enabling early stopping and the trainer's best-checkpoint restore — the
    reported ``validation_mrr`` is then measured on the best checkpoint, not
    on whatever the last epoch produced.
    """
    config = context.config if task.seed is None else context.config.replace(seed=task.seed)
    scoring_function = BlockScoringFunction(task.structure)
    trainer = Trainer(scoring_function, config)

    validation_callback = None
    if config.eval_every > 0:

        def validation_callback(params):
            return evaluate_link_prediction(
                scoring_function, params, context.graph, split=context.validation_split
            ).mrr

    # The span lands in the executing process's own trace file: a fork-pool
    # worker inherits the parent's TraceRecorder, which re-opens per pid, so
    # the merged timeline shows candidates interleaving across workers.
    with obs_trace.span(
        "search.candidate",
        attrs={"blocks": [[int(v) for v in block] for block in task.structure.blocks]},
    ) as candidate_span:
        with obs_trace.span("candidate.train"):
            start = time.perf_counter()
            params, history = trainer.fit(
                context.graph, validation_callback=validation_callback
            )
            train_seconds = time.perf_counter() - start

        with obs_trace.span("candidate.evaluate"):
            start = time.perf_counter()
            result = evaluate_link_prediction(
                scoring_function, params, context.graph, split=context.validation_split
            )
            evaluate_seconds = time.perf_counter() - start
        candidate_span.attrs["validation_mrr"] = float(result.mrr)

    return EvaluationOutcome(
        structure=task.structure,
        seed=task.seed,
        validation_mrr=result.mrr,
        validation_result=result,
        training_history=history,
        train_seconds=train_seconds,
        evaluate_seconds=evaluate_seconds,
    )


#: Per-outcome callback: ``(task_index, outcome)``, invoked as soon as each
#: result is available — in task order for the serial backend, in completion
#: order for the process pool.  The evaluator uses it to checkpoint finished
#: candidates even when another task in the batch is interrupted.
ResultCallback = Callable[[int, EvaluationOutcome], None]


@runtime_checkable
class ExecutionBackend(Protocol):
    """Strategy interface: run a batch of evaluation tasks."""

    name: str
    num_workers: int

    def run(
        self,
        context: EvaluationContext,
        tasks: Sequence[EvaluationTask],
        on_result: Optional[ResultCallback] = None,
    ) -> List[EvaluationOutcome]:
        """Execute every task and return outcomes in task order."""
        ...  # pragma: no cover - protocol body


class SerialBackend:
    """Run every task in the calling process, in order."""

    name = "serial"
    num_workers = 1

    def run(
        self,
        context: EvaluationContext,
        tasks: Sequence[EvaluationTask],
        on_result: Optional[ResultCallback] = None,
    ) -> List[EvaluationOutcome]:
        outcomes: List[EvaluationOutcome] = []
        for index, task in enumerate(tasks):
            outcome = evaluate_candidate(context, task)
            if on_result is not None:
                on_result(index, outcome)
            outcomes.append(outcome)
        return outcomes

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return "SerialBackend()"


# Worker-process global, installed once per worker by the pool initializer so
# the (potentially large) graph is shipped once instead of once per task.
_WORKER_CONTEXT: Optional[EvaluationContext] = None


def _initialize_worker(context: EvaluationContext) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = context


def _run_worker_task(item: "Tuple[int, EvaluationTask]") -> "Tuple[int, EvaluationOutcome]":
    if _WORKER_CONTEXT is None:  # pragma: no cover - defensive
        raise RuntimeError("worker used before initialization")
    index, task = item
    return index, evaluate_candidate(_WORKER_CONTEXT, task)


class ProcessPoolBackend:
    """Fan tasks out over a local worker-process pool.

    Results come back in task order, and every task carries its own seed, so
    the outcome is identical to :class:`SerialBackend` regardless of worker
    scheduling.  Single-task batches (and ``num_workers=1``) short-circuit to
    in-process execution to avoid pointless pool start-up.

    A worker that dies mid-batch (segfault, OOM kill, ``os._exit``) breaks
    the whole pool: the executor raises :class:`BrokenProcessPool` for every
    task that has not finished.  :meth:`run` absorbs that — outcomes already
    completed are kept, every lost task's slot stays ``None`` — so the
    caller's serial-retry path (:meth:`CandidateEvaluator.evaluate_many`)
    can re-dispatch exactly the lost candidates instead of the batch
    hanging forever or dying with a context-free pool error.
    """

    name = "process"

    def __init__(self, num_workers: int = 2, start_method: Optional[str] = None) -> None:
        if num_workers < 1:
            raise ValueError(
                f"ProcessPoolBackend: num_workers must be >= 1, got {num_workers}"
            )
        if start_method is not None and start_method not in multiprocessing.get_all_start_methods():
            raise ValueError(f"unsupported start method: {start_method!r}")
        self.num_workers = num_workers
        self._start_method = start_method

    def _context(self):
        if self._start_method is not None:
            return multiprocessing.get_context(self._start_method)
        # Prefer fork where available: it shares the parent's memory pages
        # (the graph arrives for free) and starts in milliseconds.
        if "fork" in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    def run(
        self,
        context: EvaluationContext,
        tasks: Sequence[EvaluationTask],
        on_result: Optional[ResultCallback] = None,
    ) -> List[EvaluationOutcome]:
        tasks = list(tasks)
        if not tasks:
            return []
        if self.num_workers == 1 or len(tasks) == 1:
            return SerialBackend().run(context, tasks, on_result=on_result)
        workers = min(self.num_workers, len(tasks))
        outcomes: List[Optional[EvaluationOutcome]] = [None] * len(tasks)
        executor = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=self._context(),
            initializer=_initialize_worker,
            initargs=(context,),
        )
        try:
            futures = {
                executor.submit(_run_worker_task, (index, task)): index
                for index, task in enumerate(tasks)
            }
            # as_completed so every finished candidate streams back (and can
            # be checkpointed via on_result) the moment it completes, even
            # while an earlier, slower task is still running; results are
            # slotted back into task order via the returned index.
            for future in as_completed(futures):
                try:
                    index, outcome = future.result()
                except BrokenProcessPool:
                    # A worker died mid-batch.  Its own task — and any task
                    # still queued behind it — is lost; results that already
                    # arrived are kept.  The ``None`` holes tell the caller
                    # exactly which candidates to re-dispatch serially.
                    continue
                outcomes[index] = outcome
                if on_result is not None:
                    on_result(index, outcome)
        finally:
            executor.shutdown(wait=True, cancel_futures=True)
        return outcomes  # type: ignore[return-value]

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return f"ProcessPoolBackend(num_workers={self.num_workers})"


#: Backend names accepted by configuration and the CLI.
BACKEND_NAMES = EXECUTION_BACKENDS


def create_backend(name: str, num_workers: int = 1, **options) -> ExecutionBackend:
    """Instantiate a backend from its configuration name.

    ``num_workers`` is validated here — at the configuration seam — so a bad
    value fails with a :class:`~repro.utils.config.ConfigError` naming the
    field instead of surfacing (or being silently clamped away) deep inside
    a backend constructor.  ``options`` are passed through to the backend
    (the queue backend accepts ``host`` / ``port`` / ``heartbeat_timeout`` /
    ``worker_timeout`` / ``max_retries``).
    """
    if name == "queue":
        # The queue backend accepts num_workers == 0: rely entirely on
        # externally started ``repro-autosf worker --connect`` processes.
        if num_workers < 0:
            raise ConfigError(
                f"backend.num_workers: must be >= 0 for the queue backend "
                f"(0 means external workers only), got {num_workers}"
            )
        from repro.core.distributed import QueueBackend

        return QueueBackend(num_workers=num_workers, **options)
    if options:
        raise ConfigError(
            f"backend: options {sorted(options)} are only valid for the "
            f"'queue' backend, not {name!r}"
        )
    if num_workers < 1:
        raise ConfigError(
            f"backend.num_workers: must be a positive integer, got {num_workers}"
        )
    if name == "serial":
        return SerialBackend()
    if name == "process":
        return ProcessPoolBackend(num_workers=num_workers)
    raise ValueError(f"unknown execution backend {name!r}; available: {', '.join(BACKEND_NAMES)}")
