"""Invariance group of the search space and canonical forms.

Section IV-A2 of the paper: two block structures define the *same* scoring
function (up to re-parameterization of the learned embeddings) when one can
be obtained from the other by

* permuting the four entity chunks (applied simultaneously to heads and
  tails, i.e. to the rows *and* columns of the block matrix),
* permuting the four relation chunks (renaming which ``r_k`` fills a block),
* flipping the sign of any subset of the relation chunks.

The group therefore has ``4! * 4! * 2^4 = 9,216`` elements.  Training two
structures in the same orbit wastes a full model-training run, so the filter
deduplicates candidates by their *canonical form*: the lexicographically
smallest substitute matrix over the whole orbit.

The orbit is enumerated with precomputed NumPy lookups, which keeps the cost
of canonicalizing one candidate well under a millisecond.
"""

from __future__ import annotations

from itertools import permutations, product
from typing import Iterator, List, Set, Tuple

import numpy as np

from repro.kge.scoring.blocks import NUM_CHUNKS, BlockStructure

#: All 24 chunk permutations, shared by entity and relation transformations.
_PERMUTATIONS: Tuple[Tuple[int, ...], ...] = tuple(permutations(range(NUM_CHUNKS)))

#: All 16 sign-flip patterns over the four relation chunks.
_SIGN_FLIPS: Tuple[Tuple[int, ...], ...] = tuple(product((1, -1), repeat=NUM_CHUNKS))


def _build_value_lookups() -> np.ndarray:
    """Lookup tables mapping substitute-matrix values through (perm, flips).

    A substitute value ``v`` encodes ``sign * (component + 1)`` with
    ``component`` in ``0..3`` (and ``v = 0`` for an empty cell).  Applying a
    relation permutation ``pi`` and sign flips ``eps`` maps
    ``v -> sign * eps[component] * (pi[component] + 1)``.

    Returns an array of shape ``(24 * 16, 9)`` indexed by ``v + 4``.
    """
    lookups = np.zeros((len(_PERMUTATIONS) * len(_SIGN_FLIPS), 2 * NUM_CHUNKS + 1), dtype=np.int64)
    row = 0
    for perm in _PERMUTATIONS:
        for flips in _SIGN_FLIPS:
            for value in range(-NUM_CHUNKS, NUM_CHUNKS + 1):
                if value == 0:
                    mapped = 0
                else:
                    component = abs(value) - 1
                    sign = 1 if value > 0 else -1
                    mapped = sign * flips[component] * (perm[component] + 1)
                lookups[row, value + NUM_CHUNKS] = mapped
            row += 1
    return lookups


_VALUE_LOOKUPS = _build_value_lookups()

#: Row-index arrays for applying the 24 entity permutations to a flattened
#: 4x4 matrix in one vectorized gather: entry (p, k) is the flat source index
#: of flat destination k under permutation p applied to rows and columns.
_ENTITY_PERMUTATION_GATHER = np.stack(
    [
        np.array(
            [perm[row] * NUM_CHUNKS + perm[col] for row in range(NUM_CHUNKS) for col in range(NUM_CHUNKS)],
            dtype=np.int64,
        )
        for perm in _PERMUTATIONS
    ]
)

#: Powers of 9 used to encode a 16-cell substitute matrix as one integer for
#: fast lexicographic comparison (values are shifted to 0..8 first).
_ENCODING_POWERS = (2 * NUM_CHUNKS + 1) ** np.arange(NUM_CHUNKS * NUM_CHUNKS - 1, -1, -1, dtype=np.int64)


def entity_permutation(structure: BlockStructure, perm: Tuple[int, ...]) -> BlockStructure:
    """Apply an entity-chunk permutation (rows and columns simultaneously)."""
    return BlockStructure(
        [(perm[row], perm[col], component, sign) for row, col, component, sign in structure.blocks]
    )


def relation_permutation(structure: BlockStructure, perm: Tuple[int, ...]) -> BlockStructure:
    """Apply a relation-chunk permutation (rename which r_k fills each block)."""
    return BlockStructure(
        [(row, col, perm[component], sign) for row, col, component, sign in structure.blocks]
    )


def sign_flip(structure: BlockStructure, flips: Tuple[int, ...]) -> BlockStructure:
    """Flip the signs of selected relation chunks."""
    return BlockStructure(
        [(row, col, component, sign * flips[component]) for row, col, component, sign in structure.blocks]
    )


def orbit(structure: BlockStructure) -> Iterator[BlockStructure]:
    """Yield every structure equivalent to ``structure`` (with repetitions).

    The full orbit has at most 9,216 members; some group elements map the
    structure to itself, so fewer *distinct* structures may be produced.
    """
    for entity_perm in _PERMUTATIONS:
        permuted = entity_permutation(structure, entity_perm)
        for relation_perm in _PERMUTATIONS:
            renamed = relation_permutation(permuted, relation_perm)
            for flips in _SIGN_FLIPS:
                yield sign_flip(renamed, flips)


def orbit_set(structure: BlockStructure) -> Set[Tuple]:
    """The distinct members of the orbit as hashable block tuples."""
    return {member.key() for member in orbit(structure)}


def canonical_matrix(structure: BlockStructure) -> np.ndarray:
    """Lexicographically smallest substitute matrix over the orbit."""
    flat = structure.substitute_matrix().ravel()
    # Apply all 24 entity permutations (rows and columns) with one gather.
    flattened = flat[_ENTITY_PERMUTATION_GATHER]  # (24, 16)
    # Apply every (relation permutation, sign flip) value lookup to every
    # entity-permuted matrix: result is (384, 24, 16) -> (9216, 16).
    transformed = _VALUE_LOOKUPS[:, flattened + NUM_CHUNKS]
    candidates = transformed.reshape(-1, flat.size)
    # Lexicographic comparison via a base-9 integer encoding of each row
    # (values shifted to 0..8; 9^16 fits comfortably in int64).
    encoded = (candidates + NUM_CHUNKS) @ _ENCODING_POWERS
    return candidates[int(np.argmin(encoded))].reshape(NUM_CHUNKS, NUM_CHUNKS)


def canonical_key(structure: BlockStructure) -> Tuple[int, ...]:
    """Hashable canonical identity of the structure's equivalence class."""
    return tuple(int(v) for v in canonical_matrix(structure).ravel())


def canonical_form(structure: BlockStructure) -> BlockStructure:
    """A canonical representative of the structure's equivalence class."""
    return BlockStructure.from_substitute_matrix(canonical_matrix(structure), name=structure.name)


def are_equivalent(first: BlockStructure, second: BlockStructure) -> bool:
    """True when the two structures are related by the invariance group."""
    return canonical_key(first) == canonical_key(second)


def distinct_representatives(structures: List[BlockStructure]) -> List[BlockStructure]:
    """Keep one representative per equivalence class, preserving order."""
    seen: Set[Tuple[int, ...]] = set()
    representatives: List[BlockStructure] = []
    for structure in structures:
        key = canonical_key(structure)
        if key not in seen:
            seen.add(key)
            representatives.append(structure)
    return representatives
