"""The candidate filter Q (Sec. IV-B2).

The filter performs the two cheap checks that save the search from wasting
full training runs:

1. **constraint (C2)** on the substitute matrix (no zero / repeated rows or
   columns, all relation chunks used);
2. **invariance deduplication** — a candidate is rejected when an equivalent
   structure (same canonical form under the 9,216-element invariance group)
   has already been accepted in the current pool or already trained in the
   search history.

The filter keeps simple acceptance/rejection counters so that the ablation
study (Fig. 7) and the running-time table (Table VII) can report how much
work it absorbs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro.core.constraints import satisfies_c2
from repro.core.invariance import canonical_key
from repro.kge.scoring.blocks import BlockStructure


@dataclass
class FilterStatistics:
    """Counters describing what the filter did."""

    accepted: int = 0
    rejected_constraint: int = 0
    rejected_duplicate: int = 0

    @property
    def total_seen(self) -> int:
        return self.accepted + self.rejected_constraint + self.rejected_duplicate

    def as_dict(self) -> Dict[str, int]:
        return {
            "accepted": self.accepted,
            "rejected_constraint": self.rejected_constraint,
            "rejected_duplicate": self.rejected_duplicate,
            "total_seen": self.total_seen,
        }


class CandidateFilter:
    """Stateful filter over candidate structures.

    Parameters
    ----------
    enforce_constraints:
        Apply constraint (C2).  Disabled in the "no filter" ablation.
    deduplicate:
        Reject candidates equivalent (under the invariance group) to one
        already accepted or already recorded in the history.
    """

    def __init__(self, enforce_constraints: bool = True, deduplicate: bool = True) -> None:
        self.enforce_constraints = enforce_constraints
        self.deduplicate = deduplicate
        self.statistics = FilterStatistics()
        self._seen_keys: Set[Tuple[int, ...]] = set()

    # ------------------------------------------------------------------
    # History management
    # ------------------------------------------------------------------
    def record_history(self, structure: BlockStructure) -> None:
        """Mark a structure (e.g. one already trained) as seen."""
        self._seen_keys.add(canonical_key(structure))

    def reset_pool(self) -> None:
        """Forget nothing: history keys persist across greedy stages.

        The paper keeps the full history ``T`` across stages, so previously
        trained structures stay excluded; this method only exists to make
        the intent explicit at stage boundaries.
        """
        return None

    def has_seen(self, structure: BlockStructure) -> bool:
        """True if an equivalent structure has already been accepted/recorded."""
        return canonical_key(structure) in self._seen_keys

    # ------------------------------------------------------------------
    # Filtering
    # ------------------------------------------------------------------
    def accept(self, structure: BlockStructure) -> bool:
        """Check one candidate; record and return ``True`` when it passes."""
        if self.enforce_constraints and not satisfies_c2(structure):
            self.statistics.rejected_constraint += 1
            return False
        if self.deduplicate:
            key = canonical_key(structure)
            if key in self._seen_keys:
                self.statistics.rejected_duplicate += 1
                return False
            self._seen_keys.add(key)
        self.statistics.accepted += 1
        return True

    def explain(self, structure: BlockStructure) -> Optional[str]:
        """Reason the structure *would* be rejected (``None`` if acceptable).

        Unlike :meth:`accept`, this performs no bookkeeping.
        """
        if self.enforce_constraints and not satisfies_c2(structure):
            return "violates constraint C2"
        if self.deduplicate and canonical_key(structure) in self._seen_keys:
            return "equivalent structure already seen"
        return None
