"""The progressive greedy search (Alg. 2) — the AutoSF search algorithm.

The search grows candidate scoring functions stage by stage:

1. evaluate the small set of seed structures with ``b = 4`` blocks (after
   filtering and invariance deduplication only a handful remain);
2. for every later stage ``b = 6, 8, ... B``: repeatedly pick one of the
   top-``K1`` structures of stage ``b - 2`` and add two random blocks
   (Eq. 7), pass the candidate through the **filter** Q (constraint C2 +
   invariance dedup against both the current pool and the full history),
   until ``N`` candidates are collected;
3. rank the pool with the **predictor** P (a tiny MLP over SRF features,
   trained on every structure evaluated so far) and train only the
   top-``K2``;
4. record the trained structures and their validation MRR in the history
   ``T`` and move to the next stage.

The class exposes ablation switches (disable the filter, the predictor, or
both — the "Greedy" baseline of Fig. 7) and a timing recorder whose phase
totals reproduce the running-time breakdown of Table VII.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.evaluator import CandidateEvaluation, CandidateEvaluator
from repro.core.execution import ExecutionBackend, create_backend
from repro.core.filters import CandidateFilter
from repro.core.predictor import PerformancePredictor
from repro.core.search_space import enumerate_f4_structures, extend_structure
from repro.core.store import EvaluationStore
from repro.datasets.knowledge_graph import KnowledgeGraph
from repro.kge.scoring.blocks import BlockStructure
from repro.utils.config import SearchConfig, TrainingConfig
from repro.utils.rng import ensure_rng
from repro.utils.timing import TimingRecorder


@dataclass
class SearchRecord:
    """One trained candidate inside a search run."""

    structure: BlockStructure
    validation_mrr: float
    num_blocks: int
    stage: int
    order: int
    elapsed_seconds: float


@dataclass
class SearchResult:
    """Outcome of one search run."""

    best_structure: BlockStructure
    best_mrr: float
    records: List[SearchRecord] = field(default_factory=list)
    timing: Optional[TimingRecorder] = None
    filter_statistics: Dict[str, int] = field(default_factory=dict)

    @property
    def num_evaluations(self) -> int:
        return len(self.records)

    def best_per_stage(self) -> Dict[int, SearchRecord]:
        """The best record of every stage (keyed by block count)."""
        best: Dict[int, SearchRecord] = {}
        for record in self.records:
            current = best.get(record.num_blocks)
            if current is None or record.validation_mrr > current.validation_mrr:
                best[record.num_blocks] = record
        return best

    def anytime_curve(self) -> List[float]:
        """Best-so-far validation MRR after each trained model (Fig. 6/7)."""
        curve: List[float] = []
        best = -np.inf
        for record in sorted(self.records, key=lambda item: item.order):
            best = max(best, record.validation_mrr)
            curve.append(float(best))
        return curve

    def top(self, count: int = 5) -> List[SearchRecord]:
        """The ``count`` best records overall."""
        return sorted(self.records, key=lambda item: -item.validation_mrr)[:count]


class AutoSFSearch:
    """Progressive greedy search over block-structured scoring functions."""

    def __init__(
        self,
        graph: KnowledgeGraph,
        training_config: Optional[TrainingConfig] = None,
        search_config: Optional[SearchConfig] = None,
        evaluator: Optional[CandidateEvaluator] = None,
        backend: Optional[ExecutionBackend] = None,
        store: Optional[EvaluationStore] = None,
    ) -> None:
        self.graph = graph
        self.training_config = training_config or TrainingConfig()
        self.search_config = search_config or SearchConfig()
        self.timing = TimingRecorder()
        self.backend = backend if backend is not None else create_backend(
            self.search_config.backend, self.search_config.num_workers
        )
        if store is None and self.search_config.cache_dir:
            store = EvaluationStore(self.search_config.cache_dir)
        self.store = store
        self.evaluator = evaluator or CandidateEvaluator(
            graph,
            self.training_config,
            timing=self.timing,
            store=self.store,
            base_seed=self.search_config.seed,
        )
        self.rng = ensure_rng(self.search_config.seed)
        self.candidate_filter = CandidateFilter(
            enforce_constraints=self.search_config.use_filter,
            deduplicate=self.search_config.use_filter,
        )
        self.predictor: Optional[PerformancePredictor] = (
            PerformancePredictor(self.search_config.predictor)
            if self.search_config.use_predictor
            else None
        )
        self._history: List[CandidateEvaluation] = []
        self._records: List[SearchRecord] = []
        self._order = 0
        self._start_time: Optional[float] = None

    # ------------------------------------------------------------------
    # History helpers
    # ------------------------------------------------------------------
    def _history_for_blocks(self, num_blocks: int) -> List[CandidateEvaluation]:
        return [item for item in self._history if item.structure.num_blocks == num_blocks]

    def _top_parents(self, num_blocks: int, count: int) -> List[BlockStructure]:
        stage_history = self._history_for_blocks(num_blocks)
        stage_history.sort(key=lambda item: -item.validation_mrr)
        return [item.structure for item in stage_history[:count]]

    def _record(self, evaluation: CandidateEvaluation, stage: int) -> None:
        self._history.append(evaluation)
        self._order += 1
        elapsed = time.perf_counter() - self._start_time if self._start_time else 0.0
        self._records.append(
            SearchRecord(
                structure=evaluation.structure,
                validation_mrr=evaluation.validation_mrr,
                num_blocks=evaluation.structure.num_blocks,
                stage=stage,
                order=self._order,
                elapsed_seconds=elapsed,
            )
        )

    # ------------------------------------------------------------------
    # Stage logic
    # ------------------------------------------------------------------
    def _evaluate_batch(self, structures: Sequence[BlockStructure], stage: int) -> None:
        """Dispatch the whole stage batch through the execution backend."""
        evaluations = self.evaluator.evaluate_many(list(structures), backend=self.backend)
        for structure, evaluation in zip(structures, evaluations):
            self.candidate_filter.record_history(structure)
            self._record(evaluation, stage)

    def _seed_stage(self) -> None:
        """Stage b = 4: evaluate every distinct seed structure."""
        with self.timing.measure("filter"):
            seeds = enumerate_f4_structures(deduplicate=True)
            accepted = [seed for seed in seeds if self.candidate_filter.accept(seed)]
        if not accepted:
            # With the filter disabled the seeds are still the deduplicated
            # f4 structures; acceptance can only fail on duplicates.
            accepted = seeds
        self._evaluate_batch(accepted, stage=4)

    def _generate_pool(self, stage: int) -> List[BlockStructure]:
        """Steps 2–6 of Alg. 2: collect up to N filtered candidates."""
        config = self.search_config
        parents = self._top_parents(stage - 2, config.top_parents)
        if not parents:
            return []
        pool: List[BlockStructure] = []
        pool_keys = set()
        max_attempts = 200 * config.candidates_per_step
        attempts = 0
        with self.timing.measure("filter"):
            while len(pool) < config.candidates_per_step and attempts < max_attempts:
                attempts += 1
                parent = parents[int(self.rng.integers(0, len(parents)))]
                candidate = extend_structure(parent, num_new_blocks=2, rng=self.rng)
                if candidate is None:
                    continue
                if config.use_filter:
                    if not self.candidate_filter.accept(candidate):
                        continue
                else:
                    # Without the filter only exact duplicates inside the pool
                    # are skipped, mirroring the "no filter" ablation.
                    if candidate.key() in pool_keys:
                        continue
                pool_keys.add(candidate.key())
                pool.append(candidate)
        return pool

    def _select_candidates(self, pool: List[BlockStructure]) -> List[BlockStructure]:
        """Step 7 of Alg. 2: keep the K2 most promising candidates."""
        config = self.search_config
        if len(pool) <= config.train_per_step:
            return pool
        if self.predictor is not None and self.predictor.is_trained:
            with self.timing.measure("predictor"):
                return self.predictor.select_top(pool, config.train_per_step)
        selection = self.rng.choice(len(pool), size=config.train_per_step, replace=False)
        return [pool[int(index)] for index in selection]

    def _update_predictor(self) -> None:
        """Steps 10–11 of Alg. 2: refit the predictor on the full history."""
        if self.predictor is None or not self._history:
            return
        with self.timing.measure("predictor"):
            structures = [item.structure for item in self._history]
            scores = [item.validation_mrr for item in self._history]
            self.predictor.fit(structures, scores)

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def run(self, max_evaluations: Optional[int] = None) -> SearchResult:
        """Run the full progressive search and return the result.

        Parameters
        ----------
        max_evaluations:
            Optional hard cap on the number of recorded evaluations (useful
            for the any-time comparison plots, where every method gets the
            same budget).  Evaluations replayed from a persistent store count
            toward the cap — that is what lets an interrupted run resume to
            exactly the same budget instead of training ``max_evaluations``
            models on top of the cached ones.
        """
        self._start_time = time.perf_counter()
        self._seed_stage()
        self._update_predictor()

        for stage in range(6, self.search_config.max_blocks + 1, 2):
            if max_evaluations is not None and len(self._records) >= max_evaluations:
                break
            pool = self._generate_pool(stage)
            if not pool:
                break
            selected = self._select_candidates(pool)
            if max_evaluations is not None:
                remaining = max_evaluations - len(self._records)
                selected = selected[: max(remaining, 0)]
            self._evaluate_batch(selected, stage=stage)
            self._update_predictor()

        return self._build_result()

    def _build_result(self) -> SearchResult:
        if not self._records:
            raise RuntimeError("search produced no evaluations")
        best = max(self._records, key=lambda record: record.validation_mrr)
        return SearchResult(
            best_structure=best.structure,
            best_mrr=best.validation_mrr,
            records=list(self._records),
            timing=self.timing,
            filter_statistics=self.candidate_filter.statistics.as_dict(),
        )


def search_scoring_function(
    graph: KnowledgeGraph,
    training_config: Optional[TrainingConfig] = None,
    search_config: Optional[SearchConfig] = None,
    max_evaluations: Optional[int] = None,
) -> SearchResult:
    """Convenience wrapper: run AutoSF on ``graph`` with the given configs."""
    search = AutoSFSearch(graph, training_config, search_config)
    return search.run(max_evaluations=max_evaluations)
