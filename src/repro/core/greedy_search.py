"""The progressive greedy search (Alg. 2) — the AutoSF search algorithm.

The search grows candidate scoring functions stage by stage:

1. evaluate the small set of seed structures with ``b = 4`` blocks (after
   filtering and invariance deduplication only a handful remain);
2. for every later stage ``b = 6, 8, ... B``: repeatedly pick one of the
   top-``K1`` structures of stage ``b - 2`` and add two random blocks
   (Eq. 7), pass the candidate through the **filter** Q (constraint C2 +
   invariance dedup against both the current pool and the full history),
   until ``N`` candidates are collected;
3. rank the pool with the **predictor** P (a tiny MLP over SRF features,
   trained on every structure evaluated so far) and train only the
   top-``K2``;
4. record the trained structures and their validation MRR in the history
   ``T`` and move to the next stage.

The stage logic itself now lives in
:class:`repro.experiments.strategies.GreedyStrategy`, driven by the unified
:class:`repro.experiments.loop.SearchLoop` — :class:`AutoSFSearch` is kept
as a thin compatibility shim with a seed-identical trajectory, plus the
result containers (:class:`SearchRecord` / :class:`SearchResult`) every
search strategy shares.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.evaluator import CandidateEvaluator
from repro.core.execution import ExecutionBackend, create_backend
from repro.core.store import EvaluationStore
from repro.datasets.knowledge_graph import KnowledgeGraph
from repro.kge.scoring.blocks import BlockStructure
from repro.utils.config import SearchConfig, TrainingConfig
from repro.utils.timing import TimingRecorder


@dataclass
class SearchRecord:
    """One trained candidate inside a search run.

    ``rung`` / ``rung_epochs`` / ``full_fidelity`` carry ASHA fidelity
    metadata: a scheduler-driven loop records low-rung (reduced-epoch)
    evaluations with ``full_fidelity=False`` so the history shows every
    training run, while rankings and budgets only consider full-fidelity
    records.  Plain full-fidelity searches leave the defaults untouched.
    """

    structure: BlockStructure
    validation_mrr: float
    num_blocks: int
    stage: int
    order: int
    elapsed_seconds: float
    rung: Optional[int] = None
    rung_epochs: Optional[int] = None
    full_fidelity: bool = True


@dataclass
class SearchResult:
    """Outcome of one search run."""

    best_structure: BlockStructure
    best_mrr: float
    records: List[SearchRecord] = field(default_factory=list)
    timing: Optional[TimingRecorder] = None
    filter_statistics: Dict[str, int] = field(default_factory=dict)

    @property
    def full_fidelity_records(self) -> List[SearchRecord]:
        """Records trained with the full epoch budget (the comparable ones)."""
        return [record for record in self.records if record.full_fidelity]

    @property
    def num_evaluations(self) -> int:
        """Budget-counted evaluations (full fidelity only)."""
        return len(self.full_fidelity_records)

    def best_per_stage(self) -> Dict[int, SearchRecord]:
        """The best full-fidelity record of every stage (keyed by block count)."""
        best: Dict[int, SearchRecord] = {}
        for record in self.full_fidelity_records:
            current = best.get(record.num_blocks)
            if current is None or record.validation_mrr > current.validation_mrr:
                best[record.num_blocks] = record
        return best

    def anytime_curve(self) -> List[float]:
        """Best-so-far validation MRR after each trained model (Fig. 6/7).

        Low-fidelity rung evaluations are excluded: their MRRs are not
        comparable to fully trained models.
        """
        curve: List[float] = []
        best = -np.inf
        for record in sorted(self.full_fidelity_records, key=lambda item: item.order):
            best = max(best, record.validation_mrr)
            curve.append(float(best))
        return curve

    def top(self, count: int = 5) -> List[SearchRecord]:
        """The ``count`` best full-fidelity records overall."""
        return sorted(self.full_fidelity_records, key=lambda item: -item.validation_mrr)[
            :count
        ]


class AutoSFSearch:
    """Progressive greedy search over block-structured scoring functions.

    .. deprecated::
        This class is a compatibility shim over the unified experiment API —
        :class:`repro.experiments.loop.SearchLoop` driving
        :class:`repro.experiments.strategies.GreedyStrategy`.  New code
        should build an :class:`repro.experiments.ExperimentSpec` (or the
        loop directly); this wrapper is kept because its trajectory is
        seed-identical and a large surface (CLI, benchmarks) already speaks
        it.
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        training_config: Optional[TrainingConfig] = None,
        search_config: Optional[SearchConfig] = None,
        evaluator: Optional[CandidateEvaluator] = None,
        backend: Optional[ExecutionBackend] = None,
        store: Optional[EvaluationStore] = None,
    ) -> None:
        from repro.experiments.loop import SearchLoop
        from repro.experiments.strategies import GreedyStrategy

        self.graph = graph
        self.training_config = training_config or TrainingConfig()
        self.search_config = search_config or SearchConfig()
        self.timing = TimingRecorder()
        self.backend = backend if backend is not None else create_backend(
            self.search_config.backend, self.search_config.num_workers
        )
        if store is None and self.search_config.cache_dir:
            store = EvaluationStore(self.search_config.cache_dir)
        self.store = store
        self.strategy = GreedyStrategy(
            max_blocks=self.search_config.max_blocks,
            candidates_per_step=self.search_config.candidates_per_step,
            top_parents=self.search_config.top_parents,
            train_per_step=self.search_config.train_per_step,
            use_filter=self.search_config.use_filter,
            use_predictor=self.search_config.use_predictor,
            predictor_config=self.search_config.predictor,
        )
        self._loop = SearchLoop(
            graph,
            self.strategy,
            self.training_config,
            seed=self.search_config.seed,
            backend=self.backend,
            store=store,
            evaluator=evaluator,
            timing=self.timing,
        )
        self.evaluator = self._loop.evaluator

    @property
    def candidate_filter(self):
        """The strategy's filter Q (exposed for ablation inspection)."""
        return self.strategy.candidate_filter

    @property
    def predictor(self):
        """The strategy's performance predictor P (``None`` when ablated)."""
        return self.strategy.predictor

    def run(self, max_evaluations: Optional[int] = None) -> SearchResult:
        """Run the full progressive search and return the result.

        Parameters
        ----------
        max_evaluations:
            Optional hard cap on the number of recorded evaluations (useful
            for the any-time comparison plots, where every method gets the
            same budget).  Evaluations replayed from a persistent store count
            toward the cap — that is what lets an interrupted run resume to
            exactly the same budget instead of training ``max_evaluations``
            models on top of the cached ones.

            One deliberate fix relative to the pre-unification implementation:
            the cap now also applies to the ``b = 4`` seed stage.  Previously
            a budget smaller than the number of f4 seed structures was
            silently exceeded (all seeds were trained and recorded); the
            unified loop records exactly ``max_evaluations`` results.  For
            any budget >= the seed count (every documented configuration)
            trajectories are bit-identical to earlier releases.
        """
        return self._loop.run(max_evaluations=max_evaluations)


def search_scoring_function(
    graph: KnowledgeGraph,
    training_config: Optional[TrainingConfig] = None,
    search_config: Optional[SearchConfig] = None,
    max_evaluations: Optional[int] = None,
) -> SearchResult:
    """Convenience wrapper: run AutoSF on ``graph`` with the given configs.

    .. deprecated::
        Prefer ``repro.experiments.run_experiment`` (spec-driven, writes a
        run directory) or :class:`repro.experiments.loop.SearchLoop`.  Kept
        as a shim with a seed-identical trajectory.
    """
    search = AutoSFSearch(graph, training_config, search_config)
    return search.run(max_evaluations=max_evaluations)
