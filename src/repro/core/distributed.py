"""Distributed work-queue execution: socket-RPC coordinator + workers.

:class:`QueueBackend` implements the :class:`~repro.core.execution.ExecutionBackend`
protocol as a *work queue*: each :meth:`~QueueBackend.run` call binds a
listening socket, dispatches the batch's :class:`~repro.core.execution.EvaluationTask`s
to whichever worker processes connect, and slots results back into task
order.  Workers may be spawned locally by the backend itself
(``num_workers``) and/or started on **other hosts** with the
``repro-autosf worker --connect host:port`` CLI entry point — the wire
protocol is the only coupling.

Wire protocol (trusted-cluster only — frames are pickled, so never expose
the coordinator port to untrusted peers):

* every frame is a 4-byte big-endian length prefix followed by a pickled
  ``dict`` with a ``"type"`` key;
* handshake: worker sends ``hello``, coordinator replies ``welcome``
  carrying the :class:`~repro.core.execution.EvaluationContext` (graph +
  training config, shipped once per connection, not once per task) and the
  heartbeat interval;
* work loop: worker sends ``ready`` to request a task, coordinator replies
  ``task`` (or ``shutdown`` when the batch is drained); the worker answers
  with ``result`` (or ``error`` if evaluation raised) and loops back to
  ``ready``;
* liveness: a daemon thread in the worker sends ``heartbeat`` frames; the
  coordinator closes connections silent for longer than
  ``heartbeat_timeout``.

Fault model: a task assigned to a worker that dies (connection lost,
heartbeat expired, evaluation raised) is re-queued and re-dispatched, up to
``max_retries`` re-dispatches per task; past that the batch fails with an
:class:`~repro.core.execution.ExecutionError` naming the candidate.  If no
worker is available for ``worker_timeout`` seconds while tasks remain, the
batch fails rather than hanging forever.  Dead *local* workers are
respawned (within a bounded budget) while work remains.

Determinism: every task carries its own per-candidate seed
(:func:`~repro.core.execution.derive_candidate_seed`), so results are
bit-identical to :class:`~repro.core.execution.SerialBackend` regardless of
worker count, scheduling or failure order.  ``on_result`` streams each
outcome as it arrives (serialized through one lock), so
:class:`~repro.core.store.EvaluationStore` checkpointing keeps working.

Local worker processes for the *initial* fleet are forked before any
coordinator thread starts (cheap, shares the parent's pages); replacements
spawned mid-batch use the ``spawn`` start method because forking a process
with live threads is not safe.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import socket
import struct
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.core.execution import (
    EvaluationContext,
    EvaluationOutcome,
    EvaluationTask,
    ExecutionError,
    ResultCallback,
    evaluate_candidate,
)
from repro.obs import trace as obs_trace
from repro.obs.metrics import get_registry

__all__ = ["QueueBackend", "run_worker", "serve_worker"]

_HEADER = struct.Struct("!I")
#: Hard ceiling on a single frame; a length beyond this means a corrupt or
#: hostile stream, not a real message.
_MAX_FRAME_BYTES = 1 << 30


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def send_frame(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Write one length-prefixed pickled frame."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    chunks: List[bytes] = []
    while count:
        chunk = sock.recv(count)
        if not chunk:
            return None
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on clean EOF."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > _MAX_FRAME_BYTES:
        raise ExecutionError(
            f"queue protocol: frame of {length} bytes exceeds the "
            f"{_MAX_FRAME_BYTES}-byte limit (corrupt stream?)"
        )
    payload = _recv_exact(sock, length)
    if payload is None:
        return None
    return pickle.loads(payload)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def run_worker(
    host: str,
    port: int,
    *,
    _kill_after_tasks: Optional[int] = None,
) -> int:
    """Connect to a coordinator, evaluate tasks until shut down.

    Returns the number of tasks completed.  Raises ``OSError`` /
    ``ConnectionError`` if the coordinator is unreachable or goes away
    mid-handshake; a clean ``shutdown`` frame (or EOF after the handshake)
    ends the session normally.

    ``_kill_after_tasks`` is a fault-injection hook for tests and the CI
    smoke: after completing that many tasks the worker calls ``os._exit``
    *immediately after accepting* its next task — i.e. it dies holding a
    task, exercising the coordinator's re-dispatch path.
    """
    sock = socket.create_connection((host, port))
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    send_lock = threading.Lock()
    stop = threading.Event()

    def send(message: Dict[str, Any]) -> None:
        with send_lock:
            send_frame(sock, message)

    completed = 0
    try:
        send({"type": "hello", "pid": os.getpid(), "host": socket.gethostname()})
        welcome = recv_frame(sock)
        if welcome is None or welcome.get("type") != "welcome":
            raise ConnectionError(
                "queue worker: coordinator closed the connection during handshake"
            )
        context: EvaluationContext = welcome["context"]
        heartbeat_interval = float(welcome.get("heartbeat_interval", 1.0))

        def heartbeat() -> None:
            while not stop.wait(heartbeat_interval):
                try:
                    send({"type": "heartbeat"})
                except OSError:
                    return

        threading.Thread(target=heartbeat, daemon=True, name="queue-heartbeat").start()

        while True:
            send({"type": "ready"})
            message = recv_frame(sock)
            if message is None or message.get("type") == "shutdown":
                return completed
            if message.get("type") != "task":
                continue
            if _kill_after_tasks is not None and completed >= _kill_after_tasks:
                os._exit(1)  # die holding the task we just accepted
            index = int(message["index"])
            task: EvaluationTask = message["task"]
            try:
                outcome = evaluate_candidate(context, task)
            except Exception as error:  # noqa: BLE001 - forwarded to coordinator
                send(
                    {
                        "type": "error",
                        "index": index,
                        "error": f"{type(error).__name__}: {error}",
                    }
                )
            else:
                send({"type": "result", "index": index, "outcome": outcome})
                completed += 1
    finally:
        stop.set()
        try:
            sock.close()
        except OSError:  # pragma: no cover - close best-effort
            pass


def serve_worker(
    host: str,
    port: int,
    *,
    reconnect_interval: float = 0.5,
    max_idle: float = 60.0,
) -> int:
    """Worker daemon loop: serve batches, reconnecting between them.

    The coordinator binds one listener *per batch* and shuts workers down
    when the batch drains, so a long-lived external worker must reconnect
    for the next round.  Keeps retrying until the coordinator has been
    unreachable for ``max_idle`` seconds (``max_idle=0`` retries forever).
    Returns the total number of tasks completed.
    """
    total = 0
    deadline = None if max_idle <= 0 else time.monotonic() + max_idle
    while deadline is None or time.monotonic() < deadline:
        try:
            total += run_worker(host, port)
        except (ConnectionError, OSError):
            time.sleep(reconnect_interval)
            continue
        # A batch was served (possibly with zero tasks for us): the
        # coordinator exists, so push the idle deadline out and re-poll.
        if max_idle > 0:
            deadline = time.monotonic() + max_idle
        time.sleep(reconnect_interval)
    return total


def _local_worker_main(host: str, port: int, kill_after: Optional[int]) -> None:
    """Entry point for backend-spawned local worker processes."""
    try:
        run_worker(host, port, _kill_after_tasks=kill_after)
    except (ConnectionError, OSError):  # pragma: no cover - racy shutdown
        pass


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------
class _WorkerConn:
    """Coordinator-side state for one connected worker."""

    __slots__ = ("sock", "address", "send_lock", "last_seen", "in_flight", "closed")

    def __init__(self, sock: socket.socket, address) -> None:
        self.sock = sock
        self.address = address
        self.send_lock = threading.Lock()
        self.last_seen = time.monotonic()
        self.in_flight: Optional[int] = None
        self.closed = False


class _Coordinator:
    """One batch's dispatch state machine (threads + socket listener)."""

    def __init__(
        self,
        backend: "QueueBackend",
        context: EvaluationContext,
        tasks: Sequence[EvaluationTask],
        on_result: Optional[ResultCallback],
    ) -> None:
        self.backend = backend
        self.context = context
        self.tasks = list(tasks)
        self.on_result = on_result

        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._pending: deque = deque(range(len(self.tasks)))
        self._attempts = [0] * len(self.tasks)
        self._outcomes: List[Optional[EvaluationOutcome]] = [None] * len(self.tasks)
        self._completed = 0
        self._failure: Optional[BaseException] = None
        self._done = False
        self._conns: List[_WorkerConn] = []
        self._threads: List[threading.Thread] = []
        self._result_lock = threading.Lock()
        self._last_worker_activity = time.monotonic()

        self._procs: List[multiprocessing.process.BaseProcess] = []
        self._respawns = 0
        self._respawn_budget = backend.num_workers * (backend.max_retries + 1)

        self.workers_connected = 0
        self.redispatched = 0

        registry = get_registry()
        self._m_dispatched = registry.counter(
            "repro_search_dispatch_tasks_total",
            help="Tasks dispatched to queue workers (including re-dispatches).",
        )
        self._m_redispatch = registry.counter(
            "repro_search_dispatch_redispatch_total",
            help="Tasks re-queued after a lost worker or a failed attempt.",
        )
        self._m_workers = registry.counter(
            "repro_search_dispatch_workers_total",
            help="Worker connections accepted by the queue coordinator.",
        )
        self._m_lost = registry.counter(
            "repro_search_dispatch_lost_workers_total",
            help="Worker connections lost before their batch completed.",
        )

    # -- lifecycle ------------------------------------------------------
    def run(self) -> List[EvaluationOutcome]:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.backend.host, self.backend.port))
        listener.listen(max(8, self.backend.num_workers * 2))
        self._listener = listener
        self.port = listener.getsockname()[1]

        # Fork the initial local fleet *before* any coordinator thread
        # exists (forking with live threads risks deadlock).
        self._spawn_local_workers(initial=True)

        accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True, name="queue-accept"
        )
        accept_thread.start()
        self._threads.append(accept_thread)
        try:
            self._monitor()
        finally:
            self._shutdown()
        if self._failure is not None:
            raise self._failure
        return list(self._outcomes)  # type: ignore[arg-type]

    def _spawn_local_workers(self, initial: bool) -> None:
        if initial:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
            count = self.backend.num_workers
        else:
            ctx = multiprocessing.get_context("spawn")
            live = sum(1 for proc in self._procs if proc.is_alive())
            count = min(
                self.backend.num_workers - live,
                self._respawn_budget - self._respawns,
            )
        connect_host = self.backend.connect_host
        for worker_index in range(count):
            kill_after = (
                self.backend._kill_after_tasks.get(worker_index) if initial else None
            )
            if not initial:
                self._respawns += 1
            proc = ctx.Process(
                target=_local_worker_main,
                args=(connect_host, self.port, kill_after),
                daemon=True,
                name=f"queue-worker-{len(self._procs)}",
            )
            proc.start()
            self._procs.append(proc)

    def _monitor(self) -> None:
        total = len(self.tasks)
        heartbeat_timeout = self.backend.heartbeat_timeout
        worker_timeout = self.backend.worker_timeout
        while True:
            with self._cond:
                if self._failure is not None or self._completed == total:
                    return
                self._cond.wait(0.05)
                if self._failure is not None or self._completed == total:
                    return
                now = time.monotonic()
                stale = [
                    conn
                    for conn in self._conns
                    if now - conn.last_seen > heartbeat_timeout
                ]
                any_conn = bool(self._conns)
                last_activity = self._last_worker_activity
            # Socket teardown outside the lock: the handler thread observes
            # the dead socket, re-queues the in-flight task and deregisters.
            for conn in stale:
                conn.closed = True
                _close_socket(conn.sock)

            live_local = any(proc.is_alive() for proc in self._procs)
            if (
                not live_local
                and self.backend.num_workers > 0
                and self._respawns < self._respawn_budget
            ):
                self._spawn_local_workers(initial=False)
                live_local = True
            if not any_conn and not live_local:
                if time.monotonic() - last_activity > worker_timeout:
                    with self._cond:
                        if self._failure is None and self._completed < total:
                            names = _candidate_names(
                                self.tasks,
                                [
                                    index
                                    for index, outcome in enumerate(self._outcomes)
                                    if outcome is None
                                ],
                            )
                            self._failure = ExecutionError(
                                f"queue backend: no workers available after "
                                f"{worker_timeout:.1f}s with outstanding "
                                f"candidate(s) {names}"
                            )
                            self._cond.notify_all()

    def _shutdown(self) -> None:
        with self._cond:
            self._done = True
            conns = list(self._conns)
            self._cond.notify_all()
        for conn in conns:
            try:
                with conn.send_lock:
                    send_frame(conn.sock, {"type": "shutdown"})
            except OSError:
                pass
        _close_socket(self._listener)
        deadline = time.monotonic() + 5.0
        for proc in self._procs:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        with self._cond:
            conns = list(self._conns)
        for conn in conns:
            _close_socket(conn.sock)
        for thread in self._threads:
            thread.join(timeout=max(0.0, deadline - time.monotonic()) + 1.0)

    # -- accept / per-worker handler -----------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                sock, address = self._listener.accept()
            except OSError:
                return
            thread = threading.Thread(
                target=self._serve_worker,
                args=(sock, address),
                daemon=True,
                name=f"queue-conn-{address}",
            )
            thread.start()
            self._threads.append(thread)

    def _serve_worker(self, sock: socket.socket, address) -> None:
        conn: Optional[_WorkerConn] = None
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            hello = recv_frame(sock)
            if hello is None or hello.get("type") != "hello":
                return
            conn = _WorkerConn(sock, address)
            with self._cond:
                self._conns.append(conn)
                self._last_worker_activity = time.monotonic()
                self.workers_connected += 1
                self._cond.notify_all()
            self._m_workers.inc()
            with conn.send_lock:
                send_frame(
                    sock,
                    {
                        "type": "welcome",
                        "context": self.context,
                        "heartbeat_interval": self.backend.heartbeat_interval,
                    },
                )
            while True:
                message = recv_frame(sock)
                if message is None:
                    return
                kind = message.get("type")
                if kind == "heartbeat":
                    with self._cond:
                        conn.last_seen = time.monotonic()
                elif kind == "ready":
                    index = self._next_task(conn)
                    if index is None:
                        with conn.send_lock:
                            send_frame(sock, {"type": "shutdown"})
                        return
                    with conn.send_lock:
                        send_frame(
                            sock,
                            {"type": "task", "index": index, "task": self.tasks[index]},
                        )
                    self._m_dispatched.inc()
                elif kind == "result":
                    self._deliver(conn, int(message["index"]), message["outcome"])
                elif kind == "error":
                    self._task_errored(
                        conn, int(message["index"]), str(message.get("error"))
                    )
        except (OSError, ConnectionError, EOFError, pickle.PickleError):
            pass
        finally:
            if conn is not None:
                self._drop_conn(conn)
            _close_socket(sock)

    def _next_task(self, conn: _WorkerConn) -> Optional[int]:
        with self._cond:
            while True:
                if (
                    self._done
                    or conn.closed
                    or self._failure is not None
                    or self._completed == len(self.tasks)
                ):
                    return None
                while self._pending:
                    index = self._pending.popleft()
                    if self._outcomes[index] is not None:
                        continue  # a re-queued copy that since completed
                    conn.in_flight = index
                    conn.last_seen = time.monotonic()
                    return index
                self._cond.wait(0.05)

    def _deliver(self, conn: _WorkerConn, index: int, outcome: EvaluationOutcome) -> None:
        with self._cond:
            conn.in_flight = None
            now = time.monotonic()
            conn.last_seen = now
            self._last_worker_activity = now
            if self._outcomes[index] is not None:
                self._cond.notify_all()
                return  # duplicate from a presumed-dead worker
            self._outcomes[index] = outcome
        if self.on_result is not None:
            try:
                with self._result_lock:
                    self.on_result(index, outcome)
            except BaseException as error:
                # Recorded (and re-raised) by the monitor thread; raising
                # here too would only die unhandled in this handler thread.
                with self._cond:
                    if self._failure is None:
                        self._failure = error
                    self._cond.notify_all()
                return
        with self._cond:
            self._completed += 1
            self._cond.notify_all()

    def _task_errored(self, conn: _WorkerConn, index: int, error: str) -> None:
        with self._cond:
            conn.in_flight = None
            conn.last_seen = time.monotonic()
            self._requeue_locked(index, f"evaluation raised {error}")
            self._cond.notify_all()

    def _drop_conn(self, conn: _WorkerConn) -> None:
        with self._cond:
            if conn in self._conns:
                self._conns.remove(conn)
            lost_mid_batch = not self._done and self._completed < len(self.tasks)
            if conn.in_flight is not None:
                self._requeue_locked(conn.in_flight, "worker connection lost mid-task")
                conn.in_flight = None
            self._cond.notify_all()
        if lost_mid_batch:
            self._m_lost.inc()

    def _requeue_locked(self, index: int, reason: str) -> None:
        """Re-queue a lost task, or fail the batch when retries are spent.

        Caller must hold ``self._cond``.
        """
        if self._outcomes[index] is not None:
            return
        self._attempts[index] += 1
        self.redispatched += 1
        self._m_redispatch.inc()
        if self._attempts[index] > self.backend.max_retries:
            if self._failure is None:
                structure = self.tasks[index].structure
                self._failure = ExecutionError(
                    f"queue backend lost candidate "
                    f"{structure.name or structure.blocks!r} "
                    f"{self._attempts[index]} time(s), last because {reason}; "
                    f"retry budget (max_retries={self.backend.max_retries}) "
                    f"exhausted"
                )
        else:
            self._pending.append(index)


def _close_socket(sock: socket.socket) -> None:
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


def _candidate_names(tasks: Sequence[EvaluationTask], indices: Sequence[int]) -> str:
    return ", ".join(
        repr(tasks[index].structure.name or tasks[index].structure.blocks)
        for index in indices
    )


class QueueBackend:
    """Socket-RPC work-queue execution backend.

    Parameters
    ----------
    num_workers:
        Local worker processes to spawn per batch.  ``0`` means rely
        entirely on external workers connecting to ``host:port``
        (``repro-autosf worker --connect host:port``).
    host / port:
        Coordinator bind address.  ``port=0`` picks an ephemeral port
        (fine for purely local fleets); external workers need a fixed,
        routable ``host:port``.
    heartbeat_interval / heartbeat_timeout:
        Workers send a heartbeat every ``heartbeat_interval`` seconds; a
        connection silent for ``heartbeat_timeout`` seconds is declared
        dead and its in-flight task re-queued.
    worker_timeout:
        If no worker (connected or local-alive) exists for this many
        seconds while tasks remain, the batch fails with
        :class:`~repro.core.execution.ExecutionError` instead of hanging.
    max_retries:
        Re-dispatch budget per task; past it the batch fails with an
        error naming the candidate.

    Results are bit-identical to :class:`~repro.core.execution.SerialBackend`
    (per-task seeds, index-slotted results) regardless of worker count or
    failure order.
    """

    name = "queue"

    def __init__(
        self,
        num_workers: int = 2,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_interval: float = 0.5,
        heartbeat_timeout: float = 15.0,
        worker_timeout: float = 60.0,
        max_retries: int = 2,
        _kill_after_tasks: Optional[Union[int, Dict[int, int]]] = None,
    ) -> None:
        if num_workers < 0:
            raise ValueError(f"QueueBackend: num_workers must be >= 0, got {num_workers}")
        if heartbeat_interval <= 0:
            raise ValueError("QueueBackend: heartbeat_interval must be positive")
        if heartbeat_timeout <= heartbeat_interval:
            raise ValueError(
                "QueueBackend: heartbeat_timeout must exceed heartbeat_interval"
            )
        if worker_timeout <= 0:
            raise ValueError("QueueBackend: worker_timeout must be positive")
        if max_retries < 0:
            raise ValueError("QueueBackend: max_retries must be >= 0")
        self.num_workers = num_workers
        self.host = host
        self.port = port
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.worker_timeout = worker_timeout
        self.max_retries = max_retries
        if _kill_after_tasks is None:
            self._kill_after_tasks: Dict[int, int] = {}
        elif isinstance(_kill_after_tasks, int):
            self._kill_after_tasks = {0: _kill_after_tasks}
        else:
            self._kill_after_tasks = dict(_kill_after_tasks)

    @property
    def connect_host(self) -> str:
        """Address local workers dial (bind-any addresses map to loopback)."""
        return "127.0.0.1" if self.host in ("", "0.0.0.0") else self.host

    def run(
        self,
        context: EvaluationContext,
        tasks: Sequence[EvaluationTask],
        on_result: Optional[ResultCallback] = None,
    ) -> List[EvaluationOutcome]:
        tasks = list(tasks)
        if not tasks:
            return []
        with obs_trace.span(
            "search.dispatch",
            attrs={"backend": "queue", "tasks": len(tasks)},
        ) as dispatch_span:
            coordinator = _Coordinator(self, context, tasks, on_result)
            outcomes = coordinator.run()
            dispatch_span.attrs["workers_connected"] = coordinator.workers_connected
            dispatch_span.attrs["redispatched"] = coordinator.redispatched
        return outcomes

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return (
            f"QueueBackend(num_workers={self.num_workers}, "
            f"host={self.host!r}, port={self.port})"
        )
