"""Hyper-parameter optimization for the benchmark training configuration.

Section V-A2 of the paper tunes the learning rate, L2 penalty, decay rate
and batch size of a fixed benchmark model (SimplE) with HyperOpt/TPE before
running the scoring-function search with those hyper-parameters frozen.
This module provides the same capability with two lightweight strategies:

* :func:`random_search_hpo` — uniform random sampling of the search ranges;
* :func:`tpe_search_hpo` — a simplified Tree-structured Parzen Estimator:
  after a warm-up phase, candidates are sampled around the best-performing
  configurations (the "good" density) and ranked by how much more likely
  they are under the good density than under the overall density.

Both return the best :class:`~repro.utils.config.TrainingConfig` found plus
the full trial log, so benches can report the tuning trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.knowledge_graph import KnowledgeGraph
from repro.kge.evaluation import evaluate_link_prediction
from repro.kge.model import train_model
from repro.utils.config import TrainingConfig
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class HPOSpace:
    """Search ranges mirroring Sec. V-A2 of the paper."""

    learning_rate: Tuple[float, float] = (0.01, 1.0)
    l2_penalty: Tuple[float, float] = (1e-5, 1e-1)
    decay_rate: Tuple[float, float] = (0.99, 1.0)
    batch_sizes: Sequence[int] = (256, 512, 1024)

    def sample(self, rng: np.random.Generator) -> Dict[str, float]:
        """Draw one configuration (log-uniform for rate-like parameters)."""
        low_lr, high_lr = np.log(self.learning_rate[0]), np.log(self.learning_rate[1])
        low_l2, high_l2 = np.log(self.l2_penalty[0]), np.log(self.l2_penalty[1])
        return {
            "learning_rate": float(np.exp(rng.uniform(low_lr, high_lr))),
            "l2_penalty": float(np.exp(rng.uniform(low_l2, high_l2))),
            "decay_rate": float(rng.uniform(*self.decay_rate)),
            "batch_size": int(rng.choice(list(self.batch_sizes))),
        }


@dataclass
class HPOTrial:
    """One evaluated hyper-parameter configuration."""

    settings: Dict[str, float]
    validation_mrr: float


@dataclass
class HPOResult:
    """Best configuration plus the full trial history."""

    best_config: TrainingConfig
    best_mrr: float
    trials: List[HPOTrial] = field(default_factory=list)


def _default_objective(
    graph: KnowledgeGraph, base_config: TrainingConfig, model_name: str
) -> Callable[[Dict[str, float]], float]:
    """Objective: train ``model_name`` with the settings, return valid MRR."""

    def objective(settings: Dict[str, float]) -> float:
        config = base_config.replace(**settings)
        model = train_model(graph, model_name, config)
        result = model.evaluate(graph, split="valid")
        return result.mrr

    return objective


def random_search_hpo(
    graph: KnowledgeGraph,
    base_config: Optional[TrainingConfig] = None,
    model_name: str = "simple",
    num_trials: int = 8,
    space: Optional[HPOSpace] = None,
    seed: RngLike = 0,
    objective: Optional[Callable[[Dict[str, float]], float]] = None,
) -> HPOResult:
    """Uniform random search over the hyper-parameter space."""
    if num_trials <= 0:
        raise ValueError("num_trials must be positive")
    rng = ensure_rng(seed)
    space = space or HPOSpace()
    base_config = base_config or TrainingConfig()
    objective = objective or _default_objective(graph, base_config, model_name)

    trials: List[HPOTrial] = []
    for _trial in range(num_trials):
        settings = space.sample(rng)
        score = float(objective(settings))
        trials.append(HPOTrial(settings=settings, validation_mrr=score))

    best = max(trials, key=lambda trial: trial.validation_mrr)
    return HPOResult(
        best_config=base_config.replace(**best.settings),
        best_mrr=best.validation_mrr,
        trials=trials,
    )


def tpe_search_hpo(
    graph: KnowledgeGraph,
    base_config: Optional[TrainingConfig] = None,
    model_name: str = "simple",
    num_trials: int = 12,
    warmup_trials: int = 4,
    candidates_per_trial: int = 16,
    good_fraction: float = 0.3,
    space: Optional[HPOSpace] = None,
    seed: RngLike = 0,
    objective: Optional[Callable[[Dict[str, float]], float]] = None,
) -> HPOResult:
    """A simplified TPE: sample near good configurations after a warm-up."""
    if num_trials <= 0:
        raise ValueError("num_trials must be positive")
    if warmup_trials < 2:
        raise ValueError("warmup_trials must be at least 2")
    rng = ensure_rng(seed)
    space = space or HPOSpace()
    base_config = base_config or TrainingConfig()
    objective = objective or _default_objective(graph, base_config, model_name)

    continuous_keys = ("learning_rate", "l2_penalty", "decay_rate")
    trials: List[HPOTrial] = []

    def to_vector(settings: Dict[str, float]) -> np.ndarray:
        return np.array(
            [np.log(settings["learning_rate"]), np.log(settings["l2_penalty"]), settings["decay_rate"]]
        )

    def propose() -> Dict[str, float]:
        if len(trials) < warmup_trials:
            return space.sample(rng)
        ordered = sorted(trials, key=lambda trial: -trial.validation_mrr)
        num_good = max(1, int(round(good_fraction * len(ordered))))
        good = np.stack([to_vector(trial.settings) for trial in ordered[:num_good]])
        everyone = np.stack([to_vector(trial.settings) for trial in ordered])
        bandwidth = np.maximum(everyone.std(axis=0), 1e-3)

        def log_density(samples: np.ndarray, centers: np.ndarray) -> np.ndarray:
            # Kernel-density log-likelihood with a diagonal Gaussian kernel.
            diffs = (samples[:, None, :] - centers[None, :, :]) / bandwidth
            log_kernel = -0.5 * np.sum(diffs**2, axis=2)
            return np.log(np.mean(np.exp(log_kernel), axis=1) + 1e-12)

        best_candidate, best_ratio = None, -np.inf
        for _candidate in range(candidates_per_trial):
            # Sample around a random good configuration.
            center = good[int(rng.integers(0, good.shape[0]))]
            sample = center + rng.normal(0.0, bandwidth)
            sample[2] = float(np.clip(sample[2], space.decay_rate[0], space.decay_rate[1]))
            sample[0] = float(
                np.clip(sample[0], np.log(space.learning_rate[0]), np.log(space.learning_rate[1]))
            )
            sample[1] = float(
                np.clip(sample[1], np.log(space.l2_penalty[0]), np.log(space.l2_penalty[1]))
            )
            ratio = float(
                log_density(sample[None, :], good)[0] - log_density(sample[None, :], everyone)[0]
            )
            if ratio > best_ratio:
                best_ratio = ratio
                best_candidate = sample
        assert best_candidate is not None
        return {
            "learning_rate": float(np.exp(best_candidate[0])),
            "l2_penalty": float(np.exp(best_candidate[1])),
            "decay_rate": float(best_candidate[2]),
            "batch_size": int(rng.choice(list(space.batch_sizes))),
        }

    for _trial in range(num_trials):
        settings = propose()
        score = float(objective(settings))
        trials.append(HPOTrial(settings=settings, validation_mrr=score))

    best = max(trials, key=lambda trial: trial.validation_mrr)
    return HPOResult(
        best_config=base_config.replace(**best.settings),
        best_mrr=best.validation_mrr,
        trials=trials,
    )
