"""The performance predictor P (Sec. IV-B3).

A tiny fully-connected regressor maps structure features to (predicted)
validation MRR.  Two feature extractors are available:

* **SRF** (the paper's choice) — the 22-dimensional symmetry-related
  features, consumed by a 22-2-1 network;
* **one-hot** (the PNAS-style ablation of Fig. 8) — a one-hot encoding of
  the substitute matrix, consumed by a wider network.

The predictor only has to *rank* candidates (principle P1) and must learn
from a few dozen samples (principle P2), so the network is deliberately tiny
and trained with plain full-batch Adam on a mean-squared-error objective.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.srf import ONEHOT_DIMENSION, SRF_DIMENSION, onehot_features, srf_features
from repro.kge.scoring.blocks import BlockStructure
from repro.utils.config import PredictorConfig
from repro.utils.rng import ensure_rng

#: Signature of a feature extractor.
FeatureExtractor = Callable[[BlockStructure], np.ndarray]

_FEATURE_EXTRACTORS: Dict[str, Tuple[FeatureExtractor, int]] = {
    "srf": (srf_features, SRF_DIMENSION),
    "onehot": (onehot_features, ONEHOT_DIMENSION),
}


def get_feature_extractor(name: str) -> Tuple[FeatureExtractor, int]:
    """Return (extractor, dimension) for a feature type name."""
    key = name.lower()
    if key not in _FEATURE_EXTRACTORS:
        raise KeyError(
            f"unknown feature type {name!r}; available: {', '.join(sorted(_FEATURE_EXTRACTORS))}"
        )
    return _FEATURE_EXTRACTORS[key]


class PerformancePredictor:
    """A one-hidden-layer MLP regressor over structure features."""

    def __init__(self, config: Optional[PredictorConfig] = None) -> None:
        self.config = config or PredictorConfig()
        self.extractor, self.input_dimension = get_feature_extractor(self.config.feature_type)
        hidden = self.config.hidden_units
        rng = ensure_rng(self.config.seed)
        scale_in = 1.0 / np.sqrt(max(self.input_dimension, 1))
        scale_hidden = 1.0 / np.sqrt(max(hidden, 1))
        self._w1 = rng.normal(0.0, scale_in, size=(self.input_dimension, hidden))
        self._b1 = np.zeros(hidden)
        self._w2 = rng.normal(0.0, scale_hidden, size=(hidden, 1))
        self._b2 = np.zeros(1)
        self._adam_state: Dict[str, Dict[str, np.ndarray]] = {}
        self._adam_step = 0
        self._trained_samples = 0

    # ------------------------------------------------------------------
    # Features
    # ------------------------------------------------------------------
    def featurize(self, structures: Sequence[BlockStructure]) -> np.ndarray:
        """Stack the feature vectors of many structures."""
        if not structures:
            return np.zeros((0, self.input_dimension))
        return np.stack([self.extractor(structure) for structure in structures])

    # ------------------------------------------------------------------
    # Forward / training
    # ------------------------------------------------------------------
    def _forward(self, features: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        hidden = np.tanh(features @ self._w1 + self._b1)
        output = hidden @ self._w2 + self._b2
        return output[:, 0], hidden

    def _adam_update(self, name: str, param: np.ndarray, grad: np.ndarray) -> None:
        state = self._adam_state.setdefault(
            name, {"m": np.zeros_like(param), "v": np.zeros_like(param)}
        )
        beta1, beta2, epsilon = 0.9, 0.999, 1e-8
        state["m"] = beta1 * state["m"] + (1 - beta1) * grad
        state["v"] = beta2 * state["v"] + (1 - beta2) * grad * grad
        m_hat = state["m"] / (1 - beta1**self._adam_step)
        v_hat = state["v"] / (1 - beta2**self._adam_step)
        param -= self.config.learning_rate * m_hat / (np.sqrt(v_hat) + epsilon)

    def fit(self, structures: Sequence[BlockStructure], scores: Sequence[float]) -> float:
        """Train on (structure, observed score) pairs; returns the final MSE.

        The search calls this after every greedy stage with the full history
        ``T``, so training always restarts from the current weights (warm
        start), which is both cheap and stable for such a small network.
        """
        if len(structures) != len(scores):
            raise ValueError("structures and scores must have the same length")
        if not structures:
            return 0.0
        features = self.featurize(structures)
        targets = np.asarray(scores, dtype=np.float64)
        weight_decay = self.config.l2_penalty
        final_mse = 0.0
        for _epoch in range(self.config.epochs):
            self._adam_step += 1
            predictions, hidden = self._forward(features)
            errors = predictions - targets
            final_mse = float(np.mean(errors**2))
            doutput = (2.0 / targets.size) * errors[:, None]
            grad_w2 = hidden.T @ doutput + weight_decay * self._w2
            grad_b2 = doutput.sum(axis=0)
            dhidden = (doutput @ self._w2.T) * (1.0 - hidden**2)
            grad_w1 = features.T @ dhidden + weight_decay * self._w1
            grad_b1 = dhidden.sum(axis=0)
            self._adam_update("w2", self._w2, grad_w2)
            self._adam_update("b2", self._b2, grad_b2)
            self._adam_update("w1", self._w1, grad_w1)
            self._adam_update("b1", self._b1, grad_b1)
        self._trained_samples = len(structures)
        return final_mse

    # ------------------------------------------------------------------
    # Prediction / selection
    # ------------------------------------------------------------------
    @property
    def is_trained(self) -> bool:
        return self._trained_samples > 0

    def predict(self, structures: Sequence[BlockStructure]) -> np.ndarray:
        """Predicted scores (higher = better) for each structure."""
        features = self.featurize(structures)
        if features.shape[0] == 0:
            return np.zeros(0)
        predictions, _hidden = self._forward(features)
        return predictions

    def select_top(
        self, structures: Sequence[BlockStructure], count: int
    ) -> List[BlockStructure]:
        """The ``count`` structures with the highest predicted score."""
        if count <= 0:
            return []
        if not structures:
            return []
        predictions = self.predict(structures)
        order = np.argsort(-predictions)[:count]
        return [structures[int(index)] for index in order]

    def ranking_correlation(
        self, structures: Sequence[BlockStructure], scores: Sequence[float]
    ) -> float:
        """Spearman rank correlation between predictions and observed scores.

        A diagnostic for principle (P1): the predictor is useful as soon as
        this is clearly positive, even if absolute predictions are off.
        """
        if len(structures) < 2:
            return 0.0
        from scipy import stats

        predictions = self.predict(structures)
        observed = np.asarray(scores, dtype=np.float64)
        if np.allclose(predictions, predictions[0]) or np.allclose(observed, observed[0]):
            return 0.0
        correlation = stats.spearmanr(predictions, observed).statistic
        if np.isnan(correlation):
            return 0.0
        return float(correlation)
