"""AutoML baselines used in the comparison of Sec. V-D (Fig. 6).

Three alternative ways of spending the same "number of trained models"
budget are implemented:

* :class:`RandomSearch` — sample random structures with a fixed block count
  (f6 in the paper's comparison) and train each one;
* :class:`BayesSearch` — a lightweight sequential model-based optimizer: a
  Bayesian-linear-regression surrogate over structure features ranks a pool
  of random candidates by expected improvement (exploitation + an
  uncertainty bonus), so promising regions are sampled more densely.  This
  plays the role of the paper's "Bayes" (TPE) baseline without requiring
  HyperOpt;
* :func:`general_approximator_baseline` — train the unconstrained MLP
  scoring function once (the Gen-Approx line of Fig. 6).

The sampling/surrogate logic now lives in
:mod:`repro.experiments.strategies` (``RandomStrategy`` /
``BayesStrategy``), driven by the unified
:class:`repro.experiments.loop.SearchLoop`; the classes here are thin
compatibility shims with seed-identical trajectories.  Routing through the
loop also fixes a long-standing waste: the baselines used to bypass the
:class:`~repro.core.store.EvaluationStore`, re-training candidates a
previous (or greedy) run had already evaluated — pass ``store=`` (or share
an ``evaluator=``) and warm candidates now replay from cache.

All searchers return the same :class:`~repro.core.greedy_search.SearchResult`
structure so the benchmark harness can overlay their any-time curves.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.evaluator import CandidateEvaluator
from repro.core.greedy_search import SearchResult
from repro.core.store import EvaluationStore
from repro.datasets.knowledge_graph import KnowledgeGraph
from repro.kge.evaluation import evaluate_link_prediction
from repro.kge.scoring.neural import MLPScoringFunction
from repro.kge.trainer import Trainer
from repro.utils.config import TrainingConfig
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.timing import TimingRecorder


class RandomSearch:
    """Train randomly sampled structures with a fixed block count.

    .. deprecated::
        Shim over :class:`repro.experiments.strategies.RandomStrategy` +
        :class:`repro.experiments.loop.SearchLoop`; prefer the spec-driven
        API (``ExperimentSpec(search={"strategy": "random"})``).
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        training_config: Optional[TrainingConfig] = None,
        num_blocks: int = 6,
        require_c2: bool = True,
        seed: RngLike = 0,
        evaluator: Optional[CandidateEvaluator] = None,
        store: Optional[EvaluationStore] = None,
    ) -> None:
        from repro.experiments.loop import SearchLoop
        from repro.experiments.strategies import RandomStrategy

        self.graph = graph
        self.training_config = training_config or TrainingConfig()
        self.num_blocks = num_blocks
        self.require_c2 = require_c2
        self.rng = ensure_rng(seed)
        self.timing = TimingRecorder()
        self.strategy = RandomStrategy(num_blocks=num_blocks, require_c2=require_c2)
        self._loop = SearchLoop(
            graph,
            self.strategy,
            self.training_config,
            # Same per-candidate seeding scheme as AutoSFSearch, so methods
            # compared under one seed train a given structure identically
            # (and can share a persistent evaluation store).
            seed=seed if isinstance(seed, (int, np.integer)) else None,
            store=store,
            evaluator=evaluator,
            timing=self.timing,
            rng=self.rng,
        )
        self.evaluator = self._loop.evaluator

    def run(self, max_evaluations: int = 32) -> SearchResult:
        """Train up to ``max_evaluations`` random candidates."""
        return self._loop.run(max_evaluations=max_evaluations)


class BayesSearch:
    """Sequential model-based search with a Bayesian linear surrogate.

    .. deprecated::
        Shim over :class:`repro.experiments.strategies.BayesStrategy` +
        :class:`repro.experiments.loop.SearchLoop`; prefer the spec-driven
        API (``ExperimentSpec(search={"strategy": "bayes"})``).
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        training_config: Optional[TrainingConfig] = None,
        num_blocks: int = 6,
        feature_type: str = "srf",
        pool_size: int = 64,
        exploration_weight: float = 1.0,
        prior_precision: float = 1.0,
        noise_precision: float = 25.0,
        seed: RngLike = 0,
        evaluator: Optional[CandidateEvaluator] = None,
        store: Optional[EvaluationStore] = None,
    ) -> None:
        from repro.experiments.loop import SearchLoop
        from repro.experiments.strategies import BayesStrategy

        self.graph = graph
        self.training_config = training_config or TrainingConfig()
        self.num_blocks = num_blocks
        self.pool_size = pool_size
        self.rng = ensure_rng(seed)
        self.timing = TimingRecorder()
        self.strategy = BayesStrategy(
            num_blocks=num_blocks,
            feature_type=feature_type,
            pool_size=pool_size,
            exploration_weight=exploration_weight,
            prior_precision=prior_precision,
            noise_precision=noise_precision,
        )
        self._loop = SearchLoop(
            graph,
            self.strategy,
            self.training_config,
            # Same per-candidate seeding scheme as AutoSFSearch (see above).
            seed=seed if isinstance(seed, (int, np.integer)) else None,
            store=store,
            evaluator=evaluator,
            timing=self.timing,
            rng=self.rng,
        )
        self.evaluator = self._loop.evaluator

    def run(self, max_evaluations: int = 32) -> SearchResult:
        """Run the surrogate-guided search for ``max_evaluations`` trainings."""
        return self._loop.run(max_evaluations=max_evaluations)


def general_approximator_baseline(
    graph: KnowledgeGraph,
    training_config: Optional[TrainingConfig] = None,
    hidden_units: Optional[int] = None,
) -> float:
    """Train the MLP general approximator once; return its validation MRR.

    This is the "Gen-Approx" reference line in Fig. 6: an unconstrained
    neural scorer that, despite being a universal approximator, lacks the
    domain-specific structure of the bilinear search space and overfits.
    """
    config = training_config or TrainingConfig()
    scoring_function = MLPScoringFunction(hidden_units=hidden_units)
    trainer = Trainer(scoring_function, config)
    params, _history = trainer.fit(graph)
    result = evaluate_link_prediction(scoring_function, params, graph, split="valid")
    return result.mrr
