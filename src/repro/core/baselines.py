"""AutoML baselines used in the comparison of Sec. V-D (Fig. 6).

Three alternative ways of spending the same "number of trained models"
budget are implemented:

* :class:`RandomSearch` — sample random structures with a fixed block count
  (f6 in the paper's comparison) and train each one;
* :class:`BayesSearch` — a lightweight sequential model-based optimizer: a
  Bayesian-linear-regression surrogate over structure features ranks a pool
  of random candidates by expected improvement (exploitation + an
  uncertainty bonus), so promising regions are sampled more densely.  This
  plays the role of the paper's "Bayes" (TPE) baseline without requiring
  HyperOpt;
* :func:`general_approximator_baseline` — train the unconstrained MLP
  scoring function once (the Gen-Approx line of Fig. 6).

All searchers return the same :class:`~repro.core.greedy_search.SearchResult`
structure so the benchmark harness can overlay their any-time curves.
"""

from __future__ import annotations

import time
from typing import List, Optional

import numpy as np

from repro.core.evaluator import CandidateEvaluator
from repro.core.filters import CandidateFilter
from repro.core.greedy_search import SearchRecord, SearchResult
from repro.core.predictor import get_feature_extractor
from repro.core.search_space import random_structure
from repro.datasets.knowledge_graph import KnowledgeGraph
from repro.kge.evaluation import evaluate_link_prediction
from repro.kge.scoring.blocks import BlockStructure
from repro.kge.scoring.neural import MLPScoringFunction
from repro.kge.trainer import Trainer
from repro.utils.config import TrainingConfig
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.timing import TimingRecorder


class RandomSearch:
    """Train randomly sampled structures with a fixed block count."""

    def __init__(
        self,
        graph: KnowledgeGraph,
        training_config: Optional[TrainingConfig] = None,
        num_blocks: int = 6,
        require_c2: bool = True,
        seed: RngLike = 0,
        evaluator: Optional[CandidateEvaluator] = None,
    ) -> None:
        self.graph = graph
        self.training_config = training_config or TrainingConfig()
        self.num_blocks = num_blocks
        self.require_c2 = require_c2
        self.rng = ensure_rng(seed)
        self.timing = TimingRecorder()
        self.evaluator = evaluator or CandidateEvaluator(
            graph,
            self.training_config,
            timing=self.timing,
            # Same per-candidate seeding scheme as AutoSFSearch, so methods
            # compared under one seed train a given structure identically
            # (and can share a persistent evaluation store).
            base_seed=seed if isinstance(seed, (int, np.integer)) else None,
        )

    def _sample(self, exclude: CandidateFilter) -> Optional[BlockStructure]:
        for _attempt in range(200):
            candidate = random_structure(self.num_blocks, self.rng, require_c2=self.require_c2)
            if candidate is None:
                return None
            if exclude.accept(candidate):
                return candidate
        return None

    def run(self, max_evaluations: int = 32) -> SearchResult:
        """Train up to ``max_evaluations`` random candidates."""
        start = time.perf_counter()
        dedup = CandidateFilter(enforce_constraints=self.require_c2, deduplicate=True)
        records: List[SearchRecord] = []
        for order in range(1, max_evaluations + 1):
            candidate = self._sample(dedup)
            if candidate is None:
                break
            evaluation = self.evaluator.evaluate(candidate)
            records.append(
                SearchRecord(
                    structure=candidate,
                    validation_mrr=evaluation.validation_mrr,
                    num_blocks=candidate.num_blocks,
                    stage=candidate.num_blocks,
                    order=order,
                    elapsed_seconds=time.perf_counter() - start,
                )
            )
        if not records:
            raise RuntimeError("random search produced no evaluations")
        best = max(records, key=lambda record: record.validation_mrr)
        return SearchResult(
            best_structure=best.structure,
            best_mrr=best.validation_mrr,
            records=records,
            timing=self.timing,
            filter_statistics=dedup.statistics.as_dict(),
        )


class BayesSearch:
    """Sequential model-based search with a Bayesian linear surrogate."""

    def __init__(
        self,
        graph: KnowledgeGraph,
        training_config: Optional[TrainingConfig] = None,
        num_blocks: int = 6,
        feature_type: str = "srf",
        pool_size: int = 64,
        exploration_weight: float = 1.0,
        prior_precision: float = 1.0,
        noise_precision: float = 25.0,
        seed: RngLike = 0,
        evaluator: Optional[CandidateEvaluator] = None,
    ) -> None:
        self.graph = graph
        self.training_config = training_config or TrainingConfig()
        self.num_blocks = num_blocks
        self.extractor, self.feature_dimension = get_feature_extractor(feature_type)
        self.pool_size = pool_size
        self.exploration_weight = float(exploration_weight)
        self.prior_precision = float(prior_precision)
        self.noise_precision = float(noise_precision)
        self.rng = ensure_rng(seed)
        self.timing = TimingRecorder()
        self.evaluator = evaluator or CandidateEvaluator(
            graph,
            self.training_config,
            timing=self.timing,
            # Same per-candidate seeding scheme as AutoSFSearch, so methods
            # compared under one seed train a given structure identically
            # (and can share a persistent evaluation store).
            base_seed=seed if isinstance(seed, (int, np.integer)) else None,
        )

    # ------------------------------------------------------------------
    # Surrogate
    # ------------------------------------------------------------------
    def _posterior(self, features: np.ndarray, targets: np.ndarray):
        """Bayesian linear regression posterior (mean weights, covariance)."""
        dimension = features.shape[1]
        precision = self.prior_precision * np.eye(dimension)
        precision += self.noise_precision * features.T @ features
        covariance = np.linalg.inv(precision)
        mean = self.noise_precision * covariance @ features.T @ targets
        return mean, covariance

    def _acquisition(
        self, candidates: List[BlockStructure], features: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        """Upper-confidence-bound acquisition over the candidate pool."""
        candidate_features = np.stack([self.extractor(candidate) for candidate in candidates])
        if features.shape[0] < 2:
            return self.rng.random(len(candidates))
        mean, covariance = self._posterior(features, targets)
        predicted = candidate_features @ mean
        variance = np.einsum("ij,jk,ik->i", candidate_features, covariance, candidate_features)
        variance = np.maximum(variance, 0.0) + 1.0 / self.noise_precision
        return predicted + self.exploration_weight * np.sqrt(variance)

    # ------------------------------------------------------------------
    # Search loop
    # ------------------------------------------------------------------
    def run(self, max_evaluations: int = 32) -> SearchResult:
        """Run the surrogate-guided search for ``max_evaluations`` trainings."""
        start = time.perf_counter()
        dedup = CandidateFilter(enforce_constraints=True, deduplicate=True)
        records: List[SearchRecord] = []
        observed_features: List[np.ndarray] = []
        observed_targets: List[float] = []

        for order in range(1, max_evaluations + 1):
            pool: List[BlockStructure] = []
            for _attempt in range(20 * self.pool_size):
                if len(pool) >= self.pool_size:
                    break
                candidate = random_structure(self.num_blocks, self.rng, require_c2=True)
                if candidate is None:
                    continue
                if dedup.explain(candidate) is None and all(
                    candidate.key() != member.key() for member in pool
                ):
                    pool.append(candidate)
            if not pool:
                break

            features = (
                np.stack(observed_features) if observed_features else np.zeros((0, self.feature_dimension))
            )
            targets = np.asarray(observed_targets, dtype=np.float64)
            scores = self._acquisition(pool, features, targets)
            chosen = pool[int(np.argmax(scores))]
            dedup.accept(chosen)

            evaluation = self.evaluator.evaluate(chosen)
            observed_features.append(self.extractor(chosen))
            observed_targets.append(evaluation.validation_mrr)
            records.append(
                SearchRecord(
                    structure=chosen,
                    validation_mrr=evaluation.validation_mrr,
                    num_blocks=chosen.num_blocks,
                    stage=chosen.num_blocks,
                    order=order,
                    elapsed_seconds=time.perf_counter() - start,
                )
            )

        if not records:
            raise RuntimeError("Bayes search produced no evaluations")
        best = max(records, key=lambda record: record.validation_mrr)
        return SearchResult(
            best_structure=best.structure,
            best_mrr=best.validation_mrr,
            records=records,
            timing=self.timing,
            filter_statistics=dedup.statistics.as_dict(),
        )


def general_approximator_baseline(
    graph: KnowledgeGraph,
    training_config: Optional[TrainingConfig] = None,
    hidden_units: Optional[int] = None,
) -> float:
    """Train the MLP general approximator once; return its validation MRR.

    This is the "Gen-Approx" reference line in Fig. 6: an unconstrained
    neural scorer that, despite being a universal approximator, lacks the
    domain-specific structure of the bilinear search space and overfits.
    """
    config = training_config or TrainingConfig()
    scoring_function = MLPScoringFunction(hidden_units=hidden_units)
    trainer = Trainer(scoring_function, config)
    params, _history = trainer.fit(graph)
    result = evaluate_link_prediction(scoring_function, params, graph, split="valid")
    return result.mrr
