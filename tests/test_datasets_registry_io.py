"""Tests for the benchmark registry and TSV I/O."""

import numpy as np
import pytest

from repro.datasets import (
    BENCHMARK_PROFILES,
    available_benchmarks,
    dataset_statistics,
    load_benchmark,
    load_tsv_dataset,
    write_tsv_dataset,
)
from repro.datasets.registry import PAPER_TABLE3
from repro.datasets.statistics import RelationPattern


class TestRegistry:
    def test_five_benchmarks_registered(self):
        assert len(available_benchmarks()) == 5
        assert set(available_benchmarks()) == {"wn18", "fb15k", "wn18rr", "fb15k237", "yago310"}

    def test_paper_table_covers_all_benchmarks(self):
        assert set(PAPER_TABLE3) == set(BENCHMARK_PROFILES)

    def test_name_normalization(self):
        graph = load_benchmark("FB15k-237", scale=0.3)
        assert graph.name == "fb15k237-mini"

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            load_benchmark("freebase-full")

    def test_scale_reduces_size(self):
        small = load_benchmark("wn18rr", scale=0.25)
        large = load_benchmark("wn18rr", scale=0.5)
        assert small.num_entities < large.num_entities
        assert small.num_train < large.num_train

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            load_benchmark("wn18", scale=0.0)

    def test_deterministic(self):
        a = load_benchmark("wn18rr", scale=0.3)
        b = load_benchmark("wn18rr", scale=0.3)
        np.testing.assert_array_equal(a.train, b.train)

    def test_seed_override(self):
        a = load_benchmark("wn18rr", scale=0.3)
        b = load_benchmark("wn18rr", scale=0.3, seed=123)
        assert not np.array_equal(a.train, b.train)

    @pytest.mark.parametrize("name", ["wn18", "wn18rr", "fb15k237"])
    def test_relation_pattern_profile_direction(self, name):
        """Miniatures must preserve the qualitative pattern mix of Table III."""
        graph = load_benchmark(name, scale=0.5)
        statistics = dataset_statistics(graph)
        paper = PAPER_TABLE3[name]
        # WN18 has no general-asymmetric relations; FB15k-237 is dominated by them.
        if paper["general"] == 0:
            assert statistics.count(RelationPattern.GENERAL) == 0
        else:
            assert statistics.count(RelationPattern.GENERAL) >= statistics.count(RelationPattern.INVERSE)
        assert statistics.count(RelationPattern.SYMMETRIC) > 0

    def test_wn18_has_inverse_pairs(self):
        graph = load_benchmark("wn18", scale=0.5)
        statistics = dataset_statistics(graph)
        assert statistics.count(RelationPattern.INVERSE) >= 4


class TestTsvIO:
    def test_round_trip(self, micro_graph, tmp_path):
        directory = write_tsv_dataset(micro_graph, tmp_path / "dump")
        loaded = load_tsv_dataset(directory, name="micro-reloaded")
        assert loaded.num_entities == micro_graph.num_entities
        assert loaded.num_relations == micro_graph.num_relations
        assert loaded.num_train == micro_graph.num_train
        assert loaded.num_test == micro_graph.num_test

    def test_round_trip_preserves_triples_as_sets(self, tiny_graph, tmp_path):
        directory = write_tsv_dataset(tiny_graph, tmp_path / "dump")
        loaded = load_tsv_dataset(directory)
        # Labels map back to (possibly different) indices; compare via names.
        def labelled(graph, split):
            names_e = graph.entity_names or tuple(f"e{i}" for i in range(graph.num_entities))
            names_r = graph.relation_names or tuple(f"r{i}" for i in range(graph.num_relations))
            return {
                (names_e[h], names_r[r], names_e[t]) for h, r, t in graph.split(split)
            }
        assert labelled(tiny_graph, "train") == labelled(loaded, "train")

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_tsv_dataset(tmp_path)

    def test_malformed_line_raises(self, tmp_path):
        (tmp_path / "train.txt").write_text("a\tb\tc\nbad line\n")
        (tmp_path / "valid.txt").write_text("")
        (tmp_path / "test.txt").write_text("")
        with pytest.raises(ValueError):
            load_tsv_dataset(tmp_path)

    def test_unseen_eval_symbol_policy(self, tmp_path):
        (tmp_path / "train.txt").write_text("a\tr\tb\nb\tr\tc\n")
        (tmp_path / "valid.txt").write_text("a\tr\tz\n")
        (tmp_path / "test.txt").write_text("")
        graph = load_tsv_dataset(tmp_path, allow_unseen_in_eval=True)
        assert graph.num_entities == 4
        with pytest.raises(KeyError):
            load_tsv_dataset(tmp_path, allow_unseen_in_eval=False)

    def test_empty_training_split_raises(self, tmp_path):
        (tmp_path / "train.txt").write_text("\n")
        (tmp_path / "valid.txt").write_text("")
        (tmp_path / "test.txt").write_text("")
        with pytest.raises(ValueError):
            load_tsv_dataset(tmp_path)
