"""Tests for the sparse training engine (touched-rows-only gradients).

The sparse engine must reproduce the reference loop at ``atol=1e-10`` for
pairwise losses with ``l2_penalty=0`` (its lazy regularization is only exact
at zero weight), fall back to the batched engine for the multi-class loss,
and keep its documented lazy-update semantics: rows a batch never touches
are never written.
"""

import numpy as np
import pytest

from repro.kge.engine import (
    BatchedTrainEngine,
    ReferenceTrainEngine,
    SparseTrainEngine,
    get_train_engine,
)
from repro.kge.trainer import Trainer
from repro.utils.config import ConfigError, TrainingConfig

from test_train_engine import SCORING_FACTORIES


PAIRWISE = dict(loss="logistic", negative_samples=4, l2_penalty=0.0)


def _config(**overrides):
    settings = dict(dimension=8, epochs=6, batch_size=64, learning_rate=0.5, seed=0)
    settings.update(overrides)
    return TrainingConfig(**settings)


def _fit(graph, factory, **overrides):
    return Trainer(factory(), _config(**overrides)).fit(graph)


def _assert_params_close(actual, expected, atol=1e-10):
    assert set(actual) == set(expected)
    for key in expected:
        np.testing.assert_allclose(actual[key], expected[key], rtol=0, atol=atol)


class TestFactory:
    def test_sparse_engine_by_name(self):
        engine = get_train_engine(TrainingConfig(train_engine="sparse", score_chunk_size=16))
        assert isinstance(engine, SparseTrainEngine)
        assert engine.name == "sparse"
        assert engine.score_chunk_size == 16  # threaded into the multiclass fallback

    def test_config_accepts_sparse(self):
        config = TrainingConfig(train_engine="sparse")
        assert TrainingConfig.from_dict(config.to_dict()) == config

    def test_unknown_engine_is_a_config_error(self):
        # The constructor validates train_engine, so reach get_train_engine
        # with a stale/mutated config the way a forward-versioned run
        # directory would.
        config = TrainingConfig()
        config.train_engine = "gpu"
        with pytest.raises(ConfigError, match="reference, batched, sparse"):
            get_train_engine(config)

    def test_trainer_builds_sparse_engine_from_config(self):
        config = _config(train_engine="sparse")
        trainer = Trainer(SCORING_FACTORIES["simple"](), config)
        assert isinstance(trainer.engine, SparseTrainEngine)


class TestSparseParity:
    """Acceptance: sparse-vs-reference parity at atol=1e-10 (ISSUE 6)."""

    @pytest.mark.parametrize("family", sorted(SCORING_FACTORIES))
    def test_fit_matches_reference_all_families(self, tiny_graph, family):
        factory = SCORING_FACTORIES[family]
        reference_params, reference_history = _fit(
            tiny_graph, factory, train_engine="reference", **PAIRWISE
        )
        sparse_params, sparse_history = _fit(
            tiny_graph, factory, train_engine="sparse", **PAIRWISE
        )
        np.testing.assert_allclose(
            sparse_history.losses, reference_history.losses, rtol=0, atol=1e-10
        )
        _assert_params_close(sparse_params, reference_params)

    @pytest.mark.parametrize("loss", ["logistic", "hinge"])
    @pytest.mark.parametrize("optimizer", ["sgd", "adagrad"])
    def test_fit_matches_reference_losses_and_optimizers(self, tiny_graph, loss, optimizer):
        overrides = dict(
            loss=loss, negative_samples=4, l2_penalty=0.0, optimizer=optimizer
        )
        factory = SCORING_FACTORIES["simple"]
        reference_params, _ = _fit(tiny_graph, factory, train_engine="reference", **overrides)
        sparse_params, _ = _fit(tiny_graph, factory, train_engine="sparse", **overrides)
        _assert_params_close(sparse_params, reference_params)

    def test_adam_single_step_matches_reference(self, tiny_graph):
        """Lazy Adam matches dense Adam exactly on each row's first update."""
        overrides = dict(optimizer="adam", epochs=1, batch_size=10**6, **PAIRWISE)
        factory = SCORING_FACTORIES["simple"]
        reference_params, _ = _fit(tiny_graph, factory, train_engine="reference", **overrides)
        sparse_params, _ = _fit(tiny_graph, factory, train_engine="sparse", **overrides)
        _assert_params_close(sparse_params, reference_params)

    def test_multiclass_delegates_to_batched_bitwise(self, tiny_graph):
        """Full-softmax batches go through the batched engine unchanged."""
        factory = SCORING_FACTORIES["simple"]
        batched_params, batched_history = _fit(tiny_graph, factory, train_engine="batched")
        sparse_params, sparse_history = _fit(tiny_graph, factory, train_engine="sparse")
        assert sparse_history.losses == batched_history.losses
        for key in batched_params:
            np.testing.assert_array_equal(sparse_params[key], batched_params[key])

    def test_multiclass_delegate_respects_chunking(self, tiny_graph):
        factory = SCORING_FACTORIES["simple"]
        batched_params, _ = _fit(
            tiny_graph, factory, train_engine="batched", score_chunk_size=13
        )
        sparse_params, _ = _fit(
            tiny_graph, factory, train_engine="sparse", score_chunk_size=13
        )
        for key in batched_params:
            np.testing.assert_array_equal(sparse_params[key], batched_params[key])

    def test_duplicate_triples_in_one_batch(self, tiny_graph):
        """Scatter-add collision case: repeated entities within a batch.

        A batch whose triples repeat the same heads/tails must accumulate
        every contribution (``grads[idx] += block`` with deduplicated
        indices), not drop duplicates the way plain fancy-indexing would.
        """
        config = _config(**PAIRWISE)
        batch = np.repeat(tiny_graph.train[:6], 4, axis=0)

        def batch_grads(engine_name):
            trainer = Trainer(SCORING_FACTORIES["simple"](), config.replace(
                train_engine=engine_name
            ))
            params = trainer.initialize(tiny_graph)
            grads = trainer.scoring_function.zero_grads(params)
            value = trainer.engine.accumulate_batch(trainer, params, batch, grads)
            return value, grads

        reference_value, reference_grads = batch_grads("reference")
        sparse_value, sparse_grads = batch_grads("sparse")
        assert sparse_value == pytest.approx(reference_value, abs=1e-10)
        for key in reference_grads:
            np.testing.assert_allclose(
                sparse_grads[key], reference_grads[key], rtol=0, atol=1e-10
            )


class TestLazySemantics:
    def test_untouched_rows_are_never_written(self, tiny_graph):
        """Even with L2 on, rows outside the batch keep their exact values."""
        config = _config(loss="logistic", negative_samples=4, l2_penalty=0.1,
                         train_engine="sparse")
        trainer = Trainer(SCORING_FACTORIES["simple"](), config)
        params = trainer.initialize(tiny_graph)
        before = {key: value.copy() for key, value in params.items()}
        batch = tiny_graph.train[:8]
        trainer.train_step(params, batch)

        touched = np.unique(np.concatenate([batch[:, 0], batch[:, 2]]))
        changed = np.flatnonzero(
            np.any(params["entities"] != before["entities"], axis=1)
        )
        # Every positive is certainly touched...
        assert np.isin(touched, changed).all()
        # ...and the untouched complement is bitwise identical — a dense
        # engine with l2_penalty=0.1 would have decayed every row.
        untouched = np.setdiff1d(np.arange(tiny_graph.num_entities), changed)
        assert untouched.size > 0, "batch unexpectedly touched the whole vocabulary"
        np.testing.assert_array_equal(
            params["entities"][untouched], before["entities"][untouched]
        )

    def test_reference_decays_what_sparse_skips(self, tiny_graph):
        """The documented deviation: lazy regularization at nonzero weight."""
        overrides = dict(loss="logistic", negative_samples=4, l2_penalty=0.1, epochs=1)
        factory = SCORING_FACTORIES["simple"]
        reference_params, _ = _fit(tiny_graph, factory, train_engine="reference", **overrides)
        sparse_params, _ = _fit(tiny_graph, factory, train_engine="sparse", **overrides)
        # With every entity touched over a full epoch the results stay close,
        # but not identical — the decay is applied at different times.
        assert not all(
            np.array_equal(sparse_params[key], reference_params[key])
            for key in reference_params
        )


class TestStreamFit:
    def test_stream_fit_matches_reference(self, tiny_graph, tmp_path):
        """fit(stream=...) drives the sparse engine batch by batch."""
        store = tiny_graph.to_store(tmp_path / "store", shard_size=128)
        results = {}
        for engine in ("reference", "sparse"):
            config = _config(epochs=3, train_engine=engine, **PAIRWISE)
            trainer = Trainer(SCORING_FACTORIES["simple"](), config)
            stream = store.stream("train", batch_size=64, seed=0)
            params, history = trainer.fit(None, stream=stream)
            results[engine] = (params, history)
        reference_params, reference_history = results["reference"]
        sparse_params, sparse_history = results["sparse"]
        np.testing.assert_allclose(
            sparse_history.losses, reference_history.losses, rtol=0, atol=1e-10
        )
        _assert_params_close(sparse_params, reference_params)

    def test_stream_fit_multiclass_matches_batched(self, tiny_graph, tmp_path):
        store = tiny_graph.to_store(tmp_path / "store", shard_size=128)
        results = {}
        for engine in ("batched", "sparse"):
            config = _config(epochs=2, train_engine=engine)
            trainer = Trainer(SCORING_FACTORIES["simple"](), config)
            params, _ = trainer.fit(None, stream=store.stream("train", seed=0))
            results[engine] = params
        for key in results["batched"]:
            np.testing.assert_array_equal(results["sparse"][key], results["batched"][key])


class TestAccumulateBatchContract:
    def test_explicit_engine_wins_over_config(self, tiny_graph):
        config = _config(train_engine="batched")
        trainer = Trainer(
            SCORING_FACTORIES["simple"](), config, engine=SparseTrainEngine()
        )
        assert isinstance(trainer.engine, SparseTrainEngine)

    def test_train_step_default_flow_unchanged_for_dense_engines(self, tiny_graph):
        """The base-class train_step reproduces the old trainer inline flow."""
        config = _config(**PAIRWISE)
        for engine in (ReferenceTrainEngine(), BatchedTrainEngine()):
            trainer = Trainer(SCORING_FACTORIES["simple"](), config, engine=engine)
            params = trainer.initialize(tiny_graph)
            value = trainer.train_step(params, tiny_graph.train[:16])
            assert np.isfinite(value)
