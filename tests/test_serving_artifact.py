"""Tests for the versioned serving artifact (export / load round-trips)."""

import numpy as np
import pytest

from repro.kge import KGEModel, train_model
from repro.kge.scoring import BlockScoringFunction
from repro.core.search_space import random_structure
from repro.serving import (
    ARTIFACT_SCHEMA_VERSION,
    ArtifactError,
    export_artifact,
    load_artifact,
)
from repro.serving.artifact import LEGACY_PARAMS_FILENAME, PARAMS_DIRNAME
from repro.utils.config import TrainingConfig
from repro.utils.serialization import from_json_file, save_params_npz, to_json_file


def write_legacy_artifact(directory, model):
    """Write a schema-v1 artifact (single params.npz) the way PR 3 did."""
    from repro.kge.model import scoring_function_metadata

    directory.mkdir(parents=True, exist_ok=True)
    manifest = scoring_function_metadata(model.scoring_function)
    manifest.update(
        {
            "schema_version": 1,
            "num_entities": int(model.params["entities"].shape[0]),
            "num_relations": int(model.params["relations"].shape[0]),
            "config": model.config.to_dict(),
            "metrics": {},
        }
    )
    to_json_file(manifest, directory / "manifest.json")
    save_params_npz(model.params, directory / LEGACY_PARAMS_FILENAME)
    return directory

#: One representative per scoring family (block, full-matrix, translational,
#: rotational, neural), plus a searched block structure below.
FAMILIES = ["complex", "rescal", "transe", "rotate", "mlp"]


@pytest.fixture(scope="module")
def family_models(tiny_graph):
    config = TrainingConfig(dimension=8, epochs=2, batch_size=64, learning_rate=0.5, seed=0)
    models = {name: train_model(tiny_graph, name, config) for name in FAMILIES}
    models["searched"] = train_model(
        tiny_graph, random_structure(6, rng=0, require_c2=True), config
    )
    return models


class TestRoundTrip:
    @pytest.mark.parametrize("name", FAMILIES + ["searched"])
    def test_scores_survive_export_and_load(self, name, family_models, tiny_graph, tmp_path):
        model = family_models[name]
        path = export_artifact(model, tmp_path / name, graph=tiny_graph)
        artifact = load_artifact(path)
        triples = tiny_graph.test[:5]
        np.testing.assert_array_equal(
            artifact.to_model().score(triples), model.score(triples)
        )
        assert artifact.num_entities == tiny_graph.num_entities
        assert artifact.num_relations == tiny_graph.num_relations
        assert artifact.schema_version == ARTIFACT_SCHEMA_VERSION

    def test_block_structure_survives(self, family_models, tiny_graph, tmp_path):
        model = family_models["searched"]
        artifact = load_artifact(export_artifact(model, tmp_path / "blocks"))
        assert isinstance(artifact.scoring_function, BlockScoringFunction)
        assert artifact.scoring_function.structure.key() == model.scoring_function.structure.key()

    def test_metrics_embedded(self, family_models, tmp_path):
        model = family_models["complex"]
        path = export_artifact(model, tmp_path / "metrics", metrics={"test_mrr": 0.25})
        assert load_artifact(path).metrics == {"test_mrr": 0.25}

    def test_vocabulary_round_trip(self, family_models, tiny_graph, tmp_path):
        artifact = load_artifact(
            export_artifact(family_models["complex"], tmp_path / "vocab", graph=tiny_graph)
        )
        # The synthetic benchmarks label relations but not entities.
        assert artifact.relation_names == tiny_graph.relation_names
        assert artifact.entity_names is None
        label = tiny_graph.relation_names[0]
        assert artifact.relation_id(label) == 0
        assert artifact.relation_label(0) == label
        assert artifact.entity_id("7") == 7
        assert artifact.entity_label(7) == "e7"

    def test_vocab_reused_from_model_directory(self, family_models, tiny_graph, tmp_path):
        model = family_models["complex"]
        model_dir = model.save(tmp_path / "saved", graph=tiny_graph)
        artifact = load_artifact(
            export_artifact(model, tmp_path / "from_saved", model_directory=model_dir)
        )
        assert artifact.relation_names == tiny_graph.relation_names


class TestSchemaV2Layout:
    """Raw per-array .npy layout (v2, unchanged in v3), mmap-loadable, v1 readable."""

    @pytest.fixture()
    def artifact_dir(self, family_models, tiny_graph, tmp_path):
        return export_artifact(family_models["complex"], tmp_path / "v2", graph=tiny_graph)

    def test_raw_npy_layout_on_disk(self, artifact_dir):
        manifest = from_json_file(artifact_dir / "manifest.json")
        assert manifest["schema_version"] == ARTIFACT_SCHEMA_VERSION == 3
        assert set(manifest["params"]) >= {"entities", "relations"}
        for relative in manifest["params"].values():
            assert (artifact_dir / relative).exists()
            assert relative.startswith(f"{PARAMS_DIRNAME}/")
        assert not (artifact_dir / LEGACY_PARAMS_FILENAME).exists()

    def test_mmap_load_returns_readonly_memmap_views(self, family_models, artifact_dir):
        artifact = load_artifact(artifact_dir, mmap=True)
        assert artifact.params_memmap
        for key, array in artifact.params.items():
            assert isinstance(array, np.memmap), key
            assert not array.flags.writeable, key
            with pytest.raises(ValueError):
                array[...] = 0.0
        np.testing.assert_array_equal(
            artifact.params["entities"], family_models["complex"].params["entities"]
        )
        assert artifact.params_nbytes() > 0
        assert artifact.describe()["params_memmap"] is True

    def test_in_memory_load_is_readonly_but_not_memmap(self, artifact_dir):
        artifact = load_artifact(artifact_dir, mmap=False)
        assert not artifact.params_memmap
        assert not isinstance(artifact.params["entities"], np.memmap)
        assert not artifact.params["entities"].flags.writeable

    def test_mmap_and_memory_scores_bit_identical(self, artifact_dir, tiny_graph):
        mapped = load_artifact(artifact_dir, mmap=True)
        memory = load_artifact(artifact_dir)
        triples = tiny_graph.test[:10]
        np.testing.assert_array_equal(
            mapped.to_model().score(triples), memory.to_model().score(triples)
        )

    def test_legacy_v1_artifact_loads(self, family_models, tiny_graph, tmp_path):
        model = family_models["complex"]
        legacy = write_legacy_artifact(tmp_path / "v1", model)
        artifact = load_artifact(legacy)
        assert artifact.schema_version == 1
        np.testing.assert_array_equal(
            artifact.params["entities"], model.params["entities"]
        )

    def test_legacy_v1_mmap_falls_back_to_memory(self, family_models, tmp_path):
        legacy = write_legacy_artifact(tmp_path / "v1-mmap", family_models["complex"])
        artifact = load_artifact(legacy, mmap=True)
        assert not artifact.params_memmap  # .npz cannot be memory-mapped
        assert not artifact.params["entities"].flags.writeable

    def test_missing_param_file_named(self, artifact_dir):
        (artifact_dir / PARAMS_DIRNAME / "entities.npy").unlink()
        with pytest.raises(ArtifactError, match="params/entities.npy"):
            load_artifact(artifact_dir)

    def test_manifest_without_params_map_rejected(self, artifact_dir):
        manifest = from_json_file(artifact_dir / "manifest.json")
        del manifest["params"]
        to_json_file(manifest, artifact_dir / "manifest.json")
        with pytest.raises(ArtifactError, match="params"):
            load_artifact(artifact_dir)


class TestValidation:
    @pytest.fixture()
    def artifact_dir(self, family_models, tiny_graph, tmp_path):
        return export_artifact(family_models["complex"], tmp_path / "artifact", graph=tiny_graph)

    def test_untrained_model_rejected(self, tmp_path):
        from repro.kge.scoring import get_scoring_function

        model = KGEModel(get_scoring_function("complex"), TrainingConfig(dimension=8, epochs=1))
        with pytest.raises(ArtifactError, match="untrained"):
            export_artifact(model, tmp_path / "nothing")

    def test_graph_mismatch_rejected(self, family_models, micro_graph, tmp_path):
        with pytest.raises(ArtifactError, match="does not match"):
            export_artifact(family_models["complex"], tmp_path / "bad", graph=micro_graph)

    def test_missing_directory(self, tmp_path):
        with pytest.raises(ArtifactError, match="does not exist"):
            load_artifact(tmp_path / "nowhere")

    def test_missing_params(self, artifact_dir):
        (artifact_dir / PARAMS_DIRNAME / "relations.npy").unlink()
        with pytest.raises(ArtifactError, match="params/relations.npy"):
            load_artifact(artifact_dir)

    def test_legacy_missing_params_archive(self, family_models, tmp_path):
        legacy = write_legacy_artifact(tmp_path / "legacy", family_models["complex"])
        (legacy / LEGACY_PARAMS_FILENAME).unlink()
        with pytest.raises(ArtifactError, match="params.npz"):
            load_artifact(legacy)

    def test_missing_manifest(self, artifact_dir):
        (artifact_dir / "manifest.json").unlink()
        with pytest.raises(ArtifactError, match="manifest.json"):
            load_artifact(artifact_dir)

    def test_corrupt_manifest(self, artifact_dir):
        (artifact_dir / "manifest.json").write_text("{not json", encoding="utf-8")
        with pytest.raises(ArtifactError, match="not valid JSON"):
            load_artifact(artifact_dir)

    def test_missing_manifest_keys(self, artifact_dir):
        manifest = from_json_file(artifact_dir / "manifest.json")
        del manifest["num_entities"]
        to_json_file(manifest, artifact_dir / "manifest.json")
        with pytest.raises(ArtifactError, match="num_entities"):
            load_artifact(artifact_dir)

    def test_schema_version_mismatch(self, artifact_dir):
        manifest = from_json_file(artifact_dir / "manifest.json")
        manifest["schema_version"] = ARTIFACT_SCHEMA_VERSION + 1
        to_json_file(manifest, artifact_dir / "manifest.json")
        with pytest.raises(ArtifactError, match="schema version"):
            load_artifact(artifact_dir)

    def test_count_mismatch(self, artifact_dir):
        manifest = from_json_file(artifact_dir / "manifest.json")
        manifest["num_entities"] += 1
        to_json_file(manifest, artifact_dir / "manifest.json")
        with pytest.raises(ArtifactError, match="declares"):
            load_artifact(artifact_dir)

    def test_vocab_length_mismatch(self, artifact_dir):
        to_json_file(
            {"entity_names": ["only", "two"], "relation_names": None},
            artifact_dir / "vocab.json",
        )
        with pytest.raises(ArtifactError, match="entity_names"):
            load_artifact(artifact_dir)

    def test_unknown_symbol_resolution(self, artifact_dir):
        artifact = load_artifact(artifact_dir)
        with pytest.raises(KeyError, match="unknown relation"):
            artifact.relation_id("no_such_relation")
        with pytest.raises(KeyError, match="out of range"):
            artifact.entity_id(10**6)
