"""Tests for the declarative ExperimentSpec and its tolerant loading."""

import pytest

from repro.experiments import (
    BackendSpec,
    DatasetSpec,
    ExperimentSpec,
    ExportSpec,
    HPOSpec,
    ObsSpec,
    SearchSpec,
    load_spec,
    spec_digest,
)
from repro.utils.config import ConfigError, PredictorConfig, TrainingConfig


class TestSections:
    def test_dataset_defaults(self):
        spec = DatasetSpec()
        assert spec.benchmark == "wn18rr"
        assert spec.data is None

    def test_dataset_unknown_benchmark(self):
        with pytest.raises(ConfigError, match="DatasetSpec.benchmark"):
            DatasetSpec(benchmark="dbpedia")

    def test_dataset_bad_scale(self):
        with pytest.raises(ConfigError, match="DatasetSpec.scale"):
            DatasetSpec(scale=0.0)

    def test_dataset_data_dir_skips_benchmark_check(self):
        # A TSV directory spec should not insist on a known benchmark name.
        spec = DatasetSpec(data="/somewhere/on/disk")
        assert spec.data == "/somewhere/on/disk"

    def test_search_unknown_strategy_is_lazy(self):
        # The strategy name is validated by the registry at build time, so a
        # spec naming a plug-in that registers later still constructs.
        spec = SearchSpec(strategy="evolutionary")
        assert spec.strategy == "evolutionary"

    def test_search_bad_budget(self):
        with pytest.raises(ConfigError, match="SearchSpec.budget"):
            SearchSpec(budget=0)

    def test_search_bad_greedy_params(self):
        with pytest.raises(ConfigError, match="SearchSpec"):
            SearchSpec(max_blocks=7)

    def test_hpo_disabled_by_default(self):
        assert not HPOSpec().enabled
        assert HPOSpec(method="random").enabled

    def test_hpo_unknown_method(self):
        with pytest.raises(ConfigError, match="HPOSpec.method"):
            HPOSpec(method="grid")

    def test_backend_unknown(self):
        with pytest.raises(ConfigError, match="BackendSpec.backend"):
            BackendSpec(backend="threads")

    def test_backend_workers_validated_at_spec_load(self):
        # Satellite regression: a queue spec with workers < 0 (or any other
        # backend with workers < 1) must fail when the spec is constructed,
        # naming the field — not deep inside backend start-up.
        with pytest.raises(ConfigError, match="BackendSpec.num_workers"):
            BackendSpec(backend="process", num_workers=0)
        with pytest.raises(ConfigError, match="BackendSpec.num_workers"):
            BackendSpec(backend="queue", num_workers=-1)
        # Queue accepts 0 workers (external workers only).
        assert BackendSpec(backend="queue", num_workers=0).num_workers == 0

    def test_backend_queue_field_validation(self):
        with pytest.raises(ConfigError, match="BackendSpec.port"):
            BackendSpec(backend="queue", port=70000)
        with pytest.raises(ConfigError, match="BackendSpec.heartbeat_timeout"):
            BackendSpec(backend="queue", heartbeat_timeout=0)
        with pytest.raises(ConfigError, match="BackendSpec.worker_timeout"):
            BackendSpec(backend="queue", worker_timeout=-1)
        with pytest.raises(ConfigError, match="BackendSpec.max_retries"):
            BackendSpec(backend="queue", max_retries=-1)

    def test_backend_queue_fields_serialized_only_for_queue(self):
        serial = BackendSpec(backend="serial").to_dict()
        assert set(serial) == {"backend", "num_workers"}
        queue = BackendSpec(backend="queue", num_workers=0, port=5000).to_dict()
        assert queue["port"] == 5000
        assert queue["max_retries"] == 2
        assert BackendSpec.from_dict(queue) == BackendSpec(
            backend="queue", num_workers=0, port=5000
        )

    def test_backend_queue_create(self):
        from repro.core.distributed import QueueBackend

        backend = BackendSpec(
            backend="queue", num_workers=0, port=5000, max_retries=1
        ).create()
        assert isinstance(backend, QueueBackend)
        assert backend.num_workers == 0
        assert backend.port == 5000
        assert backend.max_retries == 1


class TestExperimentSpec:
    def test_defaults(self):
        spec = ExperimentSpec()
        assert spec.search.strategy == "greedy"
        assert isinstance(spec.training, TrainingConfig)
        assert isinstance(spec.predictor, PredictorConfig)
        assert not spec.export.enabled

    def test_round_trip(self):
        spec = ExperimentSpec(
            name="round-trip",
            seed=7,
            dataset=DatasetSpec(benchmark="fb15k237", scale=0.25),
            training=TrainingConfig(dimension=16, epochs=5),
            search=SearchSpec(strategy="bayes", budget=12, pool_size=16),
            hpo=HPOSpec(method="random", num_trials=3),
            export=ExportSpec(enabled=True, with_metrics=True),
        )
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_defaults_missing_sections(self):
        spec = ExperimentSpec.from_dict({"name": "minimal"})
        assert spec == ExperimentSpec(name="minimal")

    def test_default_obs_not_serialized(self):
        """A default obs section must not change pre-obs spec dumps/digests."""
        data = ExperimentSpec(name="stable").to_dict()
        assert "obs" not in data
        with_obs = ExperimentSpec(name="stable", obs=ObsSpec(enabled=True))
        assert "obs" in with_obs.to_dict()
        assert spec_digest(ExperimentSpec(name="stable")) != spec_digest(with_obs)

    def test_obs_round_trip(self):
        spec = ExperimentSpec(
            name="obs", obs=ObsSpec(enabled=True, trace=False, metrics=True)
        )
        restored = ExperimentSpec.from_dict(spec.to_dict())
        assert restored == spec
        assert restored.obs.enabled and not restored.obs.trace

    def test_obs_accepts_plain_dict(self):
        spec = ExperimentSpec(name="obs-dict", obs={"enabled": True})
        assert isinstance(spec.obs, ObsSpec)
        assert spec.obs.enabled and spec.obs.trace and spec.obs.metrics

    def test_sections_accept_plain_dicts(self):
        spec = ExperimentSpec(
            name="dicts",
            dataset={"benchmark": "wn18", "scale": 0.3},
            search={"strategy": "random", "num_blocks": 6},
        )
        assert isinstance(spec.dataset, DatasetSpec)
        assert spec.dataset.benchmark == "wn18"
        assert spec.search.strategy == "random"

    def test_unknown_top_level_key_warns(self):
        data = ExperimentSpec(name="fwd").to_dict()
        data["shiny_new_feature"] = {"enabled": True}
        with pytest.warns(UserWarning, match="shiny_new_feature"):
            spec = ExperimentSpec.from_dict(data)
        assert spec.name == "fwd"

    def test_unknown_nested_key_warns(self):
        data = ExperimentSpec(name="fwd").to_dict()
        data["training"]["quantum_annealing"] = True
        with pytest.warns(UserWarning, match="quantum_annealing"):
            spec = ExperimentSpec.from_dict(data)
        assert spec.training == TrainingConfig()

    def test_non_mapping_section_rejected(self):
        data = ExperimentSpec(name="bad").to_dict()
        data["training"] = "fast"
        with pytest.raises(ConfigError, match="ExperimentSpec.training"):
            ExperimentSpec.from_dict(data)

    def test_non_mapping_section_rejected_in_constructor(self):
        with pytest.raises(ConfigError, match="ExperimentSpec.search"):
            ExperimentSpec(search="greedy")

    def test_bad_type_names_field(self):
        data = ExperimentSpec(name="bad").to_dict()
        data["training"]["dimension"] = "big"
        with pytest.raises(ConfigError, match="TrainingConfig.dimension"):
            ExperimentSpec.from_dict(data)

    def test_bad_range_raises_config_error(self):
        data = ExperimentSpec(name="bad").to_dict()
        data["training"]["dimension"] = 10  # not divisible by 4
        with pytest.raises(ConfigError, match="TrainingConfig"):
            ExperimentSpec.from_dict(data)

    def test_schema_version_recorded(self):
        assert ExperimentSpec().to_dict()["schema_version"] >= 1

    def test_save_and_load(self, tmp_path):
        spec = ExperimentSpec(name="on-disk", search=SearchSpec(strategy="random"))
        path = spec.save(tmp_path / "spec.json")
        assert load_spec(path) == spec

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read"):
            ExperimentSpec.load(tmp_path / "nowhere.json")

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ConfigError, match="not valid JSON"):
            ExperimentSpec.load(path)

    def test_search_config_assembly(self):
        spec = ExperimentSpec(
            seed=3,
            search=SearchSpec(max_blocks=8, candidates_per_step=16),
            predictor=PredictorConfig(feature_type="onehot", hidden_units=8),
            backend=BackendSpec(backend="process", num_workers=2),
        )
        config = spec.search_config(cache_dir="runs/x")
        assert config.max_blocks == 8
        assert config.seed == 3
        assert config.backend == "process"
        assert config.num_workers == 2
        assert config.predictor.feature_type == "onehot"
        assert config.cache_dir == "runs/x"


class TestTolerantConfigLoading:
    """The satellite bugfix: forward-versioned dicts load instead of crashing."""

    def test_training_config_unknown_key_warns(self):
        data = TrainingConfig().to_dict()
        data["learning_rate_schedule"] = "cosine"
        with pytest.warns(UserWarning, match="learning_rate_schedule"):
            config = TrainingConfig.from_dict(data)
        assert config == TrainingConfig()

    def test_search_config_unknown_key_warns(self):
        from repro.utils.config import SearchConfig

        data = SearchConfig().to_dict()
        data["strategy"] = "greedy"  # a newer spec field the old code ignores
        with pytest.warns(UserWarning, match="strategy"):
            config = SearchConfig.from_dict(data)
        assert config.max_blocks == SearchConfig().max_blocks

    def test_nested_predictor_unknown_key_warns(self):
        from repro.utils.config import SearchConfig

        data = SearchConfig().to_dict()
        data["predictor"]["ensemble_size"] = 5
        with pytest.warns(UserWarning, match="ensemble_size"):
            config = SearchConfig.from_dict(data)
        assert isinstance(config.predictor, PredictorConfig)

    def test_type_violation_names_field(self):
        with pytest.raises(ConfigError, match="TrainingConfig.epochs"):
            TrainingConfig.from_dict({"epochs": "forever"})

    def test_range_violation_is_config_error(self):
        with pytest.raises(ConfigError, match="batch_size"):
            TrainingConfig.from_dict({"batch_size": 0})

    def test_config_error_is_value_error(self):
        # Call sites that caught ValueError keep working.
        assert issubclass(ConfigError, ValueError)

    def test_non_mapping_rejected(self):
        with pytest.raises(ConfigError, match="expected a mapping"):
            TrainingConfig.from_dict(["dimension", 32])
