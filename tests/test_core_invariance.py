"""Tests for the invariance group and canonical forms."""

import numpy as np
import pytest

from repro.core.invariance import (
    are_equivalent,
    canonical_form,
    canonical_key,
    canonical_matrix,
    distinct_representatives,
    entity_permutation,
    orbit,
    orbit_set,
    relation_permutation,
    sign_flip,
)
from repro.kge.scoring import BlockScoringFunction, BlockStructure, classical_structure


@pytest.fixture(scope="module")
def simple():
    return classical_structure("simple")


@pytest.fixture(scope="module")
def complex_sf():
    return classical_structure("complex")


class TestGroupActions:
    def test_entity_permutation_moves_rows_and_columns(self):
        structure = BlockStructure([(0, 1, 2, 1)])
        permuted = entity_permutation(structure, (1, 0, 2, 3))
        assert permuted.blocks == ((1, 0, 2, 1),)

    def test_relation_permutation_renames_component(self):
        structure = BlockStructure([(0, 1, 2, 1)])
        renamed = relation_permutation(structure, (3, 2, 1, 0))
        assert renamed.blocks == ((0, 1, 1, 1),)

    def test_sign_flip_only_touches_selected_components(self):
        structure = BlockStructure([(0, 1, 2, 1), (2, 3, 0, -1)])
        flipped = sign_flip(structure, (1, 1, -1, 1))
        assert (0, 1, 2, -1) in flipped.blocks
        assert (2, 3, 0, -1) in flipped.blocks

    def test_identity_permutation_is_noop(self, simple):
        assert entity_permutation(simple, (0, 1, 2, 3)).key() == simple.key()
        assert relation_permutation(simple, (0, 1, 2, 3)).key() == simple.key()
        assert sign_flip(simple, (1, 1, 1, 1)).key() == simple.key()


class TestOrbit:
    def test_orbit_contains_structure_itself(self, simple):
        assert simple.key() in orbit_set(simple)

    def test_orbit_size_bounded(self, simple):
        assert len(orbit_set(simple)) <= 24 * 24 * 16

    def test_orbit_members_preserve_block_count(self, complex_sf):
        members = list(orbit(complex_sf))[:200]
        assert all(member.num_blocks == complex_sf.num_blocks for member in members)

    def test_distmult_orbit_is_small(self):
        """DistMult is highly symmetric, so its orbit collapses heavily."""
        distmult = classical_structure("distmult")
        assert len(orbit_set(distmult)) < 9216


class TestCanonicalForm:
    def test_canonical_key_constant_on_orbit(self, simple):
        key = canonical_key(simple)
        members = list(orbit(simple))
        sample = members[:: max(len(members) // 50, 1)]
        assert all(canonical_key(member) == key for member in sample)

    def test_canonical_form_is_idempotent(self, complex_sf):
        canonical = canonical_form(complex_sf)
        assert canonical_key(canonical) == canonical_key(complex_sf)
        assert canonical_form(canonical).key() == canonical.key()

    def test_canonical_matrix_is_member_of_orbit(self, simple):
        canonical = BlockStructure.from_substitute_matrix(canonical_matrix(simple))
        assert canonical.key() in orbit_set(simple)

    def test_equivalent_structures_detected(self, simple):
        transformed = sign_flip(
            relation_permutation(entity_permutation(simple, (2, 0, 3, 1)), (1, 3, 0, 2)),
            (-1, 1, -1, 1),
        )
        assert are_equivalent(simple, transformed)

    def test_inequivalent_structures_detected(self):
        assert not are_equivalent(classical_structure("distmult"), classical_structure("simple"))
        assert not are_equivalent(classical_structure("complex"), classical_structure("analogy"))

    def test_distinct_representatives_collapses_orbit(self, simple):
        members = list(orbit(simple))[:100] + [classical_structure("distmult")]
        representatives = distinct_representatives(members)
        assert len(representatives) == 2

    def test_distinct_representatives_preserves_order(self, simple):
        distmult = classical_structure("distmult")
        representatives = distinct_representatives([distmult, simple, distmult])
        assert representatives[0].key() == distmult.key()
        assert len(representatives) == 2


class TestInvarianceSemantics:
    """Equivalent structures really are the same model up to re-parameterization."""

    def test_entity_permutation_preserves_scores(self, rng):
        structure = classical_structure("analogy")
        perm = (2, 0, 3, 1)
        permuted = entity_permutation(structure, perm)
        dimension, chunk = 16, 4
        h, r, t = rng.normal(size=(3, dimension))

        def permute_vector(vector):
            chunks = vector.reshape(4, chunk)
            out = np.empty_like(chunks)
            for source in range(4):
                out[perm[source]] = chunks[source]
            return out.reshape(-1)

        original = structure.score(h, r, t)
        transformed = permuted.score(permute_vector(h), r, permute_vector(t))
        assert original == pytest.approx(transformed)

    def test_relation_permutation_preserves_scores(self, rng):
        structure = classical_structure("simple")
        perm = (1, 3, 0, 2)
        permuted = relation_permutation(structure, perm)
        dimension, chunk = 16, 4
        h, r, t = rng.normal(size=(3, dimension))

        chunks = r.reshape(4, chunk)
        permuted_r = np.empty_like(chunks)
        for source in range(4):
            permuted_r[perm[source]] = chunks[source]
        assert structure.score(h, r, t) == pytest.approx(permuted.score(h, permuted_r.reshape(-1), t))

    def test_sign_flip_preserves_scores(self, rng):
        structure = classical_structure("complex")
        flips = (1, -1, 1, -1)
        flipped = sign_flip(structure, flips)
        dimension, chunk = 16, 4
        h, r, t = rng.normal(size=(3, dimension))
        flipped_r = (r.reshape(4, chunk) * np.array(flips)[:, None]).reshape(-1)
        assert structure.score(h, r, t) == pytest.approx(flipped.score(h, flipped_r, t))
