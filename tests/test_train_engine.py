"""Tests for the training-engine layer (batched vs reference parity)."""

import numpy as np
import pytest

from repro.kge.engine import (
    BatchedTrainEngine,
    ReferenceTrainEngine,
    entity_chunks,
    get_train_engine,
)
from repro.kge.losses import MulticlassLoss, StreamingMulticlass, multiclass_inplace
from repro.kge.scoring import BlockScoringFunction, classical_structure
from repro.kge.scoring.bilinear import RESCAL
from repro.kge.scoring.blocks import BlockStructure
from repro.kge.scoring.neural import MLPScoringFunction
from repro.kge.scoring.translational import RotatE, TransE
from repro.kge.trainer import Trainer
from repro.utils.config import TrainingConfig


SIX_BLOCKS = BlockStructure(
    [(0, 0, 0, 1), (1, 1, 1, 1), (2, 3, 2, 1), (3, 2, 2, -1), (0, 1, 3, 1), (1, 0, 3, -1)],
    name="six-blocks",
)

SCORING_FACTORIES = {
    "simple": lambda: BlockScoringFunction(classical_structure("simple")),
    "complex": lambda: BlockScoringFunction(classical_structure("complex")),
    "six-blocks": lambda: BlockScoringFunction(SIX_BLOCKS),
    "rescal": RESCAL,
    "transe": lambda: TransE(norm=1),
    "rotate": RotatE,
    "mlp": MLPScoringFunction,
}


def _fit(graph, factory, **config_overrides):
    config = TrainingConfig(
        dimension=8, epochs=6, batch_size=64, learning_rate=0.5, seed=0, **config_overrides
    )
    return Trainer(factory(), config).fit(graph)


class TestEngineFactory:
    def test_names(self):
        assert get_train_engine(TrainingConfig(train_engine="reference")).name == "reference"
        engine = get_train_engine(TrainingConfig(train_engine="batched", score_chunk_size=32))
        assert engine.name == "batched"
        assert engine.score_chunk_size == 32
        assert get_train_engine(TrainingConfig(train_engine="sparse")).name == "sparse"

    def test_config_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            TrainingConfig(train_engine="gpu")

    def test_config_rejects_negative_chunk(self):
        with pytest.raises(ValueError):
            TrainingConfig(score_chunk_size=-1)

    def test_config_round_trip_keeps_engine_fields(self):
        config = TrainingConfig(train_engine="reference", score_chunk_size=7)
        assert TrainingConfig.from_dict(config.to_dict()) == config


class TestEntityChunks:
    def test_no_chunking(self):
        assert list(entity_chunks(10, 0)) == [(0, 10)]
        assert list(entity_chunks(10, 10)) == [(0, 10)]
        assert list(entity_chunks(10, 99)) == [(0, 10)]

    def test_uneven_tail_chunk(self):
        assert list(entity_chunks(10, 4)) == [(0, 4), (4, 8), (8, 10)]


class TestStreamingMulticlass:
    def test_matches_dense_loss(self, rng):
        scores = rng.normal(size=(6, 23))
        targets = rng.integers(0, 23, size=6)
        dense_value, dense_grad = MulticlassLoss().compute(scores, targets)

        streaming = StreamingMulticlass(targets)
        for start in range(0, 23, 5):
            stop = min(start + 5, 23)
            streaming.observe(scores[:, start:stop].copy(), start, stop)
        assert streaming.value() == pytest.approx(dense_value, abs=1e-12)
        for start in range(0, 23, 5):
            stop = min(start + 5, 23)
            grad = streaming.dscores_chunk(scores[:, start:stop].copy(), start, stop)
            np.testing.assert_allclose(grad, dense_grad[:, start:stop], atol=1e-12)

    def test_inplace_matches_dense_loss(self, rng):
        scores = rng.normal(size=(5, 17))
        targets = rng.integers(0, 17, size=5)
        dense_value, dense_grad = MulticlassLoss().compute(scores, targets)
        fused_value, fused_grad = multiclass_inplace(scores.copy(), targets)
        assert fused_value == dense_value  # identical operation order
        np.testing.assert_array_equal(fused_grad, dense_grad)


class TestEngineParity:
    """Acceptance: the batched engine reproduces the reference loop."""

    @pytest.mark.parametrize("family", sorted(SCORING_FACTORIES))
    def test_losses_and_params_match_reference(self, tiny_graph, family):
        factory = SCORING_FACTORIES[family]
        reference_params, reference_history = _fit(
            tiny_graph, factory, train_engine="reference"
        )
        batched_params, batched_history = _fit(tiny_graph, factory, train_engine="batched")
        np.testing.assert_allclose(
            batched_history.losses, reference_history.losses, rtol=0, atol=1e-10
        )
        for key in reference_params:
            np.testing.assert_allclose(
                batched_params[key], reference_params[key], rtol=0, atol=1e-10
            )

    @pytest.mark.parametrize(
        "family", ["simple", "six-blocks", "transe", "rotate", "rescal", "mlp"]
    )
    @pytest.mark.parametrize("chunk", [7, 64])
    def test_chunked_matches_reference(self, tiny_graph, family, chunk):
        factory = SCORING_FACTORIES[family]
        reference_params, reference_history = _fit(
            tiny_graph, factory, train_engine="reference"
        )
        chunked_params, chunked_history = _fit(
            tiny_graph, factory, train_engine="batched", score_chunk_size=chunk
        )
        np.testing.assert_allclose(
            chunked_history.losses, reference_history.losses, rtol=0, atol=1e-10
        )
        for key in reference_params:
            np.testing.assert_allclose(
                chunked_params[key], reference_params[key], rtol=0, atol=1e-10
            )

    def test_pairwise_loss_falls_back_to_reference_bitwise(self, tiny_graph):
        factory = SCORING_FACTORIES["simple"]
        overrides = dict(loss="logistic", negative_samples=4)
        reference_params, reference_history = _fit(
            tiny_graph, factory, train_engine="reference", **overrides
        )
        batched_params, batched_history = _fit(
            tiny_graph, factory, train_engine="batched", **overrides
        )
        assert batched_history.losses == reference_history.losses
        for key in reference_params:
            np.testing.assert_array_equal(batched_params[key], reference_params[key])


class TestChunkedMemoryBound:
    def test_score_chunks_never_exceed_configured_size(self, tiny_graph):
        """Every scored block is at most (batch, score_chunk_size)."""
        structure = classical_structure("simple")
        seen_widths = []

        class SpyScoringFunction(BlockScoringFunction):
            def score_candidates_chunk(self, params, queries, direction, start, stop, state=None):
                seen_widths.append(stop - start)
                return super().score_candidates_chunk(
                    params, queries, direction, start, stop, state=state
                )

        config = TrainingConfig(
            dimension=8,
            epochs=1,
            batch_size=64,
            learning_rate=0.5,
            seed=0,
            train_engine="batched",
            score_chunk_size=13,
        )
        Trainer(SpyScoringFunction(structure), config).fit(tiny_graph)
        assert seen_widths, "chunked scoring was never exercised"
        assert max(seen_widths) <= 13
        # Both passes (log-sum-exp + gradient) cover the whole vocabulary.
        assert sum(seen_widths) % tiny_graph.num_entities == 0

    def test_unchunked_scores_everything_at_once(self, tiny_graph):
        engine = BatchedTrainEngine(score_chunk_size=0)
        assert list(entity_chunks(tiny_graph.num_entities, engine.score_chunk_size)) == [
            (0, tiny_graph.num_entities)
        ]


class TestEngineSelectionThreading:
    def test_trainer_builds_engine_from_config(self, tiny_graph):
        config = TrainingConfig(dimension=8, train_engine="reference")
        trainer = Trainer(BlockScoringFunction(classical_structure("simple")), config)
        assert isinstance(trainer.engine, ReferenceTrainEngine)

    def test_explicit_engine_wins(self, tiny_graph):
        config = TrainingConfig(dimension=8, train_engine="reference")
        trainer = Trainer(
            BlockScoringFunction(classical_structure("simple")),
            config,
            engine=BatchedTrainEngine(score_chunk_size=5),
        )
        assert isinstance(trainer.engine, BatchedTrainEngine)
        assert trainer.engine.score_chunk_size == 5

    def test_evaluate_candidate_respects_config_engine(self, tiny_graph):
        from repro.core.execution import EvaluationContext, EvaluationTask, evaluate_candidate

        structure = classical_structure("simple")
        outcomes = {}
        for engine in ("reference", "batched"):
            config = TrainingConfig(
                dimension=8,
                epochs=3,
                batch_size=64,
                learning_rate=0.5,
                seed=0,
                train_engine=engine,
            )
            context = EvaluationContext(tiny_graph, config)
            outcomes[engine] = evaluate_candidate(context, EvaluationTask(structure, seed=3))
        assert outcomes["batched"].validation_mrr == pytest.approx(
            outcomes["reference"].validation_mrr, abs=1e-9
        )
