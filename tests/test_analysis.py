"""Tests for the analysis package: case study, transfer matrix, reporting."""

import pytest

from repro.analysis import (
    CaseStudy,
    TransferResult,
    describe_structure,
    format_series,
    format_table,
    transfer_matrix,
)
from repro.analysis.case_study import equivalent_classical_model
from repro.analysis.reporting import format_paper_comparison
from repro.core.invariance import sign_flip
from repro.core.search_space import random_structure
from repro.datasets import dataset_statistics
from repro.kge.scoring import classical_structure
from repro.utils.config import TrainingConfig


class TestCaseStudy:
    def test_equivalent_classical_model_detection(self):
        assert equivalent_classical_model(classical_structure("distmult")) == "distmult"
        disguised = sign_flip(classical_structure("simple"), (-1, 1, 1, -1))
        assert equivalent_classical_model(disguised) == "simple"

    def test_novel_structure_detected(self):
        novel = random_structure(6, rng=3, require_c2=True)
        # A 6-block random structure is essentially never a classical model
        # (Analogy is the only 6-block classical structure).
        if equivalent_classical_model(novel) is None:
            assert CaseStudy("d", novel, 0.5).is_novel()
        else:  # pragma: no cover - astronomically unlikely, but keep the test honest
            assert not CaseStudy("d", novel, 0.5).is_novel()

    def test_describe_structure_mentions_key_facts(self):
        text = describe_structure(classical_structure("complex"))
        assert "blocks: 8" in text
        assert "can be symmetric: True" in text
        assert "equivalent classical model: complex" in text

    def test_report_includes_dataset_statistics(self, tiny_graph):
        statistics = dataset_statistics(tiny_graph)
        study = CaseStudy(tiny_graph.name, classical_structure("simple"), 0.42, statistics)
        report = study.report()
        assert tiny_graph.name in report
        assert "0.420" in report

    def test_alignment_fields(self, tiny_graph):
        statistics = dataset_statistics(tiny_graph)
        study = CaseStudy(tiny_graph.name, classical_structure("distmult"), 0.3, statistics)
        alignment = study.relation_pattern_alignment()
        assert alignment["can_model_symmetric"] is True
        assert alignment["can_model_anti_symmetric"] is False
        assert "dataset_symmetric_relations" in alignment

    def test_srf_passthrough(self):
        study = CaseStudy("d", classical_structure("simple"), 0.1)
        assert len(study.srf()) == 22


class TestTransfer:
    def test_transfer_matrix_structure(self, tiny_graph, micro_graph):
        graphs = {"tiny": tiny_graph, "micro": micro_graph}
        structures = {
            "tiny": classical_structure("simple"),
            "micro": classical_structure("distmult"),
        }
        config = TrainingConfig(dimension=8, epochs=3, batch_size=64, seed=0)
        result = transfer_matrix(graphs, structures, config, split="valid")
        assert set(result.dataset_names) == {"tiny", "micro"}
        assert 0.0 <= result.mrr("tiny", "micro") <= 1.0
        rows = result.as_rows()
        assert len(rows) == 2
        assert rows[0]["searched_on"] in ("tiny", "micro")

    def test_diagonal_wins_logic(self):
        result = TransferResult(
            dataset_names=["a", "b"],
            matrix={"a": {"a": 0.9, "b": 0.2}, "b": {"a": 0.5, "b": 0.6}},
        )
        wins = result.diagonal_wins()
        assert wins == {"a": True, "b": True}

    def test_diagonal_loss_detected(self):
        result = TransferResult(
            dataset_names=["a", "b"],
            matrix={"a": {"a": 0.3, "b": 0.7}, "b": {"a": 0.5, "b": 0.6}},
        )
        assert result.diagonal_wins()["a"] is False

    def test_no_common_names_raises(self, tiny_graph):
        with pytest.raises(ValueError):
            transfer_matrix({"x": tiny_graph}, {"y": classical_structure("simple")})


class TestReporting:
    def test_format_table_alignment_and_title(self):
        rows = [{"model": "DistMult", "mrr": 0.821}, {"model": "AutoSF", "mrr": 0.853}]
        text = format_table(rows, title="Table IV")
        assert text.startswith("Table IV")
        assert "DistMult" in text and "0.853" in text
        lines = text.splitlines()
        assert len(lines) == 5  # title, header, separator, 2 rows

    def test_format_table_missing_cells(self):
        rows = [{"a": 1}, {"b": 2.5}]
        text = format_table(rows)
        assert "-" in text

    def test_format_table_explicit_columns(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_format_series_pads_short_series(self):
        text = format_series({"long": [1, 2, 3], "short": [5]}, title="curves")
        lines = text.splitlines()
        assert len(lines) == 6  # title + header + separator + 3 steps
        # The short series is padded with its last value on every later step.
        assert "5" in lines[-1]

    def test_format_series_empty(self):
        assert format_series({}, title="nothing") == "nothing"

    def test_format_paper_comparison_orders_columns(self):
        rows = [{"dataset": "wn18", "mrr": 0.91, "mrr_paper": 0.95}]
        text = format_paper_comparison(rows, metric_columns=["mrr"], title="cmp")
        header = text.splitlines()[1]
        assert header.index("dataset") < header.index("mrr") < header.index("mrr_paper")

    def test_format_table_booleans(self):
        text = format_table([{"win": True}, {"win": False}])
        assert "yes" in text and "no" in text
