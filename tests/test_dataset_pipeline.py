"""Tests for the streaming sharded dataset pipeline (repro.datasets.pipeline).

The in-memory loaders are the exact parity oracles throughout: the chunked
TSV ingester must reproduce ``load_tsv_dataset`` bit for bit, the stream
must match :func:`stream_epoch_reference`, and the shard-aware index /
sampler builders must equal their in-memory constructions.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.datasets import (
    DatasetError,
    KnowledgeGraph,
    TripleStore,
    TripleStream,
    UnknownBenchmarkError,
    available_benchmarks,
    build_filter_index,
    entities_by_relation,
    generate_streaming_store,
    ingest_tsv,
    load_benchmark,
    load_tsv_dataset,
    stream_epoch_reference,
    write_tsv_dataset,
)
from repro.datasets.pipeline import MANIFEST_FILENAME, StoreWriter
from repro.experiments import DatasetSpec, ExperimentSpec, StoreSpec
from repro.kge.negative_sampling import BernoulliNegativeSampler
from repro.kge.scoring.registry import get_scoring_function
from repro.kge.trainer import Trainer
from repro.utils.config import ConfigError, TrainingConfig


@pytest.fixture(scope="module")
def graph():
    return load_benchmark("wn18rr", scale=0.4)


@pytest.fixture(scope="module")
def store(graph, tmp_path_factory):
    # A deliberately small shard size so every split spans several shards.
    return graph.to_store(tmp_path_factory.mktemp("store") / "kg", shard_size=300)


class TestStoreRoundTrip:
    def test_graph_round_trip(self, graph, store):
        loaded = KnowledgeGraph.from_store(store.directory)
        assert loaded.num_entities == graph.num_entities
        assert loaded.num_relations == graph.num_relations
        assert loaded.name == graph.name
        for split in ("train", "valid", "test"):
            np.testing.assert_array_equal(loaded.split(split), graph.split(split))
        assert loaded.relation_names == graph.relation_names

    def test_multi_shard_layout(self, graph, store):
        assert store.num_shards("train") == -(-graph.num_train // 300)
        assert store.shard_counts("train")[:-1] == [300] * (store.num_shards("train") - 1)
        assert store.split_count("train") == graph.num_train

    def test_mmap_and_materialized_agree(self, store, graph):
        mapped = TripleStore.open(store.directory, mmap=True)
        plain = TripleStore.open(store.directory, mmap=False)
        np.testing.assert_array_equal(mapped.load_split("train"), plain.load_split("train"))
        assert isinstance(mapped.shard("train", 0), np.memmap)
        assert not isinstance(plain.shard("train", 0), np.memmap)

    def test_summary_counts(self, store, graph):
        summary = store.summary()
        assert summary["train"] == graph.num_train
        assert summary["valid"] == graph.num_valid
        assert summary["entities"] == graph.num_entities

    def test_vocab_hash_stable(self, graph, store, tmp_path):
        again = graph.to_store(tmp_path / "again", shard_size=300)
        assert store.vocab_hash == again.vocab_hash

    def test_graph_does_not_alias_writable_caller_arrays(self):
        """The frozen graph must survive the caller mutating its input."""
        triples = np.asarray([[0, 0, 1], [1, 0, 2], [2, 0, 0]], dtype=np.int64)
        graph = KnowledgeGraph(
            num_entities=3, num_relations=1,
            train=triples, valid=triples[:1].copy(), test=triples[:1].copy(),
        )
        triples[:] = 99
        assert graph.train.max() < 3

    def test_from_store_splits_are_zero_copy_read_only(self, store):
        loaded = KnowledgeGraph.from_store(store.directory)
        assert not loaded.train.flags.writeable


class TestStoreValidation:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(DatasetError, match="missing manifest.json"):
            TripleStore.open(tmp_path)

    def test_corrupt_manifest(self, tmp_path):
        (tmp_path / MANIFEST_FILENAME).write_text("{not json", encoding="utf-8")
        with pytest.raises(DatasetError, match="not valid JSON"):
            TripleStore.open(tmp_path)

    def test_future_schema_version(self, graph, tmp_path):
        store = graph.to_store(tmp_path / "kg")
        manifest = json.loads((store.directory / MANIFEST_FILENAME).read_text())
        manifest["store_schema_version"] = 99
        (store.directory / MANIFEST_FILENAME).write_text(json.dumps(manifest))
        with pytest.raises(DatasetError, match="newer than this release"):
            TripleStore.open(store.directory)

    def test_missing_shard_file(self, graph, tmp_path):
        store = graph.to_store(tmp_path / "kg", shard_size=300)
        (store.directory / store.manifest["splits"]["train"][0]["file"]).unlink()
        with pytest.raises(DatasetError, match="shard .* listed in the manifest is missing"):
            TripleStore.open(store.directory)

    def test_count_mismatch_detected_on_access(self, graph, tmp_path):
        store = graph.to_store(tmp_path / "kg", shard_size=300)
        entry = store.manifest["splits"]["train"][0]
        np.save(store.directory / entry["file"], np.zeros((entry["count"] + 5, 3), dtype=np.int64))
        reopened = TripleStore.open(store.directory)
        with pytest.raises(DatasetError, match="manifest"):
            reopened.shard("train", 0)

    def test_unknown_split(self, store):
        with pytest.raises(DatasetError, match="unknown split"):
            store.split_count("extra")

    def test_corrupt_manifest_split_entries(self, graph, tmp_path):
        store = graph.to_store(tmp_path / "kg")
        manifest = json.loads((store.directory / MANIFEST_FILENAME).read_text())
        manifest["splits"]["train"] = [{"count": 5}]  # no 'file'
        (store.directory / MANIFEST_FILENAME).write_text(json.dumps(manifest))
        with pytest.raises(DatasetError, match="'file' and 'count'"):
            TripleStore.open(store.directory)
        manifest["splits"] = ["train"]
        (store.directory / MANIFEST_FILENAME).write_text(json.dumps(manifest))
        with pytest.raises(DatasetError, match="must be an object"):
            TripleStore.open(store.directory)

    def test_overwriting_named_store_with_nameless_drops_stale_vocab(self, graph, tmp_path):
        target = tmp_path / "kg"
        graph.to_store(target)  # writes vocab.json (relation names)
        nameless = KnowledgeGraph(
            num_entities=3,
            num_relations=1,
            train=np.asarray([[0, 0, 1], [1, 0, 2]], dtype=np.int64),
            valid=np.asarray([[0, 0, 2]], dtype=np.int64),
            test=np.asarray([[2, 0, 0]], dtype=np.int64),
        )
        store = nameless.to_store(target)
        reloaded = store.to_graph()  # must not inherit the stale vocab
        assert reloaded.entity_names is None
        assert reloaded.relation_names is None
        assert reloaded.num_entities == 3

    def test_writer_rejects_bad_shapes(self, tmp_path):
        writer = StoreWriter(tmp_path / "kg")
        with pytest.raises(DatasetError, match=r"\(n, 3\)"):
            writer.append("train", np.zeros((4, 2), dtype=np.int64))
        with pytest.raises(DatasetError, match="unknown split"):
            writer.append("extra", np.zeros((4, 3), dtype=np.int64))


class TestIngestParity:
    def test_ingest_matches_in_memory_loader(self, graph, tmp_path):
        tsv = write_tsv_dataset(graph, tmp_path / "tsv")
        store = ingest_tsv(tsv, tmp_path / "store", shard_size=256)
        oracle = load_tsv_dataset(tsv)
        loaded = store.to_graph()
        assert loaded.num_entities == oracle.num_entities
        assert loaded.num_relations == oracle.num_relations
        for split in ("train", "valid", "test"):
            np.testing.assert_array_equal(loaded.split(split), oracle.split(split))
        assert loaded.entity_names == oracle.entity_names
        assert loaded.relation_names == oracle.relation_names

    def test_small_chunk_size_still_exact(self, graph, tmp_path):
        """Chunk boundaries mid-line must not corrupt the parse."""
        tsv = write_tsv_dataset(graph, tmp_path / "tsv")
        store = ingest_tsv(tsv, tmp_path / "store", shard_size=256, chunk_bytes=37)
        oracle = load_tsv_dataset(tsv)
        np.testing.assert_array_equal(store.to_graph().train, oracle.train)

    def test_missing_final_newline(self, tmp_path):
        (tmp_path / "train.txt").write_text("a\tr\tb\nb\tr\tc", encoding="utf-8")
        (tmp_path / "valid.txt").write_text("", encoding="utf-8")
        (tmp_path / "test.txt").write_text("", encoding="utf-8")
        store = ingest_tsv(tmp_path, tmp_path / "store")
        assert store.split_count("train") == 2

    def test_blank_and_whitespace_lines_skipped_like_oracle(self, tmp_path):
        """Whitespace-only lines must not become whitespace vocabulary."""
        content = "a\tr\tb\n\n \t \t \nb\tr\tc\n   \n"
        (tmp_path / "train.txt").write_text(content, encoding="utf-8")
        (tmp_path / "valid.txt").write_text("", encoding="utf-8")
        (tmp_path / "test.txt").write_text("", encoding="utf-8")
        oracle = load_tsv_dataset(tmp_path)
        for chunk_bytes in (7, 4 << 20):  # boundary-sensitive and one-chunk
            store = ingest_tsv(tmp_path, tmp_path / f"store-{chunk_bytes}",
                               chunk_bytes=chunk_bytes)
            loaded = store.to_graph()
            assert loaded.num_entities == oracle.num_entities
            assert loaded.entity_names == oracle.entity_names
            np.testing.assert_array_equal(loaded.train, oracle.train)


class TestIngestAndLoaderErrors:
    def _write(self, tmp_path, train="a\tr\tb\n", valid="", test=""):
        (tmp_path / "train.txt").write_text(train, encoding="utf-8")
        (tmp_path / "valid.txt").write_text(valid, encoding="utf-8")
        (tmp_path / "test.txt").write_text(test, encoding="utf-8")
        return tmp_path

    def test_malformed_line_names_file_and_line(self, tmp_path):
        directory = self._write(tmp_path, train="a\tr\tb\nbad line\n")
        with pytest.raises(DatasetError, match=r"train\.txt:2: expected 3 tab-separated"):
            load_tsv_dataset(directory)
        with pytest.raises(DatasetError, match=r"train\.txt:2: expected 3 tab-separated"):
            ingest_tsv(directory, tmp_path / "store")

    def test_duplicate_triple_names_file_and_line(self, tmp_path):
        directory = self._write(tmp_path, train="a\tr\tb\nb\tr\tc\na\tr\tb\n")
        with pytest.raises(DatasetError, match=r"train\.txt:3: duplicate triple"):
            load_tsv_dataset(directory)
        with pytest.raises(DatasetError, match=r"train\.txt:3: duplicate triple"):
            ingest_tsv(directory, tmp_path / "store")

    def test_duplicates_allowed_when_requested(self, tmp_path):
        directory = self._write(tmp_path, train="a\tr\tb\nb\tr\tc\na\tr\tb\n")
        store = ingest_tsv(directory, tmp_path / "store", check_duplicates=False)
        assert store.split_count("train") == 3
        # The in-memory loader offers the same opt-out, so both paths accept
        # the same inputs (and stay byte-identical on them).
        graph = load_tsv_dataset(directory, check_duplicates=False)
        assert graph.num_train == 3
        np.testing.assert_array_equal(graph.train, store.to_graph().train)

    def test_empty_training_split(self, tmp_path):
        directory = self._write(tmp_path, train="\n")
        with pytest.raises(DatasetError, match="empty"):
            load_tsv_dataset(directory)
        with pytest.raises(DatasetError, match="empty"):
            ingest_tsv(directory, tmp_path / "store")

    def test_unseen_eval_symbol_policy(self, tmp_path):
        directory = self._write(tmp_path, train="a\tr\tb\n", valid="a\tr\tz\n")
        with pytest.raises(DatasetError, match=r"valid\.txt:1: symbol 'z' not present"):
            ingest_tsv(directory, tmp_path / "store", allow_unseen_in_eval=False)
        # The in-memory loader names the file too (and stays a KeyError for
        # historical catch sites).
        with pytest.raises(DatasetError, match=r"symbol 'z' not present .*valid\.txt"):
            load_tsv_dataset(directory, allow_unseen_in_eval=False)
        with pytest.raises(KeyError):
            load_tsv_dataset(directory, allow_unseen_in_eval=False)

    def test_missing_split_file(self, tmp_path):
        (tmp_path / "train.txt").write_text("a\tr\tb\n", encoding="utf-8")
        with pytest.raises(DatasetError, match="does not exist"):
            ingest_tsv(tmp_path, tmp_path / "store")

    def test_unknown_benchmark_lists_available(self):
        with pytest.raises(UnknownBenchmarkError) as excinfo:
            load_benchmark("freebase-full")
        for name in available_benchmarks():
            assert name in str(excinfo.value)
        # Backwards compatible with both historical catch sites.
        assert isinstance(excinfo.value, KeyError)
        assert isinstance(excinfo.value, DatasetError)
        # ...but without KeyError.__str__'s repr-quoting of the message.
        assert not str(excinfo.value).startswith('"')


class TestTripleStream:
    def test_batches_match_reference(self, store):
        stream = TripleStream(store, "train", batch_size=64, seed=11)
        for epoch in (0, 1, 5):
            batches = list(stream.epoch(epoch))
            reference = stream_epoch_reference(
                store.load_split("train"), store.shard_counts("train"), 64, 11, epoch
            )
            assert len(batches) == len(reference)
            for got, expected in zip(batches, reference):
                np.testing.assert_array_equal(got, expected)

    def test_deterministic_and_epochs_differ(self, store):
        first = [b.copy() for b in TripleStream(store, "train", batch_size=64, seed=3).epoch(0)]
        second = [b.copy() for b in TripleStream(store, "train", batch_size=64, seed=3).epoch(0)]
        other = [b.copy() for b in TripleStream(store, "train", batch_size=64, seed=3).epoch(1)]
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)
        assert any(not np.array_equal(a, b) for a, b in zip(first, other))

    def test_every_triple_exactly_once(self, store, graph):
        batches = list(TripleStream(store, "train", batch_size=50, seed=0).epoch(0))
        stacked = np.concatenate(batches)
        assert stacked.shape[0] == graph.num_train
        order = np.lexsort(stacked.T[::-1])
        expected = graph.train[np.lexsort(graph.train.T[::-1])]
        np.testing.assert_array_equal(stacked[order], expected)

    def test_num_batches_and_drop_last(self, store):
        count = store.split_count("train")
        stream = TripleStream(store, "train", batch_size=64, seed=0)
        assert stream.num_batches() == -(-count // 64)
        assert len(list(stream.epoch(0))) == stream.num_batches()
        dropped = TripleStream(store, "train", batch_size=64, seed=0, drop_last=True)
        assert dropped.num_batches() == count // 64
        batches = list(dropped.epoch(0))
        assert len(batches) == dropped.num_batches()
        assert all(batch.shape[0] == 64 for batch in batches)

    def test_batch_size_larger_than_split(self, store):
        batches = list(TripleStream(store, "valid", batch_size=10**6, seed=0).epoch(0))
        assert len(batches) == 1
        assert batches[0].shape[0] == store.split_count("valid")

    def test_invalid_batch_size(self, store):
        with pytest.raises(DatasetError, match="batch_size"):
            TripleStream(store, "train", batch_size=0)

    def test_trainer_fit_accepts_stream(self, store):
        graph = store.to_graph()
        config = TrainingConfig(dimension=8, epochs=2, batch_size=128, seed=0)
        trainer = Trainer(get_scoring_function("simple"), config)
        stream = store.stream("train", batch_size=128, seed=0)
        params, history = trainer.fit(graph, stream=stream)
        assert len(history.losses) == 2
        assert np.isfinite(history.losses).all()
        assert history.losses[1] < history.losses[0]

    def test_trainer_fit_streams_without_a_graph(self, store):
        """The stream carries the vocab sizes; no materialized graph needed."""
        config = TrainingConfig(dimension=8, epochs=2, batch_size=128, seed=0)
        trainer = Trainer(get_scoring_function("simple"), config)
        params, history = trainer.fit(None, stream=store.stream("train", seed=0))
        assert params["entities"].shape[0] == store.num_entities
        assert params["relations"].shape[0] == store.num_relations
        assert np.isfinite(history.losses).all()
        with pytest.raises(ValueError, match="graph, a stream, or both"):
            Trainer(get_scoring_function("simple"), config).fit(None)


class TestShardAwareState:
    def test_filter_index_matches_in_memory(self, store, graph):
        shard_aware = build_filter_index(store)
        in_memory = graph.filter_index()
        for direction in ("tails", "heads"):
            got = getattr(shard_aware, direction)
            expected = getattr(in_memory, direction)
            np.testing.assert_array_equal(got.codes, expected.codes)
            np.testing.assert_array_equal(got.indptr, expected.indptr)
            np.testing.assert_array_equal(got.entities, expected.entities)

    def test_store_filter_index_memoized(self, store):
        assert store.filter_index() is store.filter_index()

    def test_bernoulli_pools_match_in_memory(self, store, graph):
        in_memory = BernoulliNegativeSampler(graph, 4, rng=0)
        shard_aware = BernoulliNegativeSampler.from_store(store, 4, rng=0)
        assert shard_aware.num_entities == in_memory.num_entities
        for relation in range(graph.num_relations):
            np.testing.assert_array_equal(
                shard_aware._entities_by_relation[relation],
                in_memory._entities_by_relation[relation],
            )

    def test_entities_by_relation_full_range_fallback(self, tmp_path):
        graph = KnowledgeGraph(
            num_entities=5,
            num_relations=3,
            train=np.asarray([[0, 0, 1], [1, 0, 2]], dtype=np.int64),
            valid=np.asarray([[2, 1, 3]], dtype=np.int64),
            test=np.asarray([[3, 1, 4]], dtype=np.int64),
        )
        store = graph.to_store(tmp_path / "kg")
        pools = entities_by_relation(store)
        np.testing.assert_array_equal(pools[0], [0, 1, 2])
        np.testing.assert_array_equal(pools[1], np.arange(5))  # no train triples
        np.testing.assert_array_equal(pools[2], np.arange(5))  # no triples at all

    def test_serving_known_positive_index_accepts_store(self, store, graph):
        from repro.serving import known_positive_index

        from_store = known_positive_index(store, splits=("train", "valid"))
        from_graph = known_positive_index(graph, splits=("train", "valid"))
        rows_a, cols_a = from_store.known_tail_pairs(graph.test[:, 0], graph.test[:, 1])
        rows_b, cols_b = from_graph.known_tail_pairs(graph.test[:, 0], graph.test[:, 1])
        np.testing.assert_array_equal(rows_a, rows_b)
        np.testing.assert_array_equal(cols_a, cols_b)


class TestStreamingGenerator:
    def test_counts_ranges_and_determinism(self, tmp_path):
        store = generate_streaming_store(
            tmp_path / "a",
            num_entities=500,
            num_relations=7,
            num_triples=20_000,
            shard_size=4096,
            valid_fraction=0.05,
            test_fraction=0.05,
            seed=9,
        )
        total = sum(store.split_count(split) for split in ("train", "valid", "test"))
        assert total == 20_000
        assert store.num_shards("train") > 1
        for shard in store.iter_shards("train"):
            assert shard[:, [0, 2]].max() < 500 and shard[:, [0, 2]].min() >= 0
            assert shard[:, 1].max() < 7 and shard[:, 1].min() >= 0
        again = generate_streaming_store(
            tmp_path / "b",
            num_entities=500,
            num_relations=7,
            num_triples=20_000,
            shard_size=4096,
            valid_fraction=0.05,
            test_fraction=0.05,
            seed=9,
        )
        np.testing.assert_array_equal(store.load_split("train"), again.load_split("train"))

    def test_invalid_parameters(self, tmp_path):
        with pytest.raises(DatasetError):
            generate_streaming_store(tmp_path / "x", num_entities=1)
        with pytest.raises(DatasetError):
            generate_streaming_store(tmp_path / "x", num_triples=0)
        with pytest.raises(DatasetError):
            generate_streaming_store(tmp_path / "x", valid_fraction=0.6, test_fraction=0.6)


class TestStoreSpecSection:
    def test_spec_round_trip(self, store):
        spec = ExperimentSpec(
            name="store-spec",
            dataset={"store": {"path": str(store.directory), "mmap": False}},
        )
        data = spec.to_dict()
        assert data["dataset"]["store"]["path"] == str(store.directory)
        reloaded = ExperimentSpec.from_dict(data)
        assert isinstance(reloaded.dataset.store, StoreSpec)
        assert reloaded.dataset.store.mmap is False

    def test_spec_load_materializes_store(self, store, graph):
        spec = DatasetSpec(store={"path": str(store.directory)})
        loaded = spec.load()
        np.testing.assert_array_equal(loaded.train, graph.train)

    def test_store_wins_over_benchmark(self, store):
        spec = DatasetSpec(benchmark="wn18", store={"path": str(store.directory)})
        assert spec.load().name == store.name

    def test_tolerant_unknown_store_keys_warn(self, store):
        with pytest.warns(UserWarning, match="ignoring unknown field"):
            section = StoreSpec.from_dict(
                {"path": str(store.directory), "compression": "zstd"}
            )
        assert section.path == str(store.directory)

    def test_invalid_store_section(self):
        with pytest.raises(ConfigError, match="StoreSpec.path"):
            DatasetSpec(store={"path": ""})
        with pytest.raises(ConfigError, match="shard_size"):
            DatasetSpec(store={"path": "somewhere", "shard_size": 0})
        with pytest.raises(ConfigError, match="DatasetSpec.store"):
            DatasetSpec(store=42)

    def test_missing_store_raises_dataset_error(self, tmp_path):
        spec = DatasetSpec(store={"path": str(tmp_path / "nope")})
        with pytest.raises(DatasetError, match="not a triple store"):
            spec.load()


class TestPipelineCli:
    def test_ingest_then_train_store(self, graph, tmp_path, capsys):
        from repro.cli import main

        tsv = write_tsv_dataset(graph.subsample(0.3), tmp_path / "tsv")
        assert main(["ingest", str(tsv), str(tmp_path / "store"), "--shard-size", "256"]) == 0
        output = capsys.readouterr().out
        assert "Sharded triple store" in output
        assert (
            main(
                [
                    "train",
                    "--store",
                    str(tmp_path / "store"),
                    "--dimension",
                    "8",
                    "--epochs",
                    "2",
                    "--model",
                    "simple",
                ]
            )
            == 0
        )
        assert "mrr" in capsys.readouterr().out

    def test_ingest_error_is_a_clean_exit(self, tmp_path, capsys):
        from repro.cli import main

        (tmp_path / "train.txt").write_text("oops\n", encoding="utf-8")
        (tmp_path / "valid.txt").write_text("", encoding="utf-8")
        (tmp_path / "test.txt").write_text("", encoding="utf-8")
        with pytest.raises(SystemExit, match=r"train\.txt:1"):
            main(["ingest", str(tmp_path), str(tmp_path / "store")])

    def test_run_with_store_override(self, store, tmp_path, capsys):
        from repro.cli import main

        spec = ExperimentSpec(
            name="cli-store",
            training={"dimension": 8, "epochs": 2, "batch_size": 128},
            search={"strategy": "random", "budget": 2, "num_blocks": 4},
        )
        spec.save(tmp_path / "spec.json")
        code = main(
            [
                "run",
                str(tmp_path / "spec.json"),
                "--run-dir",
                str(tmp_path / "run"),
                "--store",
                str(store.directory),
            ]
        )
        assert code == 0
        assert store.name in capsys.readouterr().out
