"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

pytestmark = pytest.mark.property  # tier 2: run with --runslow
from hypothesis import strategies as st

from repro.core.constraints import satisfies_c2
from repro.core.invariance import (
    are_equivalent,
    canonical_form,
    canonical_key,
    entity_permutation,
    relation_permutation,
    sign_flip,
)
from repro.core.srf import srf_features
from repro.kge.losses import HingeLoss, LogisticLoss, MulticlassLoss
from repro.kge.scoring import BlockScoringFunction, BlockStructure
from repro.kge.scoring.base import TAIL
from repro.kge.scoring.blocks import NUM_CHUNKS

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
block_strategy = st.tuples(
    st.integers(0, 3), st.integers(0, 3), st.integers(0, 3), st.sampled_from([-1, 1])
)


@st.composite
def structures(draw, min_blocks=1, max_blocks=8):
    """Random valid block structures (distinct cells, 1-8 blocks)."""
    num_blocks = draw(st.integers(min_blocks, max_blocks))
    cells = draw(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3)),
            min_size=num_blocks,
            max_size=num_blocks,
            unique=True,
        )
    )
    blocks = []
    for row, col in cells:
        component = draw(st.integers(0, 3))
        sign = draw(st.sampled_from([-1, 1]))
        blocks.append((row, col, component, sign))
    return BlockStructure(blocks)


permutation_strategy = st.permutations(list(range(NUM_CHUNKS)))
flips_strategy = st.tuples(*([st.sampled_from([-1, 1])] * NUM_CHUNKS))

_settings = settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])


# ----------------------------------------------------------------------
# Invariance properties
# ----------------------------------------------------------------------
class TestInvarianceProperties:
    @_settings
    @given(structures(), permutation_strategy, permutation_strategy, flips_strategy)
    def test_canonical_key_invariant_under_group(self, structure, entity_perm, relation_perm, flips):
        transformed = sign_flip(
            relation_permutation(entity_permutation(structure, tuple(entity_perm)), tuple(relation_perm)),
            flips,
        )
        assert canonical_key(transformed) == canonical_key(structure)

    @_settings
    @given(structures())
    def test_canonical_form_is_fixed_point(self, structure):
        canonical = canonical_form(structure)
        assert canonical_form(canonical).key() == canonical.key()
        assert are_equivalent(structure, canonical)

    @_settings
    @given(structures())
    def test_canonical_form_preserves_block_count(self, structure):
        assert canonical_form(structure).num_blocks == structure.num_blocks

    @_settings
    @given(structures(), permutation_strategy, flips_strategy)
    def test_srf_invariant_on_orbit(self, structure, entity_perm, flips):
        """Proposition 2(i): SRFs do not change under the invariance group."""
        transformed = sign_flip(entity_permutation(structure, tuple(entity_perm)), flips)
        np.testing.assert_array_equal(srf_features(transformed), srf_features(structure))

    @_settings
    @given(structures(), permutation_strategy, permutation_strategy, flips_strategy)
    def test_c2_invariant_under_group(self, structure, entity_perm, relation_perm, flips):
        """Constraint C2 is a property of the equivalence class, not the member."""
        transformed = sign_flip(
            relation_permutation(entity_permutation(structure, tuple(entity_perm)), tuple(relation_perm)),
            flips,
        )
        assert satisfies_c2(transformed) == satisfies_c2(structure)


# ----------------------------------------------------------------------
# Scoring properties
# ----------------------------------------------------------------------
class TestScoringProperties:
    @_settings
    @given(structures(), st.integers(0, 2**31 - 1))
    def test_block_score_is_linear_in_relation(self, structure, seed):
        """f(h, r, t) is linear in r: f(h, a*r1 + b*r2, t) = a*f(h,r1,t) + b*f(h,r2,t)."""
        rng = np.random.default_rng(seed)
        dimension = 8
        h, r1, r2, t = rng.normal(size=(4, dimension))
        a, b = rng.normal(size=2)
        left = structure.score(h, a * r1 + b * r2, t)
        right = a * structure.score(h, r1, t) + b * structure.score(h, r2, t)
        assert left == pytest.approx(right, rel=1e-8, abs=1e-8)

    @_settings
    @given(structures(), st.integers(0, 2**31 - 1))
    def test_batch_scorer_matches_reference(self, structure, seed):
        """The vectorized scorer agrees with the per-triple reference formula."""
        model = BlockScoringFunction(structure)
        params = model.init_params(6, 2, 8, rng=seed, scale=1.0)
        triples = np.array([[0, 0, 1], [2, 1, 3], [4, 0, 5]])
        scores = model.score_triples(params, triples)
        for row, (h, r, t) in enumerate(triples):
            expected = structure.score(
                params["entities"][h], params["relations"][r], params["entities"][t]
            )
            assert scores[row] == pytest.approx(expected, rel=1e-9, abs=1e-9)

    @_settings
    @given(structures(min_blocks=2, max_blocks=6), st.integers(0, 2**31 - 1))
    def test_candidate_scores_consistent_with_triples(self, structure, seed):
        model = BlockScoringFunction(structure)
        params = model.init_params(5, 2, 8, rng=seed, scale=1.0)
        queries = np.array([[0, 0], [3, 1]])
        all_scores = model.score_candidates(params, queries, direction=TAIL)
        for row, (h, r) in enumerate(queries):
            for tail in range(5):
                direct = model.score_triples(params, np.array([[h, r, tail]]))[0]
                assert all_scores[row, tail] == pytest.approx(direct, rel=1e-9, abs=1e-9)


# ----------------------------------------------------------------------
# Loss properties
# ----------------------------------------------------------------------
scores_strategy = st.integers(0, 2**31 - 1)


class TestLossProperties:
    @_settings
    @given(scores_strategy, st.integers(2, 8), st.integers(1, 5))
    def test_multiclass_loss_nonnegative_and_gradient_sums_to_zero(self, seed, num_candidates, batch):
        rng = np.random.default_rng(seed)
        scores = rng.normal(size=(batch, num_candidates)) * 3
        targets = rng.integers(0, num_candidates, size=batch)
        value, grad = MulticlassLoss().compute(scores, targets)
        assert value >= 0.0
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-10)

    @_settings
    @given(scores_strategy, st.integers(2, 8), st.integers(1, 5))
    def test_multiclass_invariant_to_constant_shift(self, seed, num_candidates, batch):
        rng = np.random.default_rng(seed)
        scores = rng.normal(size=(batch, num_candidates))
        targets = rng.integers(0, num_candidates, size=batch)
        value, _ = MulticlassLoss().compute(scores, targets)
        shifted, _ = MulticlassLoss().compute(scores + 7.3, targets)
        assert value == pytest.approx(shifted, rel=1e-9)

    @_settings
    @given(scores_strategy, st.integers(3, 8), st.integers(1, 4), st.integers(1, 3))
    def test_pairwise_losses_nonnegative(self, seed, num_candidates, batch, num_negatives):
        rng = np.random.default_rng(seed)
        scores = rng.normal(size=(batch, num_candidates)) * 2
        targets = rng.integers(0, num_candidates, size=batch)
        negatives = rng.integers(0, num_candidates, size=(batch, num_negatives))
        for loss in (LogisticLoss(), HingeLoss(margin=1.0)):
            value, grad = loss.compute(scores, targets, negatives=negatives)
            assert value >= 0.0
            assert grad.shape == scores.shape

    @_settings
    @given(scores_strategy, st.integers(2, 6), st.integers(1, 4))
    def test_increasing_target_score_decreases_multiclass_loss(self, seed, num_candidates, batch):
        rng = np.random.default_rng(seed)
        scores = rng.normal(size=(batch, num_candidates))
        targets = rng.integers(0, num_candidates, size=batch)
        value, _ = MulticlassLoss().compute(scores, targets)
        boosted = scores.copy()
        boosted[np.arange(batch), targets] += 1.0
        improved, _ = MulticlassLoss().compute(boosted, targets)
        assert improved < value


# ----------------------------------------------------------------------
# Structure container properties
# ----------------------------------------------------------------------
class TestStructureProperties:
    @_settings
    @given(structures())
    def test_substitute_matrix_round_trip(self, structure):
        rebuilt = BlockStructure.from_substitute_matrix(structure.substitute_matrix())
        assert rebuilt.key() == structure.key()

    @_settings
    @given(structures())
    def test_transpose_is_involution(self, structure):
        assert structure.transpose().transpose().key() == structure.key()

    @_settings
    @given(structures(), st.integers(0, 2**31 - 1))
    def test_transpose_swaps_head_and_tail(self, structure, seed):
        """h^T g(r) t == t^T g(r)^T h for every structure and embedding."""
        rng = np.random.default_rng(seed)
        h, r, t = rng.normal(size=(3, 8))
        assert structure.score(h, r, t) == pytest.approx(
            structure.transpose().score(t, r, h), rel=1e-9, abs=1e-9
        )
