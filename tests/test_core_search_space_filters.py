"""Tests for search-space generation and the candidate filter."""

import numpy as np
import pytest

from repro.core.constraints import satisfies_c2
from repro.core.filters import CandidateFilter
from repro.core.invariance import are_equivalent, canonical_key, sign_flip
from repro.core.search_space import (
    NUM_CELLS,
    enumerate_f4_structures,
    extend_structure,
    iterate_random_structures,
    random_block,
    random_structure,
    search_space_size,
    total_search_space_size,
)
from repro.kge.scoring import classical_structure


@pytest.fixture(scope="module")
def f4_seeds():
    return enumerate_f4_structures(deduplicate=True)


class TestF4Enumeration:
    def test_exactly_five_distinct_seeds(self, f4_seeds):
        """The paper reports exactly 5 good, unique candidates at b = 4."""
        assert len(f4_seeds) == 5

    def test_all_seeds_satisfy_c2(self, f4_seeds):
        assert all(satisfies_c2(seed) for seed in f4_seeds)

    def test_seeds_pairwise_inequivalent(self, f4_seeds):
        keys = {canonical_key(seed) for seed in f4_seeds}
        assert len(keys) == len(f4_seeds)

    def test_distmult_and_simple_among_seeds(self, f4_seeds):
        """DistMult and SimplE/CP are 4-block models, so they must be covered."""
        assert any(are_equivalent(seed, classical_structure("distmult")) for seed in f4_seeds)
        assert any(are_equivalent(seed, classical_structure("simple")) for seed in f4_seeds)

    def test_without_dedup_much_larger(self):
        raw = enumerate_f4_structures(deduplicate=False)
        assert len(raw) > 1000


class TestRandomGeneration:
    def test_random_block_respects_exclusions(self):
        exclusions = [(i, j) for i in range(4) for j in range(4)][:-1]
        block = random_block(rng=0, exclude_cells=exclusions)
        assert (block[0], block[1]) == (3, 3)

    def test_random_block_all_cells_taken(self):
        exclusions = [(i, j) for i in range(4) for j in range(4)]
        with pytest.raises(ValueError):
            random_block(rng=0, exclude_cells=exclusions)

    def test_random_structure_block_count_and_c2(self):
        structure = random_structure(6, rng=0, require_c2=True)
        assert structure is not None
        assert structure.num_blocks == 6
        assert satisfies_c2(structure)

    def test_random_structure_without_c2(self):
        structure = random_structure(2, rng=0, require_c2=False)
        assert structure is not None
        assert structure.num_blocks == 2

    def test_random_structure_invalid_count(self):
        with pytest.raises(ValueError):
            random_structure(0)
        with pytest.raises(ValueError):
            random_structure(NUM_CELLS + 1)

    def test_iterate_random_structures_count(self):
        structures = list(iterate_random_structures(6, 5, rng=1))
        assert len(structures) == 5

    def test_extend_structure_adds_two_blocks(self, f4_seeds):
        parent = f4_seeds[0]
        child = extend_structure(parent, num_new_blocks=2, rng=0)
        assert child is not None
        assert child.num_blocks == parent.num_blocks + 2
        assert set(parent.blocks).issubset(set(child.blocks))

    def test_extend_structure_full_matrix_returns_none(self):
        full = random_structure(16, rng=0, require_c2=False)
        assert extend_structure(full, num_new_blocks=2, rng=0) is None

    def test_extension_deterministic_given_seed(self, f4_seeds):
        a = extend_structure(f4_seeds[1], rng=7)
        b = extend_structure(f4_seeds[1], rng=7)
        assert a.key() == b.key()


class TestSpaceSizes:
    def test_f6_size_matches_paper_order_of_magnitude(self):
        # The paper quotes roughly 2 * 10^9 possible f6 structures.
        assert search_space_size(6) == pytest.approx(2.05e9, rel=0.05)

    def test_total_space_is_9_to_16(self):
        assert total_search_space_size() == 9**16

    def test_invalid_block_count(self):
        with pytest.raises(ValueError):
            search_space_size(17)


class TestCandidateFilter:
    def test_accepts_valid_candidate(self):
        candidate_filter = CandidateFilter()
        assert candidate_filter.accept(classical_structure("complex"))
        assert candidate_filter.statistics.accepted == 1

    def test_rejects_c2_violation(self):
        candidate_filter = CandidateFilter()
        bad = random_structure(4, rng=0, require_c2=False)
        # Find a structure violating C2 (the diagonal-with-one-component one).
        from repro.kge.scoring import BlockStructure
        bad = BlockStructure([(i, i, 0, 1) for i in range(4)])
        assert not candidate_filter.accept(bad)
        assert candidate_filter.statistics.rejected_constraint == 1

    def test_rejects_equivalent_duplicate(self):
        candidate_filter = CandidateFilter()
        structure = classical_structure("simple")
        assert candidate_filter.accept(structure)
        flipped = sign_flip(structure, (-1, 1, 1, 1))
        assert not candidate_filter.accept(flipped)
        assert candidate_filter.statistics.rejected_duplicate == 1

    def test_history_recording_blocks_retraining(self):
        candidate_filter = CandidateFilter()
        structure = classical_structure("analogy")
        candidate_filter.record_history(structure)
        assert candidate_filter.has_seen(structure)
        assert not candidate_filter.accept(structure)

    def test_disabled_constraints_accepts_degenerate(self):
        from repro.kge.scoring import BlockStructure
        candidate_filter = CandidateFilter(enforce_constraints=False)
        degenerate = BlockStructure([(i, i, 0, 1) for i in range(4)])
        assert candidate_filter.accept(degenerate)

    def test_disabled_dedup_accepts_equivalents(self):
        candidate_filter = CandidateFilter(deduplicate=False)
        structure = classical_structure("simple")
        assert candidate_filter.accept(structure)
        assert candidate_filter.accept(sign_flip(structure, (-1, 1, 1, 1)))

    def test_explain_does_not_mutate_state(self):
        candidate_filter = CandidateFilter()
        structure = classical_structure("complex")
        assert candidate_filter.explain(structure) is None
        assert candidate_filter.statistics.total_seen == 0
        candidate_filter.accept(structure)
        assert candidate_filter.explain(structure) == "equivalent structure already seen"

    def test_statistics_dict(self):
        candidate_filter = CandidateFilter()
        candidate_filter.accept(classical_structure("complex"))
        stats = candidate_filter.statistics.as_dict()
        assert stats["accepted"] == 1
        assert stats["total_seen"] == 1
