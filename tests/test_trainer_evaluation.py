"""Tests for the training loop and the evaluation protocols."""

import numpy as np
import pytest

from repro.kge.evaluation import (
    _best_threshold,
    _filtered_rank,
    compute_ranks,
    evaluate_link_prediction,
    evaluate_triplet_classification,
    generate_classification_negatives,
)
from repro.kge.scoring import DistMult, SimplE
from repro.kge.trainer import Trainer, TrainingHistory
from repro.utils.config import TrainingConfig


class TestTrainingHistory:
    def test_record_and_final_loss(self):
        history = TrainingHistory()
        history.record(1, 2.0, 0.1)
        history.record(2, 1.0, 0.2, validation_mrr=0.4)
        assert history.final_loss == 1.0
        assert history.best_validation_mrr == 0.4
        assert history.validation_mrr == [None, 0.4]

    def test_empty_history(self):
        history = TrainingHistory()
        assert history.final_loss is None
        assert history.best_validation_mrr is None

    def test_as_dict_round_trip(self):
        history = TrainingHistory()
        history.record(1, 3.0, 0.5, 0.2)
        data = history.as_dict()
        assert data["epochs"] == [1]
        assert data["validation_mrr"] == [0.2]


class TestTrainer:
    def test_loss_decreases(self, tiny_graph, fast_training_config):
        config = fast_training_config.replace(epochs=12)
        trainer = Trainer(SimplE(), config)
        _params, history = trainer.fit(tiny_graph)
        assert history.losses[-1] < history.losses[0]

    def test_parameters_change(self, tiny_graph, fast_training_config):
        trainer = Trainer(DistMult(), fast_training_config)
        params = trainer.initialize(tiny_graph)
        before = params["entities"].copy()
        trainer.fit(tiny_graph, params=params)
        assert not np.allclose(before, params["entities"])

    def test_history_length_matches_epochs(self, tiny_graph, fast_training_config):
        trainer = Trainer(DistMult(), fast_training_config)
        _params, history = trainer.fit(tiny_graph)
        assert len(history.losses) == fast_training_config.epochs

    def test_reproducible_given_seed(self, tiny_graph, fast_training_config):
        first, _ = Trainer(DistMult(), fast_training_config).fit(tiny_graph)
        second, _ = Trainer(DistMult(), fast_training_config).fit(tiny_graph)
        np.testing.assert_allclose(first["entities"], second["entities"])

    def test_different_seed_differs(self, tiny_graph, fast_training_config):
        first, _ = Trainer(DistMult(), fast_training_config).fit(tiny_graph)
        second, _ = Trainer(DistMult(), fast_training_config.replace(seed=9)).fit(tiny_graph)
        assert not np.allclose(first["entities"], second["entities"])

    def test_validation_callback_invoked(self, tiny_graph, fast_training_config):
        calls = []

        def callback(params):
            calls.append(1)
            return float(len(calls))

        config = fast_training_config.replace(eval_every=2, epochs=6)
        Trainer(DistMult(), config).fit(tiny_graph, validation_callback=callback)
        assert len(calls) == 3

    def test_early_stopping(self, tiny_graph, fast_training_config):
        config = fast_training_config.replace(
            epochs=20, eval_every=1, early_stopping_patience=2
        )

        def callback(_params):
            return 0.1  # never improves after the first evaluation

        _params, history = Trainer(DistMult(), config).fit(tiny_graph, validation_callback=callback)
        assert len(history.losses) < 20

    def test_returns_best_checkpoint_not_last_epoch(self, tiny_graph, fast_training_config):
        """Regression: early stopping used to return the *last* epoch's params.

        The scripted validation scores make the first evaluation the best and
        every later epoch deliberately worse; the returned parameters must be
        the snapshot taken at that first evaluation.
        """
        scores = iter([0.9, 0.5, 0.3, 0.2, 0.1])
        snapshots = []

        def callback(params):
            snapshots.append({key: value.copy() for key, value in params.items()})
            return next(scores)

        config = fast_training_config.replace(epochs=5, eval_every=1)
        params, history = Trainer(DistMult(), config).fit(tiny_graph, validation_callback=callback)
        assert history.best_validation_mrr == 0.9
        # Training continued (parameters kept changing after the best epoch) ...
        assert not np.allclose(snapshots[0]["entities"], snapshots[-1]["entities"])
        # ... but the returned checkpoint is the best-validation snapshot.
        for key, value in snapshots[0].items():
            np.testing.assert_array_equal(params[key], value)

    def test_returned_params_score_best_validation_mrr(self, tiny_graph, fast_training_config):
        """The returned checkpoint re-scores exactly history.best_validation_mrr."""

        def callback(params):
            return evaluate_link_prediction(
                DistMult(), params, tiny_graph, split="valid"
            ).mrr

        config = fast_training_config.replace(epochs=12, eval_every=1)
        params, history = Trainer(DistMult(), config).fit(tiny_graph, validation_callback=callback)
        assert callback(params) == history.best_validation_mrr

    def test_patience_counts_evaluations_not_epochs(self, tiny_graph, fast_training_config):
        """With eval_every=2 and patience=2, training survives 4 non-best epochs."""
        calls = []

        def callback(_params):
            calls.append(1)
            return -float(len(calls))  # every evaluation is worse than the first

        config = fast_training_config.replace(
            epochs=20, eval_every=2, early_stopping_patience=2
        )
        _params, history = Trainer(DistMult(), config).fit(tiny_graph, validation_callback=callback)
        # Evaluations at epochs 2 (best), 4 and 6 (two strikes) -> stop at 6.
        assert len(history.losses) == 6
        assert len(calls) == 3

    def test_last_epoch_best_keeps_final_params(self, tiny_graph, fast_training_config):
        """When validation keeps improving, the restore is a no-op."""
        scores = iter([0.1, 0.2, 0.3])
        snapshots = []

        def callback(params):
            snapshots.append({key: value.copy() for key, value in params.items()})
            return next(scores)

        config = fast_training_config.replace(epochs=3, eval_every=1)
        params, _history = Trainer(DistMult(), config).fit(tiny_graph, validation_callback=callback)
        for key, value in snapshots[-1].items():
            np.testing.assert_array_equal(params[key], value)

    def test_restore_preserves_caller_array_identity(self, tiny_graph, fast_training_config):
        """The restore happens in place: caller-held references stay valid."""
        trainer = Trainer(DistMult(), fast_training_config.replace(epochs=4, eval_every=1))
        params = trainer.initialize(tiny_graph)
        entities = params["entities"]
        scores = iter([0.9, 0.1, 0.1, 0.1])
        returned, _ = trainer.fit(
            tiny_graph, params=params, validation_callback=lambda _p: next(scores)
        )
        assert returned["entities"] is entities

    def test_pairwise_loss_training_runs(self, tiny_graph, fast_training_config):
        config = fast_training_config.replace(loss="logistic", negative_samples=4, epochs=3)
        _params, history = Trainer(DistMult(), config).fit(tiny_graph)
        assert len(history.losses) == 3
        assert np.isfinite(history.losses).all()

    def test_empty_training_split_raises(self, tiny_graph, fast_training_config):
        empty = tiny_graph.with_splits(
            np.zeros((0, 3), dtype=np.int64), tiny_graph.valid, tiny_graph.test
        )
        with pytest.raises(ValueError):
            Trainer(DistMult(), fast_training_config).fit(empty)


class TestFilteredRank:
    def test_best_score_has_rank_one(self):
        scores = np.array([0.1, 0.9, 0.5])
        assert _filtered_rank(scores, target=1, known=[]) == 1.0

    def test_known_entities_filtered_out(self):
        scores = np.array([0.9, 0.8, 0.1])
        # Entity 0 beats the target but is a known true answer -> filtered.
        assert _filtered_rank(scores, target=1, known=[0]) == 1.0

    def test_target_never_filtered(self):
        scores = np.array([0.9, 0.8, 0.1])
        assert _filtered_rank(scores, target=1, known=[0, 1]) == 1.0

    def test_tie_gets_mean_rank(self):
        scores = np.array([0.5, 0.5, 0.1])
        assert _filtered_rank(scores, target=0, known=[]) == 1.5

    def test_worst_rank(self):
        scores = np.array([0.9, 0.8, 0.1])
        assert _filtered_rank(scores, target=2, known=[]) == 3.0


class TestLinkPredictionEvaluation:
    def test_metrics_in_valid_ranges(self, tiny_graph, fast_training_config):
        trainer = Trainer(SimplE(), fast_training_config)
        params, _ = trainer.fit(tiny_graph)
        result = evaluate_link_prediction(SimplE(), params, tiny_graph, split="valid")
        assert 0.0 <= result.mrr <= 1.0
        assert result.mean_rank >= 1.0
        assert 0.0 <= result.hits_at(1) <= result.hits_at(3) <= result.hits_at(10) <= 1.0
        assert result.num_queries == 2 * tiny_graph.num_valid

    def test_random_embeddings_are_poor(self, tiny_graph):
        model = SimplE()
        params = model.init_params(tiny_graph.num_entities, tiny_graph.num_relations, 8, rng=0)
        result = evaluate_link_prediction(model, params, tiny_graph, split="valid")
        # A random model should be close to chance (MRR well below 0.5).
        assert result.mrr < 0.5

    def test_trained_beats_random(self, tiny_graph, fast_training_config):
        model = SimplE()
        random_params = model.init_params(
            tiny_graph.num_entities, tiny_graph.num_relations, 8, rng=0
        )
        random_result = evaluate_link_prediction(model, random_params, tiny_graph, split="valid")
        trained_params, _ = Trainer(model, fast_training_config.replace(epochs=25)).fit(tiny_graph)
        trained_result = evaluate_link_prediction(model, trained_params, tiny_graph, split="valid")
        assert trained_result.mrr > random_result.mrr

    def test_filtered_at_least_as_good_as_raw(self, tiny_graph, fast_training_config):
        params, _ = Trainer(SimplE(), fast_training_config).fit(tiny_graph)
        filtered = compute_ranks(SimplE(), params, tiny_graph, split="valid", filtered=True)
        raw = compute_ranks(SimplE(), params, tiny_graph, split="valid", filtered=False)
        assert np.all(filtered <= raw + 1e-9)

    def test_empty_split(self, tiny_graph, fast_training_config):
        graph = tiny_graph.with_splits(tiny_graph.train, np.zeros((0, 3), dtype=np.int64), tiny_graph.test)
        model = SimplE()
        params = model.init_params(graph.num_entities, graph.num_relations, 8, rng=0)
        result = evaluate_link_prediction(model, params, graph, split="valid")
        assert result.mrr == 0.0
        assert result.num_queries == 0

    def test_hits_missing_k_raises(self, tiny_graph):
        model = SimplE()
        params = model.init_params(tiny_graph.num_entities, tiny_graph.num_relations, 8, rng=0)
        result = evaluate_link_prediction(model, params, tiny_graph, split="valid", hits_at=(1,))
        with pytest.raises(KeyError):
            result.hits_at(10)

    def test_as_dict(self, tiny_graph):
        model = SimplE()
        params = model.init_params(tiny_graph.num_entities, tiny_graph.num_relations, 8, rng=0)
        data = evaluate_link_prediction(model, params, tiny_graph, split="valid").as_dict()
        assert "mrr" in data and "hits@10" in data


class TestTripletClassification:
    def test_negatives_are_not_known_positives(self, tiny_graph):
        negatives = generate_classification_negatives(tiny_graph, "valid", rng=0)
        known = tiny_graph.triple_set()
        overlap = sum(1 for row in negatives if (int(row[0]), int(row[1]), int(row[2])) in known)
        assert overlap / max(len(negatives), 1) < 0.2

    def test_best_threshold_separates_perfectly(self):
        scores = np.array([1.0, 2.0, 10.0, 11.0])
        labels = np.array([False, False, True, True])
        threshold = _best_threshold(scores, labels)
        assert 2.0 < threshold < 10.0

    def test_best_threshold_empty(self):
        assert _best_threshold(np.zeros(0), np.zeros(0, dtype=bool)) == 0.0

    def test_accuracy_range(self, tiny_graph, fast_training_config):
        params, _ = Trainer(SimplE(), fast_training_config).fit(tiny_graph)
        accuracy = evaluate_triplet_classification(SimplE(), params, tiny_graph, rng=0)
        assert 0.0 <= accuracy <= 1.0

    def test_trained_model_beats_coin_flip(self, tiny_graph, fast_training_config):
        params, _ = Trainer(SimplE(), fast_training_config.replace(epochs=25)).fit(tiny_graph)
        accuracy = evaluate_triplet_classification(SimplE(), params, tiny_graph, rng=0)
        assert accuracy > 0.55

    def test_near_complete_graph_negatives_are_true_negatives(self):
        """Regression: the 20-attempt budget used to silently emit positives.

        On a near-complete graph random corruption almost always hits a known
        positive, exhausting the budget; the exhaustive fallback must still
        find the one true negative.
        """
        from repro.datasets import KnowledgeGraph

        # 3 entities, 1 relation; every (h, r, t) pair is known EXCEPT (2, 0, 2).
        triples = [(h, 0, t) for h in range(3) for t in range(3) if (h, t) != (2, 2)]
        graph = KnowledgeGraph(
            num_entities=3,
            num_relations=1,
            train=np.asarray(triples[:6], dtype=np.int64),
            valid=np.asarray(triples[6:7], dtype=np.int64),
            test=np.asarray(triples[7:], dtype=np.int64),
            name="near-complete",
        )
        known = graph.triple_set()
        for seed in range(20):
            negatives = generate_classification_negatives(graph, "valid", rng=seed)
            for row in negatives:
                assert (int(row[0]), int(row[1]), int(row[2])) not in known

    def test_no_true_negative_warns(self):
        """When every corruption is a known positive the function must say so."""
        from repro.datasets import KnowledgeGraph

        # Complete graph: every (h, r, t) combination over 2 entities is known.
        triples = [(h, 0, t) for h in range(2) for t in range(2)]
        graph = KnowledgeGraph(
            num_entities=2,
            num_relations=1,
            train=np.asarray(triples[:2], dtype=np.int64),
            valid=np.asarray(triples[2:3], dtype=np.int64),
            test=np.asarray(triples[3:], dtype=np.int64),
            name="complete",
        )
        with pytest.warns(RuntimeWarning, match="no true negative"):
            generate_classification_negatives(graph, "valid", rng=0)

    def test_shared_negatives_give_identical_results(self, tiny_graph, fast_training_config):
        params, _ = Trainer(SimplE(), fast_training_config).fit(tiny_graph)
        negatives = (
            generate_classification_negatives(tiny_graph, "valid", rng=1),
            generate_classification_negatives(tiny_graph, "test", rng=2),
        )
        first = evaluate_triplet_classification(SimplE(), params, tiny_graph, negatives=negatives)
        second = evaluate_triplet_classification(SimplE(), params, tiny_graph, negatives=negatives)
        assert first == second
