"""Tests for the KnowledgeGraph container."""

import numpy as np
import pytest

from repro.datasets import KnowledgeGraph


def build_graph(**overrides):
    defaults = dict(
        num_entities=5,
        num_relations=2,
        train=[(0, 0, 1), (1, 1, 2), (2, 0, 3), (3, 1, 4)],
        valid=[(0, 1, 2)],
        test=[(4, 0, 0)],
        name="toy",
    )
    defaults.update(overrides)
    return KnowledgeGraph(**defaults)


class TestConstruction:
    def test_basic_counts(self):
        graph = build_graph()
        assert graph.num_train == 4
        assert graph.num_valid == 1
        assert graph.num_test == 1

    def test_summary(self):
        summary = build_graph().summary()
        assert summary["entities"] == 5
        assert summary["train"] == 4

    def test_head_out_of_range(self):
        with pytest.raises(ValueError):
            build_graph(train=[(9, 0, 1)])

    def test_relation_out_of_range(self):
        with pytest.raises(ValueError):
            build_graph(train=[(0, 5, 1)])

    def test_negative_index(self):
        with pytest.raises(ValueError):
            build_graph(test=[(-1, 0, 1)])

    def test_zero_entities_rejected(self):
        with pytest.raises(ValueError):
            build_graph(num_entities=0, train=[], valid=[], test=[])

    def test_bad_triple_shape(self):
        with pytest.raises(ValueError):
            build_graph(train=[(0, 1)])

    def test_entity_names_length_checked(self):
        with pytest.raises(ValueError):
            build_graph(entity_names=("a", "b"))

    def test_empty_split_allowed(self):
        graph = build_graph(valid=[])
        assert graph.num_valid == 0

    def test_splits_are_int64(self):
        graph = build_graph()
        assert graph.train.dtype == np.int64


class TestAccessors:
    def test_split_lookup(self):
        graph = build_graph()
        np.testing.assert_array_equal(graph.split("valid"), graph.valid)

    def test_unknown_split(self):
        with pytest.raises(KeyError):
            build_graph().split("dev")

    def test_all_triples_concatenates(self):
        graph = build_graph()
        assert graph.all_triples().shape[0] == 6

    def test_triple_set(self):
        graph = build_graph()
        triples = graph.triple_set()
        assert (0, 0, 1) in triples
        assert (4, 0, 0) in triples
        assert len(triples) == 6

    def test_triple_set_selected_splits(self):
        graph = build_graph()
        assert len(graph.triple_set(splits=("train",))) == 4

    def test_known_tails(self):
        graph = build_graph()
        tails = graph.known_tails()
        assert tails[(0, 0)] == {1}
        assert tails[(0, 1)] == {2}

    def test_known_heads(self):
        graph = build_graph()
        heads = graph.known_heads()
        assert heads[(0, 1)] == {0}

    def test_relation_triples(self):
        graph = build_graph()
        relation0 = graph.relation_triples(0, splits=("train",))
        assert set(relation0[:, 1].tolist()) == {0}
        assert relation0.shape[0] == 2

    def test_relation_triples_empty(self):
        graph = build_graph()
        empty = graph.relation_triples(1, splits=("test",))
        assert empty.shape == (0, 3)


class TestTransforms:
    def test_with_splits(self):
        graph = build_graph()
        new = graph.with_splits(graph.train[:2], graph.valid, graph.test, name="smaller")
        assert new.num_train == 2
        assert new.name == "smaller"
        assert new.num_entities == graph.num_entities

    def test_subsample_fraction(self):
        graph = build_graph()
        sub = graph.subsample(0.5, seed=0)
        assert sub.num_train == 2
        assert sub.num_valid == graph.num_valid

    def test_subsample_invalid_fraction(self):
        with pytest.raises(ValueError):
            build_graph().subsample(0.0)
        with pytest.raises(ValueError):
            build_graph().subsample(1.5)


class TestFromTriples:
    def test_split_sizes_respected_approximately(self):
        triples = [(i % 20, i % 3, (i + 1) % 20) for i in range(200)]
        graph = KnowledgeGraph.from_triples(
            triples, num_entities=20, num_relations=3, valid_fraction=0.1, test_fraction=0.1, seed=0
        )
        assert graph.num_train + graph.num_valid + graph.num_test == 200
        assert graph.num_valid > 0
        assert graph.num_test > 0

    def test_entity_safety(self):
        triples = [(i % 30, i % 4, (i * 7 + 1) % 30) for i in range(300)]
        graph = KnowledgeGraph.from_triples(triples, seed=3)
        train_entities = set(graph.train[:, 0].tolist()) | set(graph.train[:, 2].tolist())
        train_relations = set(graph.train[:, 1].tolist())
        for split in (graph.valid, graph.test):
            for h, r, t in split:
                assert int(h) in train_entities
                assert int(t) in train_entities
                assert int(r) in train_relations

    def test_vocab_inferred(self):
        graph = KnowledgeGraph.from_triples([(0, 0, 1), (1, 1, 2), (2, 0, 0)], seed=0)
        assert graph.num_entities == 3
        assert graph.num_relations == 2

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            KnowledgeGraph.from_triples([])

    def test_bad_fractions(self):
        with pytest.raises(ValueError):
            KnowledgeGraph.from_triples([(0, 0, 1)], valid_fraction=0.6, test_fraction=0.6)

    def test_deterministic_for_seed(self):
        triples = [(i % 10, 0, (i + 1) % 10) for i in range(50)]
        a = KnowledgeGraph.from_triples(triples, seed=5)
        b = KnowledgeGraph.from_triples(triples, seed=5)
        np.testing.assert_array_equal(a.train, b.train)
        np.testing.assert_array_equal(a.test, b.test)
