"""Tests for trace spans: nesting, fork-aware files, cross-process merge."""

import json
import multiprocessing
import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    MERGED_TRACE_FILENAME,
    NULL_TRACER,
    NullTracer,
    TraceRecorder,
    configure_tracing,
    get_tracer,
    merge_trace_dir,
    record_span,
    set_tracer,
    span,
    summarize_spans,
    write_merged_trace,
)
from repro.utils.timing import TimingRecorder


def read_all_events(directory):
    return merge_trace_dir(directory)


class TestTraceRecorder:
    def test_span_writes_one_event_per_completion(self, tmp_path):
        recorder = TraceRecorder(tmp_path)
        with recorder.span("outer"):
            time.sleep(0.001)
        recorder.close()
        events = read_all_events(tmp_path)
        assert len(events) == 1
        (event,) = events
        assert event["name"] == "outer"
        assert event["parent_id"] is None
        assert event["duration"] >= 0.0005
        assert event["trace_id"] == event["span_id"]

    def test_nested_spans_carry_parent_links(self, tmp_path):
        recorder = TraceRecorder(tmp_path)
        with recorder.span("outer") as outer:
            with recorder.span("inner"):
                pass
        recorder.close()
        events = {event["name"]: event for event in read_all_events(tmp_path)}
        assert events["inner"]["parent_id"] == events["outer"]["span_id"]
        assert events["inner"]["trace_id"] == events["outer"]["trace_id"]
        # Inner completes first, so it appears in file order first, but the
        # merge orders by start: outer started earlier.
        ordered = read_all_events(tmp_path)
        assert ordered[0]["name"] == "outer"
        assert outer.span_id == events["outer"]["span_id"]

    def test_attrs_set_inside_block_are_persisted(self, tmp_path):
        recorder = TraceRecorder(tmp_path)
        with recorder.span("epoch", attrs={"epoch": 1}) as handle:
            handle.attrs["loss"] = 0.25
        recorder.close()
        (event,) = read_all_events(tmp_path)
        assert event["attrs"] == {"epoch": 1, "loss": 0.25}

    def test_record_writes_leaf_with_current_parent(self, tmp_path):
        recorder = TraceRecorder(tmp_path)
        with recorder.span("outer"):
            recorder.record("leaf", start=time.monotonic(), duration=0.5)
        recorder.close()
        events = {event["name"]: event for event in read_all_events(tmp_path)}
        assert events["leaf"]["parent_id"] == events["outer"]["span_id"]
        assert events["leaf"]["duration"] == 0.5

    def test_span_written_when_block_raises(self, tmp_path):
        recorder = TraceRecorder(tmp_path)
        with pytest.raises(RuntimeError):
            with recorder.span("failing"):
                raise RuntimeError("boom")
        recorder.close()
        assert [event["name"] for event in read_all_events(tmp_path)] == ["failing"]

    def test_merge_orders_across_processes_by_monotonic_start(self, tmp_path):
        """Two pids interleave by start, and parent links survive the merge."""
        recorder = TraceRecorder(tmp_path)

        def child() -> None:
            # Forked child inherits the recorder; it must transparently open
            # its own trace file and keep its own id namespace.
            with recorder.span("child.outer"):
                with recorder.span("child.inner"):
                    time.sleep(0.002)

        with recorder.span("parent.before"):
            time.sleep(0.001)
        context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else None
        )
        process = context.Process(target=child)
        process.start()
        process.join()
        assert process.exitcode == 0
        with recorder.span("parent.after"):
            pass
        recorder.close()

        events = read_all_events(tmp_path)
        pids = {event["pid"] for event in events}
        assert len(pids) == 2
        names = [event["name"] for event in events]
        assert names[0] == "parent.before"
        assert names[-1] == "parent.after"
        assert {"child.outer", "child.inner"} <= set(names)
        # Monotonic starts are globally ordered.
        starts = [event["start"] for event in events]
        assert starts == sorted(starts)
        # Parent links survive the merge within the child's events.
        by_name = {event["name"]: event for event in events}
        assert by_name["child.inner"]["parent_id"] == by_name["child.outer"]["span_id"]
        assert by_name["child.outer"]["pid"] == by_name["child.inner"]["pid"]
        assert by_name["parent.before"]["pid"] != by_name["child.outer"]["pid"]

    def test_write_merged_trace_is_sorted_jsonl(self, tmp_path):
        recorder = TraceRecorder(tmp_path)
        with recorder.span("a"):
            pass
        with recorder.span("b"):
            pass
        recorder.close()
        output = write_merged_trace(tmp_path)
        assert output == tmp_path / MERGED_TRACE_FILENAME
        lines = output.read_text(encoding="utf-8").strip().splitlines()
        events = [json.loads(line) for line in lines]
        assert [event["name"] for event in events] == ["a", "b"]

    def test_merge_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            merge_trace_dir(tmp_path / "missing")


class TestGlobals:
    def test_default_tracer_is_null_and_inert(self):
        previous = set_tracer(None)
        try:
            assert get_tracer() is NULL_TRACER
            with span("anything") as handle:
                handle.attrs["x"] = 1  # must accept writes
            record_span("leaf", 0.0, 1.0)
        finally:
            set_tracer(previous)

    def test_configure_tracing_installs_recorder(self, tmp_path):
        previous = set_tracer(None)
        try:
            recorder = configure_tracing(tmp_path)
            assert get_tracer() is recorder
            with span("configured"):
                pass
            recorder.close()
        finally:
            set_tracer(previous)
        assert [e["name"] for e in read_all_events(tmp_path)] == ["configured"]

    def test_null_tracer_span_is_reusable(self):
        tracer = NullTracer()
        with tracer.span("x") as a:
            pass
        with tracer.span("y") as b:
            pass
        assert a is b


class TestSummarize:
    def test_summary_counts_totals_means_pids(self):
        events = [
            {"name": "train", "duration": 1.0, "pid": 1},
            {"name": "train", "duration": 3.0, "pid": 2},
            {"name": "eval", "duration": 0.5, "pid": 1},
        ]
        summary = summarize_spans(events)
        assert summary["train"]["count"] == 2
        assert summary["train"]["total"] == pytest.approx(4.0)
        assert summary["train"]["mean"] == pytest.approx(2.0)
        assert summary["train"]["pids"] == [1, 2]
        assert summary["eval"]["pids"] == [1]

    def test_summarize_agrees_with_timing_recorder(self, tmp_path):
        """`repro trace summarize` totals == TimingRecorder totals, exactly.

        TimingRecorder.measure takes ONE monotonic reading and feeds it to
        both the sample list and the tracer, so the agreement is exact, not
        just within timer resolution.
        """
        tracer = TraceRecorder(tmp_path)
        previous = set_tracer(tracer)
        try:
            recorder = TimingRecorder(registry=MetricsRegistry())
            for _ in range(3):
                with recorder.measure("project"):
                    time.sleep(0.001)
            with recorder.measure("score"):
                time.sleep(0.002)
            tracer.close()
        finally:
            set_tracer(previous)
        summary = summarize_spans(merge_trace_dir(tmp_path))
        assert summary["project"]["count"] == recorder.count("project") == 3
        assert summary["project"]["total"] == pytest.approx(
            recorder.total("project"), abs=0.0
        )
        assert summary["score"]["total"] == pytest.approx(
            recorder.total("score"), abs=0.0
        )
