"""Tests for the pre-forked serving fleet, filter-index persistence, drain."""

import json
import signal
import socket
import threading
import time
from http.client import HTTPConnection

import numpy as np
import pytest

from repro.cli import main
from repro.kge import train_model
from repro.serving import (
    InferenceEngine,
    ServingFleet,
    export_artifact,
    known_positive_index,
    load_artifact,
    load_filter_index,
    save_filter_index,
    validate_serve_options,
    wait_until_healthy,
)
from repro.serving.fleet import FILTER_INDEX_DIRNAME, MAX_WORKERS
from repro.serving.service import create_server, process_memory_info
from repro.utils.config import ConfigError, TrainingConfig

HOST = "127.0.0.1"


def http_json(port, method, path, payload=None, host=HOST):
    """One short-lived HTTP exchange; returns (status, decoded JSON)."""
    connection = HTTPConnection(host, port, timeout=10.0)
    try:
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


class TestValidateServeOptions:
    def test_valid_options_pass(self):
        validate_serve_options(port=0, workers=1)
        validate_serve_options(port=65535, workers=MAX_WORKERS, micro_batch_window_ms=2.0)

    @pytest.mark.parametrize("port", [-1, 65536, 99999])
    def test_bad_port_names_flag_and_range(self, port):
        with pytest.raises(ConfigError, match=r"--port must be in 0\.\.65535"):
            validate_serve_options(port=port, workers=1)

    @pytest.mark.parametrize("workers", [0, -2, MAX_WORKERS + 1])
    def test_bad_workers_names_flag_and_range(self, workers):
        with pytest.raises(ConfigError, match=rf"--workers must be in 1\.\.{MAX_WORKERS}"):
            validate_serve_options(port=8080, workers=workers)

    def test_negative_window_rejected(self):
        with pytest.raises(ConfigError, match="--micro-batch-window"):
            validate_serve_options(port=8080, workers=1, micro_batch_window_ms=-1.0)

    def test_cli_serve_invalid_port_is_one_line(self, tmp_path):
        with pytest.raises(SystemExit, match=r"--port must be in 0\.\.65535"):
            main(["serve", "--artifact", str(tmp_path), "--port", "99999"])

    def test_cli_serve_invalid_workers_is_one_line(self, tmp_path):
        with pytest.raises(SystemExit, match=r"--workers must be in"):
            main(["serve", "--artifact", str(tmp_path), "--workers", "0"])


class TestFilterIndexPersistence:
    def test_round_trip_mmap_and_memory(self, tiny_graph, tmp_path):
        index = known_positive_index(tiny_graph)
        directory = save_filter_index(index, tmp_path / "fidx")
        for mmap in (False, True):
            loaded = load_filter_index(directory, mmap=mmap)
            assert loaded.num_relations == index.num_relations
            for side in ("tails", "heads"):
                for field in ("codes", "indptr", "entities"):
                    np.testing.assert_array_equal(
                        getattr(getattr(loaded, side), field),
                        getattr(getattr(index, side), field),
                    )

    def test_missing_array_file_named(self, tiny_graph, tmp_path):
        directory = save_filter_index(known_positive_index(tiny_graph), tmp_path / "fidx")
        (directory / "tails_codes.npy").unlink()
        with pytest.raises(ValueError, match="tails_codes.npy"):
            load_filter_index(directory)

    def test_filtered_answers_match_in_memory_index(self, tiny_graph, tmp_path):
        config = TrainingConfig(dimension=8, epochs=2, batch_size=64, learning_rate=0.5, seed=0)
        model = train_model(tiny_graph, "distmult", config)
        index = known_positive_index(tiny_graph)
        directory = save_filter_index(index, tmp_path / "fidx")
        queries = [("tail", h, r) for h, r in zip(range(6), range(6))]
        reference = InferenceEngine(model.scoring_function, model.params, filter_index=index)
        reloaded = InferenceEngine(
            model.scoring_function, model.params,
            filter_index=load_filter_index(directory, mmap=True),
        )
        assert reference.query_batch(queries, top_k=5, filtered=True) == \
            reloaded.query_batch(queries, top_k=5, filtered=True)


@pytest.fixture(scope="module")
def fleet_artifact(tiny_graph, tmp_path_factory):
    config = TrainingConfig(dimension=8, epochs=2, batch_size=64, learning_rate=0.5, seed=0)
    model = train_model(tiny_graph, "complex", config)
    return export_artifact(
        model, tmp_path_factory.mktemp("fleet") / "artifact", graph=tiny_graph
    )


@pytest.fixture()
def mixed_queries(tiny_graph):
    rng = np.random.default_rng(7)
    queries = []
    for _ in range(40):
        direction = "tail" if rng.random() < 0.5 else "head"
        queries.append(
            {
                "direction": direction,
                "entity": int(rng.integers(tiny_graph.num_entities)),
                "relation": int(rng.integers(tiny_graph.num_relations)),
                "top_k": 5,
            }
        )
    return queries


class TestServingFleet:
    def test_two_worker_fleet_parity_and_drain(self, fleet_artifact, mixed_queries):
        fleet = ServingFleet(
            fleet_artifact, host=HOST, port=0, workers=2, micro_batch_window_ms=1.0
        )
        port = fleet.start()
        try:
            wait_until_healthy(HOST, port)
            # Parity oracle: single-process, fully in-memory engine.
            oracle = InferenceEngine.from_artifact(load_artifact(fleet_artifact))
            expected = oracle.query_batch(
                [(q["direction"], q["entity"], q["relation"]) for q in mixed_queries],
                top_k=5,
            )
            status, payload = http_json(
                port, "POST", "/query", {"queries": mixed_queries}
            )
            assert status == 200
            assert len(payload["responses"]) == len(mixed_queries)
            for response, reference in zip(payload["responses"], expected):
                got = [(p["entity"], p["score"]) for p in response["predictions"]]
                # Bit-identical: JSON round-trips float64 exactly.
                assert got == [(e, s) for e, s in reference]
            status, stats = http_json(port, "GET", "/stats")
            assert status == 200
            assert stats["worker"]["worker_id"] in (0, 1)
            assert stats["worker"]["pid"] in fleet.worker_pids
            if process_memory_info():  # /proc available
                assert stats["worker"]["resident_bytes"] > 0
            assert stats["params_memmap"] is True
            assert "micro_batcher" in stats
        finally:
            fleet.terminate(signal.SIGTERM)
            status = fleet.wait()
            fleet.close()
        assert status == 0  # graceful exit, not a killed process

    def test_sigint_also_drains(self, fleet_artifact):
        fleet = ServingFleet(fleet_artifact, host=HOST, port=0, workers=1)
        port = fleet.start()
        try:
            wait_until_healthy(HOST, port)
        finally:
            fleet.terminate(signal.SIGINT)
            status = fleet.wait()
            fleet.close()
        assert status == 0

    def test_precomputed_filter_index_saved_beside_artifact(
        self, fleet_artifact, tiny_graph
    ):
        index = known_positive_index(tiny_graph)
        fleet = ServingFleet(fleet_artifact, port=0, workers=1, filter_index=index)
        assert (fleet_artifact / FILTER_INDEX_DIRNAME / "tails_codes.npy").exists()
        port = fleet.start()
        try:
            wait_until_healthy(HOST, port)
            query = {"direction": "tail", "entity": 0, "relation": 0, "top_k": 5, "filtered": True}
            status, payload = http_json(port, "POST", "/query", query)
            assert status == 200
            oracle = InferenceEngine.from_artifact(
                load_artifact(fleet_artifact), filter_index=index
            )
            expected = oracle.query_batch([("tail", 0, 0)], top_k=5, filtered=True)[0]
            got = [(p["entity"], p["score"]) for p in payload["predictions"]]
            assert got == [(e, s) for e, s in expected]
        finally:
            fleet.terminate()
            assert fleet.wait() == 0
            fleet.close()

    def test_broken_artifact_fails_in_parent(self, tmp_path):
        from repro.serving import ArtifactError

        with pytest.raises(ArtifactError, match="does not exist"):
            ServingFleet(tmp_path / "nowhere", port=0, workers=2)

    def test_rejects_bad_options_before_forking(self, fleet_artifact):
        with pytest.raises(ConfigError, match="--workers"):
            ServingFleet(fleet_artifact, port=0, workers=0)


class TestGracefulShutdown:
    """Drain semantics of a single QueryServer, without forking."""

    class SlowEngine:
        """query_batch stub that takes long enough to straddle a shutdown."""

        def __init__(self):
            self.started = threading.Event()

        def query_batch(self, queries, top_k=10, filtered=False):
            self.started.set()
            time.sleep(0.3)
            return [[(0, 1.0)] for _ in queries]

        def stats(self):
            return {}

    def test_inflight_request_completes_during_shutdown(self):
        engine = self.SlowEngine()
        server = create_server(engine, host=HOST, port=0)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        result = {}

        def client():
            result["response"] = http_json(
                port, "POST", "/query", {"direction": "tail", "entity": 0, "relation": 0}
            )

        caller = threading.Thread(target=client)
        caller.start()
        assert engine.started.wait(timeout=5.0)
        server.request_shutdown()  # arrives mid-request
        caller.join(timeout=5.0)
        thread.join(timeout=5.0)
        server.server_close()  # joins the handler thread: the drain barrier
        assert not thread.is_alive()
        status, payload = result["response"]
        assert status == 200
        assert payload["predictions"][0]["entity"] == 0

    def test_request_shutdown_is_idempotent(self):
        engine = self.SlowEngine()
        server = create_server(engine, host=HOST, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        server.request_shutdown()
        server.request_shutdown()
        thread.join(timeout=5.0)
        server.server_close()
        assert not thread.is_alive()

    def test_listener_closed_after_shutdown(self):
        engine = self.SlowEngine()
        server = create_server(engine, host=HOST, port=0)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        server.request_shutdown()
        thread.join(timeout=5.0)
        server.server_close()
        with pytest.raises(OSError):
            probe = socket.create_connection((HOST, port), timeout=0.5)
            probe.close()


class TestListenerAdoption:
    def test_server_adopts_prebound_socket(self, fleet_artifact):
        artifact = load_artifact(fleet_artifact, mmap=True)
        engine = InferenceEngine.from_artifact(artifact)
        listener = socket.create_server((HOST, 0))
        port = listener.getsockname()[1]
        server = create_server(engine, artifact, listen_socket=listener, worker_id=3)
        assert server.server_address[1] == port
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            status, stats = http_json(port, "GET", "/stats")
            assert status == 200
            assert stats["worker"]["worker_id"] == 3
        finally:
            server.request_shutdown()
            thread.join(timeout=5.0)
            server.server_close()
