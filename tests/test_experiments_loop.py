"""Tests for the SearchStrategy protocol, the unified SearchLoop, and the
legacy-shim parity guarantees."""

import pytest

from repro.core import AutoSFSearch, BayesSearch, RandomSearch
from repro.core.store import EvaluationStore
from repro.experiments import (
    ExperimentSpec,
    SearchLoop,
    SearchSpec,
    available_strategies,
    create_strategy,
    register_strategy,
)
from repro.experiments.strategies import _STRATEGIES
from repro.kge.scoring import classical_structure
from repro.utils.config import ConfigError, PredictorConfig, SearchConfig, TrainingConfig


@pytest.fixture(scope="module")
def loop_training_config():
    return TrainingConfig(dimension=8, epochs=4, batch_size=64, learning_rate=0.5, seed=0)


def _greedy_spec(seed=0, **search_overrides):
    search = dict(
        strategy="greedy", max_blocks=6, candidates_per_step=8, top_parents=3, train_per_step=2
    )
    search.update(search_overrides)
    return ExperimentSpec(
        seed=seed, search=SearchSpec(**search), predictor=PredictorConfig(epochs=50)
    )


class TestRegistry:
    def test_builtins_registered(self):
        assert {"greedy", "random", "bayes"} <= set(available_strategies())

    def test_unknown_strategy_raises(self):
        spec = ExperimentSpec(search=SearchSpec(strategy="simulated-annealing"))
        with pytest.raises(ConfigError, match="simulated-annealing"):
            create_strategy(spec)

    def test_plugin_strategy_runs_through_loop(self, tiny_graph, loop_training_config):
        """A one-file plug-in: register, select by spec, drive with the loop."""

        class FixedMenuStrategy:
            name = "fixed-menu"

            def __init__(self):
                self._menu = [classical_structure("distmult"), classical_structure("simple")]

            def propose(self, state):
                return [self._menu.pop(0)] if self._menu else []

            def observe(self, state, evaluations):
                return None

            def finished(self, state):
                return not self._menu

            def statistics(self):
                return {"accepted": 2}

        register_strategy("fixed-menu")(lambda spec: FixedMenuStrategy())
        try:
            spec = ExperimentSpec(search=SearchSpec(strategy="fixed-menu"))
            strategy = create_strategy(spec)
            result = SearchLoop(tiny_graph, strategy, loop_training_config, seed=0).run()
            assert result.num_evaluations == 2
            assert result.filter_statistics == {"accepted": 2}
        finally:
            _STRATEGIES.pop("fixed-menu", None)


@pytest.mark.slow  # tier 2: three full searches per strategy
class TestLegacyParity:
    """Same seeds => identical trajectories through either API (satellite)."""

    def test_greedy_parity(self, tiny_graph, loop_training_config):
        spec = _greedy_spec(seed=0)
        new = SearchLoop(
            tiny_graph, create_strategy(spec), loop_training_config, seed=spec.seed
        ).run(max_evaluations=8)
        legacy = AutoSFSearch(
            tiny_graph,
            loop_training_config,
            SearchConfig(
                max_blocks=6,
                candidates_per_step=8,
                top_parents=3,
                train_per_step=2,
                predictor=PredictorConfig(epochs=50),
                seed=0,
            ),
        ).run(max_evaluations=8)
        assert new.anytime_curve() == legacy.anytime_curve()
        assert [r.structure.key() for r in new.records] == [
            r.structure.key() for r in legacy.records
        ]
        assert [(r.stage, r.order) for r in new.records] == [
            (r.stage, r.order) for r in legacy.records
        ]

    def test_random_parity(self, tiny_graph, loop_training_config):
        spec = ExperimentSpec(seed=5, search=SearchSpec(strategy="random", num_blocks=6))
        new = SearchLoop(
            tiny_graph, create_strategy(spec), loop_training_config, seed=5
        ).run(max_evaluations=5)
        legacy = RandomSearch(tiny_graph, loop_training_config, num_blocks=6, seed=5).run(
            max_evaluations=5
        )
        assert new.anytime_curve() == legacy.anytime_curve()
        assert [r.structure.key() for r in new.records] == [
            r.structure.key() for r in legacy.records
        ]

    def test_bayes_parity(self, tiny_graph, loop_training_config):
        spec = ExperimentSpec(
            seed=5, search=SearchSpec(strategy="bayes", num_blocks=6, pool_size=8)
        )
        new = SearchLoop(
            tiny_graph, create_strategy(spec), loop_training_config, seed=5
        ).run(max_evaluations=4)
        legacy = BayesSearch(
            tiny_graph, loop_training_config, num_blocks=6, pool_size=8, seed=5
        ).run(max_evaluations=4)
        assert new.anytime_curve() == legacy.anytime_curve()
        assert [r.structure.key() for r in new.records] == [
            r.structure.key() for r in legacy.records
        ]


class TestLoopMechanics:
    def test_budget_cap_strict(self, tiny_graph, loop_training_config):
        spec = _greedy_spec(seed=0)
        result = SearchLoop(
            tiny_graph, create_strategy(spec), loop_training_config, seed=0
        ).run(max_evaluations=3)
        assert result.num_evaluations == 3

    def test_second_run_starts_fresh_records(self, tiny_graph, loop_training_config):
        spec = ExperimentSpec(seed=4, search=SearchSpec(strategy="random", num_blocks=6))
        loop = SearchLoop(tiny_graph, create_strategy(spec), loop_training_config, seed=4)
        first = loop.run(max_evaluations=2)
        second = loop.run(max_evaluations=2)
        assert first.num_evaluations == 2
        assert second.num_evaluations == 2
        assert [r.order for r in second.records] == [1, 2]

    def test_timing_phases_recorded(self, tiny_graph, loop_training_config):
        spec = _greedy_spec(seed=0)
        loop = SearchLoop(tiny_graph, create_strategy(spec), loop_training_config, seed=0)
        loop.run(max_evaluations=6)
        summary = loop.timing.summary()
        assert "train" in summary and "filter" in summary

    def test_no_evaluations_raises(self, tiny_graph, loop_training_config):
        class BarrenStrategy:
            name = "barren"

            def propose(self, state):
                return []

            def observe(self, state, evaluations):
                return None

            def finished(self, state):
                return False

            def statistics(self):
                return {}

        with pytest.raises(RuntimeError, match="barren"):
            SearchLoop(tiny_graph, BarrenStrategy(), loop_training_config, seed=0).run()


class TestRoundAtomicity:
    """Regression: a faulting backend must fail the round *before* any
    evaluation reaches the records, ``state.evaluations`` or
    ``strategy.observe`` — a partial batch used to leak misassigned
    results into strategy state."""

    class _SpyStrategy:
        name = "spy"

        def __init__(self):
            self.state = None
            self.observed = []
            self._proposed = False

        def propose(self, state):
            self.state = state
            self._proposed = True
            return [classical_structure("distmult"), classical_structure("simple")]

        def observe(self, state, evaluations):
            self.observed.append(list(evaluations))

        def finished(self, state):
            return self._proposed

    class _TruncatingBackend:
        """Returns one outcome slot too few, violating the contract."""

        name = "truncating"
        num_workers = 1

        def run(self, context, tasks, on_result=None):
            from repro.core.execution import SerialBackend

            return SerialBackend().run(context, tasks)[:-1]

    def test_contract_violation_leaves_strategy_untouched(
        self, tiny_graph, loop_training_config
    ):
        from repro.core.execution import ExecutionError

        strategy = self._SpyStrategy()
        loop = SearchLoop(
            tiny_graph,
            strategy,
            loop_training_config,
            seed=0,
            backend=self._TruncatingBackend(),
        )
        with pytest.raises(ExecutionError, match="slot per task"):
            loop.run()
        assert strategy.observed == []
        assert strategy.state.evaluations == []
        assert loop._records == []


class TestSharedStore:
    """Satellite regression: baselines route through the shared cache."""

    def test_warm_store_random_zero_retraining(self, tiny_graph, loop_training_config, tmp_path):
        spec = ExperimentSpec(seed=3, search=SearchSpec(strategy="random", num_blocks=6))
        cold = SearchLoop(
            tiny_graph,
            create_strategy(spec),
            loop_training_config,
            seed=3,
            store=EvaluationStore(tmp_path),
        )
        first = cold.run(max_evaluations=4)
        assert cold.evaluator.num_trained == 4

        warm = SearchLoop(
            tiny_graph,
            create_strategy(spec),
            loop_training_config,
            seed=3,
            store=EvaluationStore(tmp_path),
        )
        second = warm.run(max_evaluations=4)
        assert warm.evaluator.num_trained == 0
        assert second.anytime_curve() == first.anytime_curve()

    def test_warm_store_bayes_zero_retraining(self, tiny_graph, loop_training_config, tmp_path):
        spec = ExperimentSpec(
            seed=3, search=SearchSpec(strategy="bayes", num_blocks=6, pool_size=8)
        )

        def run_once():
            loop = SearchLoop(
                tiny_graph,
                create_strategy(spec),
                loop_training_config,
                seed=3,
                store=EvaluationStore(tmp_path),
            )
            return loop, loop.run(max_evaluations=3)

        cold, first = run_once()
        assert cold.evaluator.num_trained == 3
        warm, second = run_once()
        assert warm.evaluator.num_trained == 0
        assert second.anytime_curve() == first.anytime_curve()

    def test_legacy_baseline_accepts_store(self, tiny_graph, loop_training_config, tmp_path):
        """The shimmed RandomSearch can now reuse a persistent store too."""
        store = EvaluationStore(tmp_path)
        first = RandomSearch(tiny_graph, loop_training_config, num_blocks=6, seed=2, store=store)
        first.run(max_evaluations=3)
        assert first.evaluator.num_trained == 3
        second = RandomSearch(
            tiny_graph, loop_training_config, num_blocks=6, seed=2, store=EvaluationStore(tmp_path)
        )
        second.run(max_evaluations=3)
        assert second.evaluator.num_trained == 0
