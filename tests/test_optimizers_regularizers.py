"""Tests for optimizers, regularizers and negative samplers."""

import numpy as np
import pytest

from repro.datasets import GeneratorProfile, generate_knowledge_graph
from repro.kge.negative_sampling import BernoulliNegativeSampler, UniformNegativeSampler
from repro.kge.optimizers import (
    SGD,
    Adagrad,
    Adam,
    Optimizer,
    densify_sparse_grads,
    get_optimizer,
)
from repro.kge.regularizers import (
    L2Regularizer,
    N3Regularizer,
    NoRegularizer,
    get_regularizer,
)


def quadratic_params():
    return {"x": np.array([3.0, -2.0]), "y": np.array([[1.0, 4.0]])}


def quadratic_grads(params):
    # Gradient of 0.5 * sum(p^2): minimizer at zero.
    return {key: value.copy() for key, value in params.items()}


class TestOptimizerBasics:
    @pytest.mark.parametrize("factory", [lambda: SGD(0.1), lambda: Adagrad(0.5), lambda: Adam(0.2)])
    def test_converges_on_quadratic(self, factory):
        optimizer = factory()
        params = quadratic_params()
        for _step in range(200):
            optimizer.step(params, quadratic_grads(params))
        assert np.abs(params["x"]).max() < 0.05
        assert np.abs(params["y"]).max() < 0.05

    def test_sgd_single_step_value(self):
        optimizer = SGD(learning_rate=0.1)
        params = {"w": np.array([1.0])}
        optimizer.step(params, {"w": np.array([2.0])})
        assert params["w"][0] == pytest.approx(0.8)

    def test_adagrad_first_step_is_learning_rate_sized(self):
        optimizer = Adagrad(learning_rate=0.5)
        params = {"w": np.array([1.0])}
        optimizer.step(params, {"w": np.array([4.0])})
        # First Adagrad step ~ lr * grad / |grad| = lr.
        assert params["w"][0] == pytest.approx(0.5, abs=1e-6)

    def test_adagrad_steps_shrink(self):
        optimizer = Adagrad(learning_rate=0.5)
        params = {"w": np.array([10.0])}
        deltas = []
        for _ in range(3):
            before = params["w"].copy()
            optimizer.step(params, {"w": np.array([1.0])})
            deltas.append(float((before - params["w"])[0]))
        assert deltas[0] > deltas[1] > deltas[2]

    def test_decay_reduces_learning_rate(self):
        optimizer = SGD(learning_rate=1.0, decay_rate=0.5)
        optimizer.decay()
        assert optimizer.learning_rate == pytest.approx(0.5)

    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError):
            SGD(0.0)

    def test_invalid_decay(self):
        with pytest.raises(ValueError):
            SGD(0.1, decay_rate=0.0)

    def test_shape_mismatch_rejected(self):
        optimizer = SGD(0.1)
        with pytest.raises(ValueError):
            optimizer.step({"w": np.zeros(3)}, {"w": np.zeros(4)})

    def test_unknown_gradient_key_rejected(self):
        optimizer = SGD(0.1)
        with pytest.raises(KeyError):
            optimizer.step({"w": np.zeros(3)}, {"v": np.zeros(3)})

    def test_adam_reset_clears_state(self):
        optimizer = Adam(0.1)
        params = {"w": np.array([1.0])}
        optimizer.step(params, {"w": np.array([1.0])})
        optimizer.reset()
        assert optimizer._step_count == 0
        assert not optimizer._state

    def test_adam_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam(0.1, beta1=1.0)

    def test_factory(self):
        assert isinstance(get_optimizer("adagrad", 0.1), Adagrad)
        assert isinstance(get_optimizer("adam", 0.1), Adam)
        assert isinstance(get_optimizer("sgd", 0.1), SGD)
        with pytest.raises(KeyError):
            get_optimizer("lbfgs", 0.1)


def sparse_problem(seed=0, rows=12, dim=4, touched=5):
    """(params, sparse grads, dense-equivalent grads) for one step."""
    rng = np.random.default_rng(seed)
    params = {
        "entities": rng.normal(size=(rows, dim)),
        "nn1_w1": rng.normal(size=(dim, dim)),  # globally-shared: stays dense
    }
    indices = np.sort(rng.choice(rows, size=touched, replace=False))
    block = rng.normal(size=(touched, dim))
    dense_w = rng.normal(size=(dim, dim))
    sparse = {"entities": (indices, block), "nn1_w1": dense_w}
    dense = densify_sparse_grads(params, sparse)
    return params, sparse, dense


class TestSparseSteps:
    """step_sparse == step with the zero-padded dense gradient (SGD/Adagrad)."""

    @pytest.mark.parametrize("factory", [lambda: SGD(0.1), lambda: Adagrad(0.5)])
    def test_matches_dense_step_over_many_steps(self, factory):
        sparse_optimizer, dense_optimizer = factory(), factory()
        params_sparse, _, _ = sparse_problem()
        params_dense = {key: value.copy() for key, value in params_sparse.items()}
        for step in range(5):
            _, sparse, dense = sparse_problem(seed=step + 1)
            sparse_optimizer.step_sparse(params_sparse, sparse)
            dense_optimizer.step(params_dense, dense)
            for key in params_dense:
                np.testing.assert_array_equal(params_sparse[key], params_dense[key])

    def test_adam_first_touch_matches_dense(self):
        """Lazy Adam: a row's first sparse update equals the dense update."""
        sparse_optimizer, dense_optimizer = Adam(0.2), Adam(0.2)
        params_sparse, sparse, dense = sparse_problem()
        params_dense = {key: value.copy() for key, value in params_sparse.items()}
        sparse_optimizer.step_sparse(params_sparse, sparse)
        dense_optimizer.step(params_dense, dense)
        for key in params_dense:
            np.testing.assert_array_equal(params_sparse[key], params_dense[key])

    def test_adam_is_lazy_on_untouched_rows(self):
        """Documented deviation: no pure-decay drift for untouched rows."""
        optimizer = Adam(0.2)
        params, sparse, _ = sparse_problem()
        indices = sparse["entities"][0]
        untouched = np.setdiff1d(np.arange(params["entities"].shape[0]), indices)
        optimizer.step_sparse(params, sparse)
        before = params["entities"][untouched].copy()
        # Second step touching the same rows: dense Adam would now drift the
        # untouched rows through momentum decay; lazy Adam must not.
        optimizer.step_sparse(params, sparse)
        np.testing.assert_array_equal(params["entities"][untouched], before)

    def test_only_addressed_rows_move(self):
        for factory in (lambda: SGD(0.1), lambda: Adagrad(0.5), lambda: Adam(0.2)):
            optimizer = factory()
            params, sparse, _ = sparse_problem()
            indices = sparse["entities"][0]
            untouched = np.setdiff1d(np.arange(params["entities"].shape[0]), indices)
            before = params["entities"][untouched].copy()
            optimizer.step_sparse(params, sparse)
            np.testing.assert_array_equal(params["entities"][untouched], before)

    def test_base_class_fallback_densifies(self):
        """An optimizer without its own step_sparse still gets sparse support."""

        class ScaledSGD(Optimizer):
            def step(self, params, grads):
                self._check(params, grads)
                for key, grad in grads.items():
                    params[key] -= 0.5 * self.learning_rate * grad

        fallback, dense_optimizer = ScaledSGD(0.1), ScaledSGD(0.1)
        params_sparse, sparse, dense = sparse_problem()
        params_dense = {key: value.copy() for key, value in params_sparse.items()}
        fallback.step_sparse(params_sparse, sparse)
        dense_optimizer.step(params_dense, dense)
        for key in params_dense:
            np.testing.assert_array_equal(params_sparse[key], params_dense[key])

    def test_densify_scatters_exactly(self):
        params, sparse, dense = sparse_problem()
        indices, block = sparse["entities"]
        np.testing.assert_array_equal(dense["entities"][indices], block)
        untouched = np.setdiff1d(np.arange(params["entities"].shape[0]), indices)
        assert not dense["entities"][untouched].any()

    def test_non_increasing_indices_rejected(self):
        optimizer = SGD(0.1)
        params = {"entities": np.zeros((6, 2))}
        block = np.ones((2, 2))
        for bad in ([3, 1], [2, 2]):  # unsorted, duplicate
            with pytest.raises(ValueError, match="strictly increasing"):
                optimizer.step_sparse(params, {"entities": (np.array(bad), block)})

    def test_out_of_range_indices_rejected(self):
        optimizer = SGD(0.1)
        params = {"entities": np.zeros((6, 2))}
        with pytest.raises(ValueError, match="out of range"):
            optimizer.step_sparse(
                params, {"entities": (np.array([0, 6]), np.ones((2, 2)))}
            )

    def test_block_shape_mismatch_rejected(self):
        optimizer = SGD(0.1)
        params = {"entities": np.zeros((6, 2))}
        with pytest.raises(ValueError, match="block shape"):
            optimizer.step_sparse(
                params, {"entities": (np.array([0, 1]), np.ones((2, 3)))}
            )

    def test_unknown_key_rejected(self):
        optimizer = SGD(0.1)
        with pytest.raises(KeyError):
            optimizer.step_sparse(
                {"entities": np.zeros((6, 2))},
                {"relations": (np.array([0]), np.ones((1, 2)))},
            )


class TestRegularizers:
    def test_l2_penalty_value(self):
        params = {"w": np.array([1.0, 2.0]), "v": np.array([3.0])}
        assert L2Regularizer(0.1).penalty(params) == pytest.approx(0.1 * (1 + 4 + 9))

    def test_l2_gradient(self):
        params = {"w": np.array([2.0, -1.0])}
        grads = {"w": np.zeros(2)}
        L2Regularizer(0.5).add_gradients(params, grads)
        np.testing.assert_allclose(grads["w"], [2.0, -1.0])

    def test_l2_zero_weight_is_noop(self):
        params = {"w": np.array([2.0])}
        grads = {"w": np.zeros(1)}
        L2Regularizer(0.0).add_gradients(params, grads)
        assert grads["w"][0] == 0.0

    def test_n3_only_touches_embeddings(self):
        params = {"entities": np.array([[2.0]]), "nn1_w1": np.array([[5.0]])}
        grads = {key: np.zeros_like(value) for key, value in params.items()}
        N3Regularizer(1.0).add_gradients(params, grads)
        assert grads["entities"][0, 0] == pytest.approx(3 * 4.0)
        assert grads["nn1_w1"][0, 0] == 0.0

    def test_n3_penalty_value(self):
        params = {"entities": np.array([[-2.0]]), "relations": np.array([[1.0]])}
        assert N3Regularizer(0.5).penalty(params) == pytest.approx(0.5 * (8 + 1))

    def test_n3_gradient_matches_finite_difference(self):
        params = {"entities": np.array([[0.7, -1.3]]), "relations": np.array([[0.4, 0.9]])}
        regularizer = N3Regularizer(0.3)
        grads = {key: np.zeros_like(value) for key, value in params.items()}
        regularizer.add_gradients(params, grads)
        epsilon = 1e-6
        for key in params:
            for index in np.ndindex(params[key].shape):
                plus = {k: v.copy() for k, v in params.items()}
                minus = {k: v.copy() for k, v in params.items()}
                plus[key][index] += epsilon
                minus[key][index] -= epsilon
                numeric = (regularizer.penalty(plus) - regularizer.penalty(minus)) / (2 * epsilon)
                assert grads[key][index] == pytest.approx(numeric, rel=1e-4)

    def test_no_regularizer(self):
        params = {"w": np.array([5.0])}
        grads = {"w": np.zeros(1)}
        reg = NoRegularizer()
        assert reg.penalty(params) == 0.0
        reg.add_gradients(params, grads)
        assert grads["w"][0] == 0.0

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            L2Regularizer(-1.0)

    def test_factory(self):
        assert isinstance(get_regularizer("l2", 0.1), L2Regularizer)
        assert isinstance(get_regularizer("n3", 0.1), N3Regularizer)
        assert isinstance(get_regularizer("none", 0.0), NoRegularizer)
        with pytest.raises(KeyError):
            get_regularizer("dropout", 0.1)


class TestOptimizerSnapshot:
    """snapshot()/restore() back the trainer's best-checkpoint restore."""

    @pytest.mark.parametrize("factory", [lambda: SGD(0.1), lambda: Adagrad(0.5), lambda: Adam(0.2)])
    def test_restore_replays_identical_trajectory(self, factory):
        optimizer = factory()
        params = quadratic_params()
        for _ in range(3):
            optimizer.step(params, quadratic_grads(params))
            optimizer.decay()
        snapshot = optimizer.snapshot()
        checkpoint = {key: value.copy() for key, value in params.items()}

        # Diverge for a few steps, then rewind and replay.
        for _ in range(4):
            optimizer.step(params, quadratic_grads(params))
            optimizer.decay()
        diverged = {key: value.copy() for key, value in params.items()}

        optimizer.restore(snapshot)
        params = {key: value.copy() for key, value in checkpoint.items()}
        optimizer.step(params, quadratic_grads(params))
        replayed_once = {key: value.copy() for key, value in params.items()}

        optimizer.restore(snapshot)
        params = {key: value.copy() for key, value in checkpoint.items()}
        optimizer.step(params, quadratic_grads(params))
        for key in params:
            np.testing.assert_array_equal(params[key], replayed_once[key])
            assert not np.array_equal(diverged[key], replayed_once[key])

    @pytest.mark.parametrize("factory", [lambda: Adagrad(0.5), lambda: Adam(0.2)])
    def test_snapshot_survives_in_place_sparse_mutation(self, factory):
        """Regression: sparse steps mutate state rows in place.

        Dense Adam rebinds its state arrays every step, which masked shallow
        copies; ``step_sparse`` writes into existing rows, so a snapshot that
        aliased live state would drift as training continues past the
        checkpoint.  The snapshot (and anything restored from it) must stay
        bitwise identical to the moment it was taken.
        """
        optimizer = factory()
        params, sparse, _ = sparse_problem()
        optimizer.step_sparse(params, sparse)
        snapshot = optimizer.snapshot()
        frozen = {
            key: {name: value.copy() for name, value in state.items()}
            for key, state in snapshot["state"].items()
        }

        for seed in range(1, 4):  # keep training: rows mutate in place
            _, more_grads, _ = sparse_problem(seed=seed)
            optimizer.step_sparse(params, more_grads)

        for key, state in frozen.items():
            for name, value in state.items():
                np.testing.assert_array_equal(snapshot["state"][key][name], value)
        restored = factory()
        restored.restore(snapshot)
        for key, state in frozen.items():
            for name, value in state.items():
                np.testing.assert_array_equal(restored._state[key][name], value)
        # restore() copied too: mutating the restored optimizer must not
        # write back into the snapshot the trainer may restore again later.
        _, more_grads, _ = sparse_problem(seed=9)
        restored.step_sparse(params, more_grads)
        for key, state in frozen.items():
            for name, value in state.items():
                np.testing.assert_array_equal(snapshot["state"][key][name], value)

    def test_snapshot_is_a_deep_copy(self):
        optimizer = Adagrad(0.5)
        params = quadratic_params()
        optimizer.step(params, quadratic_grads(params))
        snapshot = optimizer.snapshot()
        optimizer.step(params, quadratic_grads(params))
        restored = Adagrad(0.5)
        restored.restore(snapshot)
        assert set(restored._state) == set(optimizer._state)
        for key in restored._state:
            assert not np.array_equal(
                restored._state[key]["sum_squares"], optimizer._state[key]["sum_squares"]
            )


class TestNegativeSamplers:
    def test_uniform_shape_and_range(self):
        sampler = UniformNegativeSampler(num_entities=50, num_negatives=7, rng=0)
        negatives = sampler.sample(np.array([1, 2, 3]))
        assert negatives.shape == (3, 7)
        assert negatives.min() >= 0 and negatives.max() < 50

    def test_uniform_never_emits_positives(self):
        sampler = UniformNegativeSampler(num_entities=10, num_negatives=50, rng=0)
        positives = np.array([4])
        negatives = sampler.sample(positives)
        assert not np.any(negatives == 4)

    def test_collision_free_at_tiny_entity_counts(self):
        """Regression: one resampling pass could re-draw the positive again.

        With two entities every uniform draw hits the positive with
        probability 1/2, so the old single-pass fix leaked positives roughly
        once per four negatives; the redraw loop (plus the masked fallback)
        must never leak one.
        """
        for num_entities in (2, 3):
            sampler = UniformNegativeSampler(
                num_entities=num_entities, num_negatives=40, rng=7
            )
            positives = np.arange(num_entities).repeat(5)
            for _round in range(10):
                negatives = sampler.sample(positives)
                assert not np.any(negatives == positives[:, None])
                assert negatives.min() >= 0 and negatives.max() < num_entities

    def test_bernoulli_collision_free_at_tiny_entity_counts(self, tiny_graph):
        sampler = BernoulliNegativeSampler(tiny_graph, num_negatives=30, rng=5)
        positives = np.zeros(8, dtype=np.int64)
        relations = np.zeros(8, dtype=np.int64)
        negatives = sampler.sample(positives, relations=relations)
        assert not np.any(negatives == positives[:, None])

    def test_masked_fallback_is_exact(self):
        """Force the fallback path: it must draw uniformly over non-positives."""
        sampler = UniformNegativeSampler(num_entities=2, num_negatives=8, rng=0)
        sampler._max_resample_passes = 0  # every collision goes to the fallback
        positives = np.array([0, 1, 0, 1])
        negatives = sampler.sample(positives)
        assert not np.any(negatives == positives[:, None])

    def test_uniform_invalid_args(self):
        with pytest.raises(ValueError):
            UniformNegativeSampler(num_entities=1, num_negatives=2)
        with pytest.raises(ValueError):
            UniformNegativeSampler(num_entities=5, num_negatives=0)

    def test_bernoulli_prefers_relation_entities(self):
        profile = GeneratorProfile(name="tiny", num_entities=60, num_clusters=4, seed=0)
        graph = generate_knowledge_graph(profile)
        sampler = BernoulliNegativeSampler(graph, num_negatives=20, rng=0, consistent_fraction=1.0)
        relation = 0
        pool = set(sampler._entities_by_relation[relation].tolist())
        positives = graph.train[graph.train[:, 1] == relation][:4, 2]
        negatives = sampler.sample(positives, relations=np.full(len(positives), relation))
        in_pool = np.mean([int(v) in pool for v in negatives.ravel()])
        assert in_pool > 0.9

    def test_bernoulli_invalid_fraction(self, tiny_graph):
        with pytest.raises(ValueError):
            BernoulliNegativeSampler(tiny_graph, num_negatives=2, consistent_fraction=1.5)

    def test_deterministic_given_seed(self):
        a = UniformNegativeSampler(20, 5, rng=3).sample(np.arange(4))
        b = UniformNegativeSampler(20, 5, rng=3).sample(np.arange(4))
        np.testing.assert_array_equal(a, b)
